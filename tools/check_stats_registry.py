#!/usr/bin/env python
"""Lint: every ``*Stats`` class must be absorbed by the metrics registry.

The observability layer (``src/repro/obs``) exposes one process-wide
snapshot; ad-hoc counter classes that never reach it are invisible to
``repro stats --json``, the bench harness, and the CI chaos smoke.  This
check fails when a class named ``*Stats`` appears under ``src/`` that is
neither wired into :func:`repro.obs.collect.register_stats_collectors`
nor explicitly exempted below.

To add a new stats holder:

1. Give its numeric fields plain public attributes (so
   :func:`repro.obs.collect.scalar_fields` can read them), and
2. extend ``register_stats_collectors`` with a collector that exports
   them under a stable dotted prefix, then
3. add the class to ``ABSORBED`` here with that prefix.

Exit status: 0 clean, 1 violations found.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"

# Classes the registry already exports, and the dotted prefix each one's
# fields appear under in a snapshot (see src/repro/obs/collect.py).
ABSORBED = {
    "OracleStats": "oracle.*",
    "GatekeeperStats": "gatekeeper.*",
    "ShardStats": "shard.*",
    "OrderingStats": "ordering.*",
    "NetworkStats": "network.*",
    "ProgramStats": "program.*",
    "TransportStats": "transport.*",
    "StoreStats": "store.*",
    # Exported by OnlineChecker.register_metrics, not the collect-layer
    # helper: the checker rides whichever deployment it is attached to.
    "CheckerStats": "checker.*",
    # Geo deployments only: registered when num_regions > 1, so the
    # single-region golden metric surface stays unchanged.
    "RegionStats": "region.<r>.*",
    # Shard-resident program engine: worker-side counters summed by the
    # client's _process_metrics collector (program.resident.*, plus the
    # peer-channel TransportStats as transport.worker.*).
    "ResidentStats": "program.resident.*",
}

# Deliberately outside the registry, with the reason on record.
EXEMPT = {
    # Baseline comparison harness: runs in its own process model and is
    # never part of a Weaver deployment's snapshot.
    "TitanStats": "baselines/titan.py is not a Weaver component",
}


def stats_classes(path: Path):
    tree = ast.parse(path.read_text(), filename=str(path))
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name.endswith("Stats"):
            yield node.name, node.lineno


def main() -> int:
    violations = []
    for path in sorted(SRC.rglob("*.py")):
        for name, lineno in stats_classes(path):
            if name in ABSORBED or name in EXEMPT:
                continue
            violations.append((path, lineno, name))
    for path, lineno, name in violations:
        rel = path.relative_to(SRC.parent)
        print(
            f"{rel}:{lineno}: {name} is not absorbed by the metrics "
            "registry — wire it into "
            "src/repro/obs/collect.py:register_stats_collectors and add "
            "it to ABSORBED in tools/check_stats_registry.py "
            "(or EXEMPT it with a reason)."
        )
    if violations:
        return 1
    print(
        f"stats-registry check: {len(ABSORBED)} absorbed, "
        f"{len(EXEMPT)} exempt, 0 stray"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
