"""Fig 12: get_node throughput scales linearly with gatekeepers.

Paper's claim: get_node programs are vertex-local, so shards do little
work and the gatekeeper bank is the bottleneck; throughput grows
linearly, reaching ~250k tx/s at 6 gatekeepers on their hardware.
"""

from repro.bench import harness

GK_COUNTS = (1, 2, 3, 4, 5, 6)


def run_experiment():
    return harness.experiment_fig12(
        gatekeeper_counts=GK_COUNTS, ops=20_000, clients=128
    )


def test_fig12_gatekeeper_scaling(benchmark, show):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    show(
        "Fig 12: get_node throughput vs gatekeeper count",
        ["gatekeepers", "tx/s"],
        [(n, round(t)) for n, t in result.rows()],
        lines=[f"linearity (1.0 = ideal): {result.linearity:.3f}"],
    )
    throughputs = [t for _, t in result.rows()]
    assert throughputs == sorted(throughputs)
    assert result.linearity > 0.85
    # 6 gatekeepers deliver ~6x one gatekeeper.
    assert throughputs[-1] / throughputs[0] > 4.5


def run_protocol_level(gk_counts=(1, 2, 4), ops_per_point=100, clients=16):
    """The same scaling measured on the event-driven deployment: real
    stamps, queues, NOPs, and announce timers, with gatekeeper service
    time charged — an independent check on the cost-model curve."""
    from repro.bench.costmodel import CostParams
    from repro.db import operations as ops
    from repro.db.config import WeaverConfig
    from repro.programs import GetNode
    from repro.sim.clock import USEC
    from repro.sim.deployment import SimulatedWeaver
    from repro.sim.workload import SimClients, finite_stream

    rows = []
    for gks in gk_counts:
        sw = SimulatedWeaver(
            WeaverConfig(num_gatekeepers=gks, num_shards=2),
            tau=200 * USEC,
            nop_period=200 * USEC,
            costs=CostParams(),
        )
        done = []
        sw.submit_transaction(
            [ops.CreateVertex("a")],
            callback=lambda ok, v: done.append(ok),
            new_vertices=("a",),
        )
        sw.run(0.05)
        assert done == [True]
        driver = SimClients(
            sw,
            clients,
            finite_stream([("prog", GetNode(), "a", None)] * ops_per_point),
        )
        driver.start()
        driver.run_to_completion(max_sim_seconds=60)
        rows.append((gks, driver.throughput))
    return rows


def test_fig12_protocol_level_cross_check(benchmark, show):
    rows = benchmark.pedantic(run_protocol_level, rounds=1, iterations=1)
    show(
        "Fig 12 (event-driven protocol cross-check)",
        ["gatekeepers", "get_node tx/s (simulated)"],
        [(g, round(t)) for g, t in rows],
    )
    throughputs = [t for _, t in rows]
    assert throughputs == sorted(throughputs)
    assert throughputs[-1] > 2 * throughputs[0]
