"""Fig 7: Bitcoin block-query latency — CoinGraph vs Blockchain.info.

Paper's claim: both systems' latency is proportional to the number of
transactions in the block; CoinGraph pays 0.6-0.8 ms per transaction vs
5-8 ms for Blockchain.info, making block 350,000 (1,795 transactions)
about 8x faster to render.
"""

from repro.bench import harness
from repro.bench.report import ratio_check

HEIGHTS = (1_000, 50_000, 100_000, 150_000, 200_000, 250_000, 300_000,
           350_000)

PAPER_SPEEDUP_AT_350K = 8.0


def run_experiment():
    return harness.experiment_fig7(heights=HEIGHTS, functional_scale=0.01)


def test_fig07_block_query_latency(benchmark, show):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    show(
        "Fig 7: Bitcoin block query latency (simulated seconds)",
        ["block", "txs", "CoinGraph (s)", "BC.info (s)", "speedup"],
        [
            (h, ntx, round(cg, 4), round(bc, 3), round(sp, 1))
            for h, ntx, cg, bc, sp in result.rows()
        ],
        lines=[
            ratio_check(
                "speedup at block 350k",
                result.speedup_at_max_height,
                PAPER_SPEEDUP_AT_350K,
            )
        ],
    )
    # Shape assertions: latency grows with block size; CoinGraph wins by
    # roughly the paper's factor at the calibration block.
    latencies = [cg for _, _, cg, _, _ in result.rows()]
    assert latencies == sorted(latencies)
    assert 4 <= result.speedup_at_max_height <= 16
    assert result.functional_blocks_checked == len(HEIGHTS)
