"""Fig 9: social-network throughput — Weaver vs Titan.

Paper's claims: (a) on the TAO mix (99.8% reads, Table 1) Weaver
outperforms Titan by 10.9x, with 0.0013% of transactions reactively
ordered; (b) on a 75%-read mix the gap narrows to 1.5x, with 1.7%
reactively ordered; Titan's throughput is nearly flat (~2k tx/s) across
mixes because it pessimistically locks everything either way.
"""

from repro.bench import harness
from repro.bench.report import ratio_check

PAPER = {0.998: 10.9, 0.75: 1.5}


def run_tao():
    return harness.experiment_fig9(
        0.998, clients_weaver=50, clients_titan=60,
        total_ops=10_000, num_vertices=300, functional_ops=300,
    )


def run_mixed():
    return harness.experiment_fig9(
        0.75, clients_weaver=45, clients_titan=50,
        total_ops=10_000, num_vertices=300, functional_ops=300,
    )


def test_fig09a_tao_mix(benchmark, show):
    result = benchmark.pedantic(run_tao, rounds=1, iterations=1)
    show(
        "Fig 9a: TAO workload (99.8% reads) throughput",
        ["system", "clients", "tx/s"],
        [
            ("Weaver", result.clients_weaver,
             round(result.weaver_throughput)),
            ("Titan", result.clients_titan,
             round(result.titan_throughput)),
        ],
        lines=[
            ratio_check("Weaver/Titan", result.speedup, PAPER[0.998]),
            f"reactively ordered: measured {result.reactive_fraction:.5%} "
            f"(paper: 0.0013%)",
        ],
    )
    assert 5 <= result.speedup <= 25
    assert result.reactive_fraction < 0.02


def test_fig09b_75pct_reads(benchmark, show):
    result = benchmark.pedantic(run_mixed, rounds=1, iterations=1)
    show(
        "Fig 9b: 75% read workload throughput",
        ["system", "clients", "tx/s"],
        [
            ("Weaver", result.clients_weaver,
             round(result.weaver_throughput)),
            ("Titan", result.clients_titan,
             round(result.titan_throughput)),
        ],
        lines=[
            ratio_check("Weaver/Titan", result.speedup, PAPER[0.75]),
            f"reactively ordered: measured {result.reactive_fraction:.3%} "
            f"(paper: 1.7%)",
        ],
    )
    assert 1.0 <= result.speedup <= 3.5
    assert result.reactive_fraction < 0.05
