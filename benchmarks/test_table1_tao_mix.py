"""Table 1: the TAO operation mix driving the Fig 9/10 benchmarks.

This bench validates the workload generator against the paper's
published distribution and reports the mix a long stream actually
produces, plus a functional end-to-end run of the mix on a live Weaver.
"""

from repro.bench import harness  # noqa: F401  (keeps import graph warm)
from repro.db import Weaver, WeaverClient, WeaverConfig
from repro.workloads import graphs
from repro.workloads.runner import run_tao
from repro.workloads.tao import TaoWorkload

PAPER_MIX = {
    "get_edges": 0.5938,   # 59.4% of 99.8%
    "count_edges": 0.1168,
    "get_node": 0.2884,
    "create_edge": 0.0016,  # 80% of 0.2%
    "delete_edge": 0.0004,
}


def run_experiment():
    workload = TaoWorkload([f"v{i}" for i in range(100)], seed=1)
    counts = {}
    n = 40_000
    for op in workload.stream(n):
        counts[op[0]] = counts.get(op[0], 0) + 1
    return {k: v / n for k, v in counts.items()}


def test_table1_mix_matches_paper(benchmark, show):
    mix = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    show(
        "Table 1: TAO operation mix (fraction of all operations)",
        ["operation", "paper", "generated"],
        [
            (op, PAPER_MIX[op], round(mix.get(op, 0.0), 4))
            for op in PAPER_MIX
        ],
    )
    for op, expected in PAPER_MIX.items():
        assert abs(mix.get(op, 0.0) - expected) < 0.02


def test_table1_functional_replay(show):
    """The generated mix actually runs against a live deployment."""
    db = Weaver(WeaverConfig(num_gatekeepers=2, num_shards=2))
    client = WeaverClient(db)
    edges = graphs.social_graph(100, 4, seed=2)
    handles = graphs.load_into_weaver(client, edges)
    pool = [(k.split("->", 1)[0], h) for k, h in handles.items()]
    workload = TaoWorkload(
        graphs.vertices_of(edges), edge_pool=pool, seed=2
    )
    report = run_tao(client, workload, 300)
    show(
        "Table 1 functional replay",
        ["metric", "value"],
        [
            ("operations", report.operations),
            ("failures", report.failures),
            ("reactive fraction", f"{report.reactive_fraction:.5f}"),
        ],
    )
    assert report.failures == 0
