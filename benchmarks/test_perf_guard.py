"""Quick-mode perf smoke: the ordering fast path must not regress.

A deliberately small configuration (seconds, not minutes) suitable for
every CI run: the skyline-indexed oracle must not be slower than the
seed-equivalent reference on an oracle-heavy schedule.  The full-size
measurement (with the ≥ 3x acceptance bar) lives in
``test_micro_ordering.py``; this guard only catches a fast path that
stopped being fast.

Run with::

    python -m pytest benchmarks/test_perf_guard.py -q
"""

from repro.bench.ordering_bench import compare_fastpath

# Best-of-N to damp scheduler noise; the margin tolerates the rest.
_ATTEMPTS = 3
_TOLERANCE = 1.10


def test_indexed_not_slower_than_reference():
    best = None
    for attempt in range(_ATTEMPTS):
        result = compare_fastpath(num_events=300, num_pairs=700, seed=11)
        if best is None or result["speedup"] > best["speedup"]:
            best = result
        if best["speedup"] >= 1.5:
            break
    assert best["concurrent_fraction"] >= 0.30
    assert best["indexed_seconds"] <= best["reference_seconds"] * _TOLERANCE, (
        f"indexed path slower than the seed reference: "
        f"{best['indexed_seconds']:.3f}s vs {best['reference_seconds']:.3f}s"
    )


def test_index_actually_prunes():
    """The guard fails loudly if the index silently degrades to a scan."""
    result = compare_fastpath(num_events=300, num_pairs=700, seed=11)
    counters = result["indexed_counters"]
    assert counters["bfs_pruned"] > counters["bfs_expansions"]
    assert counters["reach_cache_hits"] > 0
