"""Quick-mode perf smoke: the fast paths must not regress.

Deliberately small configurations (seconds, not minutes) suitable for
every CI run: the skyline-indexed oracle must not be slower than the
seed-equivalent reference, and the batched scatter-gather program
executor must keep its structural wins (O(shards) snapshots per query,
batch messages, hop dedup, readiness fast path) — counts, not wall
clock, so the guard is stable on loaded CI machines.  The full-size
measurements (with the ≥ 3x acceptance bars) live in
``test_micro_ordering.py`` and ``test_micro_programs.py``.

Run with::

    python -m pytest benchmarks/test_perf_guard.py -q
"""

import json
import os
import pathlib

from repro.bench.ordering_bench import compare_fastpath
from repro.bench.programs_bench import build_database, compare_traversal
from repro.programs.library import Bfs, params

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# Best-of-N to damp scheduler noise; the margin tolerates the rest.
_ATTEMPTS = 3
_TOLERANCE = 1.10


def test_indexed_not_slower_than_reference():
    best = None
    for attempt in range(_ATTEMPTS):
        result = compare_fastpath(num_events=300, num_pairs=700, seed=11)
        if best is None or result["speedup"] > best["speedup"]:
            best = result
        if best["speedup"] >= 1.5:
            break
    assert best["concurrent_fraction"] >= 0.30
    assert best["indexed_seconds"] <= best["reference_seconds"] * _TOLERANCE, (
        f"indexed path slower than the seed reference: "
        f"{best['indexed_seconds']:.3f}s vs {best['reference_seconds']:.3f}s"
    )


def test_index_actually_prunes():
    """The guard fails loudly if the index silently degrades to a scan."""
    result = compare_fastpath(num_events=300, num_pairs=700, seed=11)
    counters = result["indexed_counters"]
    assert counters["bfs_pruned"] > counters["bfs_expansions"]
    assert counters["reach_cache_hits"] > 0


# -- batched scatter-gather node programs -------------------------------


def test_batched_not_slower_than_seed():
    best = None
    for attempt in range(_ATTEMPTS):
        result = compare_traversal(num_vertices=200, avg_degree=6)
        if best is None or result["speedup"] > best["speedup"]:
            best = result
        if best["speedup"] >= 1.5:
            break
    assert best["results_equal"]
    assert best["read_sets_equal"]
    assert best["batched_seconds"] <= best["seed_seconds"] * _TOLERANCE, (
        f"batched executor slower than the seed per-vertex path: "
        f"{best['batched_seconds']:.3f}s vs {best['seed_seconds']:.3f}s"
    )


def test_batched_structural_counters():
    """Counts, not clocks: the wins the speedup is built from.

    Fails loudly if the batched path silently degrades to per-vertex
    behavior — one snapshot per resolution, one message per hop, or no
    same-round dedup.
    """
    result = compare_traversal(num_vertices=200, avg_degree=6)
    batched = result["batched_counters"]
    seeded = result["seed_counters"]
    # O(shards) snapshot views per query, not O(vertices visited).
    assert batched["snapshots_per_query"] <= result["num_shards"]
    # The seed path really does pay one snapshot per resolution.
    assert seeded["snapshots_per_query"] == seeded["resolutions"]
    # One message per (shard, round) beats one per resolved vertex.
    assert batched["shard_batches"] < batched["vertices_resolved"]
    assert batched["round_messages_saved"] > 0
    # BFS revisits vertices from many parents at the same depth.
    assert batched["dedup_hits"] > 0
    assert batched["snapshot_reuse_hits"] > 0


def test_transport_structural_counters():
    """The process transport must keep its structural wins: enqueues ride
    multi-message frames (batching) and multi-shard resolve fan-outs
    overlap in flight (pipelining) — counts, not wall clock, so the
    guard holds on single-core CI machines too."""
    from repro.cluster.process import ProcessWeaver
    from repro.db.config import WeaverConfig
    from repro.programs.library import CollectReachable

    with ProcessWeaver(WeaverConfig(num_shards=2)) as db:
        tx = db.begin_transaction()
        handles = [tx.create_vertex(f"t{i}") for i in range(40)]
        for i in range(1, 40):
            tx.create_edge(handles[(i - 1) // 2], handles[i])
        tx.commit()
        db.drain()
        db.run_program(CollectReachable(), handles[0])
        snap = db.metrics.snapshot()
    assert snap["transport.bytes_sent"] > 0
    assert snap["transport.bytes_received"] > 0
    # Enqueues buffered per channel and flushed as one frame: strictly
    # fewer frames than logical messages.
    assert snap["transport.batched_messages"] > 0
    assert snap["transport.frames_sent"] < snap["transport.messages_sent"]
    # The per-round resolve fan-out writes every request before reading
    # any reply, so requests overlap whenever >1 shard is involved.
    assert snap["transport.requests_pipelined"] > 0


def test_page_cache_structural_counters():
    """The durable store's page cache must keep its structural wins:
    hot reads are served from memory, a budget smaller than the data
    evicts instead of growing without bound, and the resident-bytes
    gauge tracks the budget — counts, not wall clock."""
    from repro.store.durable import DurableStore

    budget = 4096
    with DurableStore(cache_bytes=budget) as store:
        for i in range(100):
            store.transact(lambda t, i=i: t.put(f"k{i}", "x" * 100))
        for i in range(100):
            store.get(f"k{i}")
        for _ in range(50):
            store.get("k99")  # hot key: must be cache hits
        stats = store.stats
        assert stats.page_cache_hits >= 50
        assert stats.page_cache_evictions > 0
        assert stats.page_cache_bytes <= budget
        assert stats.page_cache_bytes == store._cache_size


def test_record_guard_context():
    """Archive the quick-mode numbers with the host core count.

    Wall-clock-derived results (here and in the recorded BENCH_*.json
    files) only mean what the hardware lets them mean — the transport
    scaling bar, for one, needs >= 4 real cores.  Recording
    ``cpu_count`` next to the guard's own measurements makes every
    archived number's context explicit.
    """
    ordering = compare_fastpath(num_events=300, num_pairs=700, seed=11)
    traversal = compare_traversal(num_vertices=200, avg_degree=6)
    (REPO_ROOT / "BENCH_perf_guard.json").write_text(json.dumps({
        "cpu_count": os.cpu_count() or 1,
        "ordering_speedup": ordering["speedup"],
        "traversal_speedup": traversal["speedup"],
        "traversal_results_equal": traversal["results_equal"],
    }, indent=2) + "\n")


def test_readiness_fastpath_skips_second_storm():
    """Re-running at an already-served timestamp skips the NOP storm."""
    db, handles = build_database(num_vertices=60, avg_degree=4)
    point = db.checkpoint()
    db.run_program(Bfs(), handles[0], params(depth=0), at=point)
    storms = db.executor.stats.readiness_storms
    db.run_program(Bfs(), handles[0], params(depth=0), at=point)
    assert db.executor.stats.readiness_fastpath_hits >= 1
    assert db.executor.stats.readiness_storms == storms
