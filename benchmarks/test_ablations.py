"""Ablations A1-A4: the design choices DESIGN.md calls out.

A1 — node-program memoization (section 4.6): hit rate and reads saved
     under a read-mostly workload with periodic invalidating writes.
A2 — streaming partitioning (section 4.6): edge cut of hash vs LDG vs
     restreaming LDG.
A3 — shard-side caching of oracle decisions (section 4.2): oracle
     messages saved by the cache.
A4 — NOP period (section 4.2): node-program delay vs heartbeat traffic.
"""

import pytest

from repro.bench import harness
from repro.sim.clock import MSEC, USEC


def test_a1_program_caching(benchmark, show):
    result = benchmark.pedantic(
        lambda: harness.ablation_caching(
            num_blocks=8, queries=150, write_every=25
        ),
        rounds=1,
        iterations=1,
    )
    show(
        "A1: node-program memoization (block-render workload)",
        ["metric", "value"],
        [
            ("cold-equivalent vertex reads", result.cold_reads),
            ("actual vertex reads", result.cached_reads),
            ("reads saved", f"{result.reads_saved_fraction:.1%}"),
            ("cache hit rate", f"{result.hit_rate:.1%}"),
            ("invalidations", result.invalidations),
        ],
    )
    assert result.hit_rate > 0.3
    assert result.reads_saved_fraction > 0.3
    assert result.invalidations > 0  # writes really do invalidate


def test_a2_partitioning(benchmark, show):
    result = benchmark.pedantic(
        lambda: harness.ablation_partitioning(num_vertices=800),
        rounds=1,
        iterations=1,
    )
    show(
        "A2: streaming partitioners (8 partitions, power-law graph)",
        ["partitioner", "edge cut", "balance (1.0 ideal)"],
        [
            (name, f"{cut:.1%}", round(bal, 3))
            for name, cut, bal in result.rows()
        ],
    )
    assert result.cut_of("ldg") < result.cut_of("hash")
    assert result.cut_of("restream") <= result.cut_of("ldg")


def test_a3_oracle_decision_cache(benchmark, show):
    result = benchmark.pedantic(
        lambda: harness.ablation_oracle_cache(num_pairs=300, reuse=4),
        rounds=1,
        iterations=1,
    )
    show(
        "A3: shard-side oracle-decision cache",
        ["configuration", "oracle messages"],
        [
            ("cache enabled", result.with_cache_oracle_messages),
            ("cache disabled", result.without_cache_oracle_messages),
        ],
        lines=[f"messages saved: {result.messages_saved_fraction:.1%}"],
    )
    assert result.messages_saved_fraction > 0.5


def test_a5_adaptive_tau(benchmark, show):
    """Section 3.5's dynamic τ: started at either extreme, the feedback
    controller moves the announce period toward the Fig 14 crossover."""

    def run_both():
        high = harness.ablation_adaptive_tau(start_tau=8 * MSEC)
        low = harness.ablation_adaptive_tau(start_tau=50 * USEC)
        return high, low

    high, low = benchmark.pedantic(run_both, rounds=1, iterations=1)
    show(
        "A5: adaptive announce period (section 3.5)",
        ["start tau (s)", "final tau (s)"],
        [
            (f"{high.start_tau:g}", f"{high.final_tau:g}"),
            (f"{low.start_tau:g}", f"{low.final_tau:g}"),
        ],
        lines=[
            "trajectory from high: "
            + " -> ".join(f"{t:g}" for t in high.trajectory[:8]),
            "trajectory from low:  "
            + " -> ".join(f"{t:g}" for t in low.trajectory[:8]),
        ],
    )
    assert high.final_tau < high.start_tau    # came down from the top
    assert low.final_tau >= low.start_tau     # did not dive further down
    # Both endpoints land within an order of magnitude of each other.
    assert max(high.final_tau, low.final_tau) <= 16 * min(
        high.final_tau, low.final_tau
    )


def test_a6_occ_contention(benchmark, show):
    """OCC abort rate vs write skew — why long reads don't use OCC."""
    result = benchmark.pedantic(
        lambda: harness.ablation_contention(),
        rounds=1,
        iterations=1,
    )
    show(
        "A6: OCC abort rate vs Zipf write skew",
        ["skew s", "abort rate"],
        [(s, f"{rate:.1%}") for s, rate in result.rows()],
    )
    rates = [rate for _, rate in result.rows()]
    assert rates[-1] > rates[0]


def test_a7_freshness_vs_kineograph(benchmark, show):
    """Update-visibility lag: refinable timestamps vs epoch snapshots."""
    result = benchmark.pedantic(
        lambda: harness.ablation_freshness(),
        rounds=1,
        iterations=1,
    )
    show(
        "A7: update-visibility lag (s), Weaver vs Kineograph",
        ["epoch interval", "Kineograph mean lag", "Weaver lag"],
        [
            (interval, round(kg, 3), f"{weaver:.4f}")
            for interval, kg, weaver in result.rows()
        ],
    )
    for interval, kg_lag, weaver_lag in result.rows():
        assert kg_lag == pytest.approx(interval / 2, rel=0.25)
        assert weaver_lag < kg_lag / 50


def test_a9_online_rebalance(benchmark, show):
    """Dynamic colocation: edge cut before/after live migration."""
    result = benchmark.pedantic(
        lambda: harness.ablation_rebalance(),
        rounds=1,
        iterations=1,
    )
    show(
        "A9: online vertex migration (section 4.6)",
        ["metric", "value"],
        [
            ("edges", result.total_edges),
            ("cut before", result.cut_before),
            ("cut after", result.cut_after),
            ("migrations", result.moves),
            ("cut reduction", f"{result.improvement:.1%}"),
        ],
    )
    assert result.moves > 0
    assert result.cut_after < result.cut_before


def test_a8_store_linear_transactions(benchmark, show):
    """Chain length of Warp-style commits vs keys per transaction."""
    result = benchmark.pedantic(
        lambda: harness.ablation_store_chains(),
        rounds=1,
        iterations=1,
    )
    show(
        "A8: distributed-store linear transactions (8 nodes, r=2)",
        ["keys/tx", "mean chain length", "messages/commit"],
        [
            (k, round(chain, 2), round(msgs, 2))
            for k, chain, msgs in result.rows()
        ],
    )
    chains = [chain for _, chain, _ in result.rows()]
    assert chains == sorted(chains)         # grows with keys touched
    assert chains[-1] <= 8                  # saturates at the node count


def test_a4_nop_period(benchmark, show):
    result = benchmark.pedantic(
        lambda: harness.ablation_nop_period(
            periods=(10 * USEC, 100 * USEC, 1 * MSEC, 10 * MSEC)
        ),
        rounds=1,
        iterations=1,
    )
    show(
        "A4: NOP heartbeat period tradeoff",
        ["period (s)", "expected program delay (s)", "heartbeats/s"],
        [
            (f"{p:g}", f"{d:.6f}", round(m))
            for p, d, m in result.rows()
        ],
    )
    rows = result.rows()
    delays = [d for _, d, _ in rows]
    messages = [m for _, _, m in rows]
    assert delays == sorted(delays)
    assert messages == sorted(messages, reverse=True)
