"""Durable-store paging benchmark, archived as ``BENCH_storage.json``.

Durable vs in-memory store throughput at 1x and 4x memory pressure
(live set vs page-cache budget).  The assertions are structural — each
regime must actually exercise the path its label claims (no evictions
when the cache fits, continuous paging at 4x) — so the guard is stable
on loaded CI machines; the archived JSON carries the wall-clock numbers
for trend tracking.

Run with::

    python -m pytest benchmarks/test_storage_paging.py -q
"""

import json
import pathlib

from repro.bench.storage_bench import paging_experiment

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_storage_paging(show):
    result = paging_experiment()
    (REPO_ROOT / "BENCH_storage.json").write_text(
        json.dumps(result, indent=2) + "\n"
    )
    show(
        "Backing store: throughput vs memory pressure",
        headers=["backend", "pressure", "writes/s", "reads/s", "evictions"],
        rows=[
            [
                p["backend"],
                p["pressure"] or "-",
                round(p["writes_per_second"]),
                round(p["reads_per_second"]),
                p["page_cache"].get("evictions", "-"),
            ]
            for p in result["points"]
        ],
        lines=[
            f"dataset: {result['dataset_bytes']} bytes",
            f"read slowdown at 4x pressure: "
            f"{result['read_slowdown_at_4x']:.1f}x vs in-memory",
        ],
    )
    by_label = {
        (p["backend"], p["pressure"]): p for p in result["points"]
    }
    fits = by_label[("sqlite", 1.0)]
    paged = by_label[("sqlite", 4.0)]
    # 1x: the live set fits — after the initial load the cache serves
    # reads without evicting.
    assert fits["page_cache"]["evictions"] == 0
    assert fits["page_cache"]["hits"] > 0
    # 4x: the live set is four times the budget — the store must page.
    assert paged["page_cache"]["evictions"] > 0
    assert paged["page_cache"]["resident_bytes"] <= paged["cache_bytes"]
    # Everything still functions at speed in every regime.
    for point in result["points"]:
        assert point["writes_per_second"] > 0
        assert point["reads_per_second"] > 0
