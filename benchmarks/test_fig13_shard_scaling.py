"""Fig 13: clustering-coefficient throughput scales linearly with shards.

Paper's claim: local clustering coefficient programs fan out one hop and
return, so shard servers do the bulk of the work; adding shards (with
gatekeepers fixed) yields linear throughput growth, ~18k tx/s at 9
shards on their hardware.
"""

from repro.bench import harness

SHARD_COUNTS = (1, 2, 3, 4, 5, 6, 7, 8, 9)


def run_experiment():
    return harness.experiment_fig13(
        shard_counts=SHARD_COUNTS, ops=4_000, clients=64
    )


def test_fig13_shard_scaling(benchmark, show):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    show(
        "Fig 13: clustering-coefficient throughput vs shard count",
        ["shards", "tx/s"],
        [(n, round(t)) for n, t in result.rows()],
        lines=[f"linearity (1.0 = ideal): {result.linearity:.3f}"],
    )
    throughputs = [t for _, t in result.rows()]
    assert throughputs == sorted(throughputs)
    assert result.linearity > 0.85
    assert throughputs[-1] / throughputs[0] > 6
