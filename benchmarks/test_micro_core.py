"""Microbenchmarks of the core primitives (real wall-clock time).

Unlike the figure benchmarks (simulated time), these measure the actual
Python implementation: timestamp comparison, oracle ordering, store
commits, end-to-end transactions, and node-program traversal.  They make
regressions in the hot paths visible.
"""

import pytest

from repro.core.gatekeeper import Gatekeeper, sync_announce_all
from repro.core.oracle import TimelineOracle
from repro.core.ordering import RefinableOrdering
from repro.db import Weaver, WeaverClient, WeaverConfig
from repro.store.kvstore import TransactionalStore
from repro.workloads import graphs


def test_vclock_compare(benchmark):
    gks = [Gatekeeper(i, 3) for i in range(3)]
    a = gks[0].issue_timestamp()
    sync_announce_all(gks)
    b = gks[1].issue_timestamp()
    benchmark(a.compare, b)


def test_oracle_order_concurrent_pair(benchmark):
    gks = [Gatekeeper(i, 2) for i in range(2)]
    pairs = [
        (gks[0].issue_timestamp(), gks[1].issue_timestamp())
        for _ in range(10_000)
    ]
    oracle = TimelineOracle()
    counter = iter(pairs)

    def order_one():
        a, b = next(counter)
        oracle.order(a, b)

    benchmark.pedantic(order_one, rounds=1000, iterations=1)


def test_refinable_compare_cached(benchmark):
    gks = [Gatekeeper(i, 2) for i in range(2)]
    a, b = gks[0].issue_timestamp(), gks[1].issue_timestamp()
    ordering = RefinableOrdering(TimelineOracle())
    ordering.compare(a, b)  # prime the cache
    benchmark(ordering.compare, a, b)


def test_store_commit(benchmark):
    store = TransactionalStore()
    counter = iter(range(10**9))

    def commit_one():
        i = next(counter)
        tx = store.begin()
        tx.put(f"k{i}", i)
        tx.commit()

    benchmark(commit_one)


def test_weaver_write_transaction(benchmark):
    db = Weaver(WeaverConfig(num_gatekeepers=2, num_shards=2))
    client = WeaverClient(db)
    client.create_vertex("hub")
    counter = iter(range(10**9))

    def write_one():
        i = next(counter)

        def build(tx):
            v = tx.create_vertex(f"v{i}")
            tx.create_edge("hub", v)

        client.transact(build)

    benchmark.pedantic(write_one, rounds=200, iterations=1)


def test_weaver_get_node(benchmark):
    db = Weaver(WeaverConfig(num_gatekeepers=2, num_shards=2))
    client = WeaverClient(db)
    client.create_vertex("v")
    benchmark(client.get_node, "v")


def test_weaver_bfs_traversal(benchmark):
    db = Weaver(WeaverConfig(num_gatekeepers=2, num_shards=4))
    client = WeaverClient(db)
    edges = graphs.twitter_graph(300, 4, seed=1)
    graphs.load_into_weaver(client, edges)
    start = edges[-1][0]  # a late vertex: non-trivial reachable set
    benchmark.pedantic(
        client.traverse, args=(start,), rounds=30, iterations=1
    )
