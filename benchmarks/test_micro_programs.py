"""Batched scatter-gather traversal microbenchmark (ISSUE: batched
scatter-gather node programs with per-shard snapshot reuse).

Runs the same multi-shard BFS through the round-based executor (one
long-lived snapshot view per (query, shard), same-round hop dedup,
per-shard batch messages) and through the seed per-vertex resolver (one
fresh snapshot view — and cold comparison memo — per resolution),
asserts the ≥ 3x speedup acceptance bar, and records the result as
``BENCH_programs.json`` at the repo root.
"""

import json
import pathlib

from repro.bench.programs_bench import compare_traversal

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# Best-of-N full comparisons to damp scheduler noise on loaded machines;
# compare_traversal itself already keeps the best of 3 repeats per side.
_ATTEMPTS = 3


def test_batched_traversal_speedup(show):
    best = None
    for attempt in range(_ATTEMPTS):
        result = compare_traversal()
        if best is None or result["speedup"] > best["speedup"]:
            best = result
        if best["speedup"] >= 3.0:
            break
    (REPO_ROOT / "BENCH_programs.json").write_text(
        json.dumps(best, indent=2) + "\n"
    )
    batched = best["batched_counters"]
    seeded = best["seed_counters"]
    show(
        "Node programs: batched scatter-gather vs seed per-vertex",
        headers=["metric", "value"],
        rows=[
            ["vertices", best["num_vertices"]],
            ["edges", best["num_edges"]],
            ["shards", best["num_shards"]],
            ["batched (s)", f"{best['batched_seconds']:.3f}"],
            ["seed (s)", f"{best['seed_seconds']:.3f}"],
            ["speedup", f"{best['speedup']:.2f}x"],
            ["snapshots/query (batched)", batched["snapshots_per_query"]],
            ["snapshots/query (seed)", seeded["snapshots_per_query"]],
            ["scatter-gather rounds", batched["rounds"]],
            ["snapshot reuse hits", batched["snapshot_reuse_hits"]],
            ["messages saved", batched["round_messages_saved"]],
            ["dedup hits", batched["dedup_hits"]],
        ],
    )
    # Both paths must agree before the timing means anything.
    assert best["results_equal"]
    assert best["read_sets_equal"]
    # The structural claim: O(shards) snapshots per query, not O(vertices).
    assert batched["snapshots_per_query"] <= best["num_shards"]
    assert seeded["snapshots_per_query"] == seeded["resolutions"]
    assert seeded["snapshots_per_query"] > 10 * batched["snapshots_per_query"]
    assert best["speedup"] >= 3.0, (
        f"batched executor only {best['speedup']:.2f}x faster than the "
        f"seed per-vertex path (need >= 3x)"
    )
