"""Fig 13-style shard scaling over the real multiprocess transport.

Runs the same seeded graph + query batch at 1/2/4 shard worker
processes, checks every run's results against the deterministic
simulated twin, and records the result as ``BENCH_transport.json`` at
the repo root.

The scaling bar (>1.8x from 1 to 4 workers) is asserted only on hosts
with at least 4 CPU cores: worker processes can only overlap on real
parallel hardware, and the recorded ``cpu_count`` makes the context of
every archived number explicit.  Twin parity (``results_equal``) is
asserted unconditionally — correctness does not depend on core count.
"""

import json
import os
import pathlib

from repro.bench.transport_bench import scaling_experiment

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

SHARD_COUNTS = (1, 2, 4)
SCALING_BAR = 1.8


def test_transport_shard_scaling(show):
    result = scaling_experiment(shard_counts=SHARD_COUNTS)
    (REPO_ROOT / "BENCH_transport.json").write_text(
        json.dumps(result, indent=2) + "\n"
    )
    show(
        "Process transport: traversal throughput vs worker count",
        headers=["workers", "queries/s", "pipelined", "bytes sent"],
        rows=[
            [
                p["shards"],
                round(p["throughput_qps"], 1),
                p["transport"]["requests_pipelined"],
                p["transport"]["bytes_sent"],
            ]
            for p in result["points"]
        ],
        lines=[
            f"cpu_count: {result['cpu_count']}",
            f"scaling 1→{SHARD_COUNTS[-1]}: {result['scaling']:.2f}x",
            f"results_equal vs simulated twin: {result['results_equal']}",
        ],
    )
    assert result["results_equal"], (
        "process-transport results diverged from the simulated twin"
    )
    for point in result["points"]:
        assert point["transport"]["batched_messages"] > 0
    multi = [p for p in result["points"] if p["shards"] > 1]
    assert all(p["transport"]["requests_pipelined"] > 0 for p in multi)
    if (os.cpu_count() or 1) >= 4:
        assert result["scaling"] > SCALING_BAR, (
            f"throughput scaled only {result['scaling']:.2f}x from "
            f"{SHARD_COUNTS[0]} to {SHARD_COUNTS[-1]} workers "
            f"(need > {SCALING_BAR}x on a {os.cpu_count()}-core host)"
        )
