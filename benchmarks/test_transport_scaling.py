"""Fig 13-style shard scaling over the real multiprocess transport.

Two experiments, both recorded into ``BENCH_transport.json`` at the
repo root (one section each, ``cpu_count`` recorded uniformly):

* ``scaling`` — the same seeded graph + query batch at 1/2/4 shard
  worker processes, every run's results checked against the
  deterministic simulated twin;
* ``resident`` — the same query batch in ``images`` vs ``resident``
  execution mode on the same 4-worker deployment (the shard-resident
  node-program claim: ship the program to the data).

Twin/mode parity is asserted unconditionally — correctness does not
depend on core count.  The scaling and speedup bars are asserted only
on hosts with at least ``MIN_MEANINGFUL_CORES`` CPU cores (worker
processes can only overlap on real parallel hardware); smaller hosts
skip with a message naming the requirement, and :func:`record_bench`
refuses to let their numbers overwrite a recording from a qualifying
host.
"""

import os
import pathlib

import pytest

from repro.bench.transport_bench import (
    MIN_MEANINGFUL_CORES,
    record_bench,
    resident_comparison,
    scaling_experiment,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_transport.json"

SHARD_COUNTS = (1, 2, 4)
SCALING_BAR = 1.8
RESIDENT_SPEEDUP_BAR = 2.0


def test_transport_shard_scaling(show):
    cores = os.cpu_count() or 1
    result = scaling_experiment(shard_counts=SHARD_COUNTS)
    recorded = record_bench(BENCH_PATH, "scaling", result)
    show(
        "Process transport: traversal throughput vs worker count",
        headers=["workers", "queries/s", "pipelined", "bytes sent"],
        rows=[
            [
                p["shards"],
                round(p["throughput_qps"], 1),
                p["transport"]["requests_pipelined"],
                p["transport"]["bytes_sent"],
            ]
            for p in result["points"]
        ],
        lines=[
            f"cpu_count: {result['cpu_count']}",
            f"scaling 1→{SHARD_COUNTS[-1]}: {result['scaling']:.2f}x",
            f"results_equal vs simulated twin: {result['results_equal']}",
            f"recorded: {recorded}",
        ],
    )
    assert result["results_equal"], (
        "process-transport results diverged from the simulated twin"
    )
    for point in result["points"]:
        assert point["transport"]["batched_messages"] > 0
    multi = [p for p in result["points"] if p["shards"] > 1]
    assert all(p["transport"]["requests_pipelined"] > 0 for p in multi)
    if cores < MIN_MEANINGFUL_CORES:
        pytest.skip(
            f"shard-scaling bar needs >= {MIN_MEANINGFUL_CORES} CPU "
            f"cores (host has {cores}); twin parity verified, "
            f"throughput bar skipped"
        )
    assert recorded, "qualifying host's scaling run must be archived"
    assert result["scaling"] > SCALING_BAR, (
        f"throughput scaled only {result['scaling']:.2f}x from "
        f"{SHARD_COUNTS[0]} to {SHARD_COUNTS[-1]} workers "
        f"(need > {SCALING_BAR}x on a {cores}-core host)"
    )


def test_resident_vs_image_pull(show):
    cores = os.cpu_count() or 1
    result = resident_comparison()
    recorded = record_bench(BENCH_PATH, "resident", result)
    images, resident = result["images"], result["resident"]
    show(
        "Node programs: shard-resident vs client image-pull "
        f"({result['num_vertices']}v/{result['num_edges']}e/"
        f"{result['num_shards']} workers)",
        headers=["mode", "queries/s", "client reqs", "bytes recv",
                 "msgs/round"],
        rows=[
            [
                mode,
                round(point["throughput_qps"], 1),
                int(point["client_requests"]),
                int(point["client_bytes_received"]),
                round(point["wire_messages_per_round"], 1),
            ]
            for mode, point in (("images", images),
                                ("resident", resident))
        ],
        lines=[
            f"cpu_count: {result['cpu_count']}",
            f"speedup images→resident: {result['speedup']:.2f}x",
            f"results_equal across modes: {result['results_equal']}",
            f"recorded: {recorded}",
        ],
    )
    assert result["results_equal"], (
        "resident execution diverged from the image-pull path"
    )
    # The structural claim holds on any host: the resident client talks
    # to one coordinator per query instead of per-round per-shard, and
    # per-round peer coordination is bounded by the shard count while
    # image replies haul O(frontier) vertex images to the client.
    assert resident["client_requests"] < images["client_requests"]
    assert resident["client_bytes_received"] < (
        images["client_bytes_received"]
    )
    assert resident["wire_messages_per_round"] <= 2 * result["num_shards"]
    if cores < MIN_MEANINGFUL_CORES:
        pytest.skip(
            f"resident speedup bar needs >= {MIN_MEANINGFUL_CORES} CPU "
            f"cores (host has {cores}); mode parity verified, "
            f"speedup bar skipped"
        )
    assert recorded, "qualifying host's comparison must be archived"
    assert result["speedup"] >= RESIDENT_SPEEDUP_BAR, (
        f"resident execution only {result['speedup']:.2f}x over "
        f"image pulls (need >= {RESIDENT_SPEEDUP_BAR}x on a "
        f"{cores}-core host)"
    )
