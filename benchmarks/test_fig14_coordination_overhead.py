"""Fig 14: proactive vs reactive coordination as τ sweeps 10 µs - 1 s.

Paper's claim: with a small announce period τ, gatekeeper announce
traffic is high but vector clocks order nearly everything (few oracle
calls); as τ grows, announce traffic falls and reliance on the timeline
oracle rises toward ~1.2 messages per query.  An intermediate τ
balances the two.
"""

from repro.bench import harness
from repro.sim.clock import MSEC, USEC

TAUS = (10 * USEC, 100 * USEC, 1 * MSEC, 10 * MSEC, 100 * MSEC, 1.0)


def run_experiment():
    return harness.experiment_fig14(taus=TAUS, num_txs=3_000)


def test_fig14_coordination_overhead(benchmark, show):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    show(
        "Fig 14: coordination messages per query vs announce period",
        ["tau (s)", "announce msgs/query", "oracle msgs/query"],
        [
            (f"{tau:g}", round(a, 4), round(o, 4))
            for tau, a, o in result.rows()
        ],
    )
    rows = result.rows()
    announces = [a for _, a, _ in rows]
    oracle = [o for _, _, o in rows]
    # Announce overhead strictly falls with tau.
    assert all(x >= y for x, y in zip(announces, announces[1:]))
    # Oracle reliance climbs from near zero to ~1+ message per query.
    assert oracle[0] < 0.2
    assert oracle[-1] > 0.8
    # Crossover exists: some intermediate tau has both overheads low.
    combined = [a + o for _, a, o in rows]
    assert min(combined) < combined[0]
    assert min(combined) < combined[-1]


def run_event_driven(taus=(100 * USEC, 1 * MSEC, 5 * MSEC)):
    """The same tradeoff from the event-driven deployment: actual τ
    timers, network latency, and FIFO channels — an independent check
    on the arrival-process experiment above."""
    from repro.db import operations as ops
    from repro.db.config import WeaverConfig
    from repro.sim.deployment import SimulatedWeaver

    rows = []
    for tau in taus:
        sw = SimulatedWeaver(
            WeaverConfig(num_gatekeepers=3, num_shards=2),
            tau=tau,
            nop_period=500 * USEC,
        )
        n_txs = 60
        for i in range(n_txs):
            sw.submit_transaction(
                [ops.CreateVertex(f"v{i}")], new_vertices=(f"v{i}",)
            )
            sw.run(500 * USEC)
        sw.run(5 * MSEC)
        rows.append(
            (
                tau,
                sw.announce_messages() / n_txs,
                sw.oracle_messages() / n_txs,
            )
        )
    return rows


def test_fig14_event_driven_cross_check(benchmark, show):
    rows = benchmark.pedantic(run_event_driven, rounds=1, iterations=1)
    show(
        "Fig 14 (event-driven deployment cross-check)",
        ["tau (s)", "announce msgs/tx", "oracle msgs/tx"],
        [(f"{t:g}", round(a, 2), round(o, 2)) for t, a, o in rows],
    )
    announces = [a for _, a, _ in rows]
    oracle = [o for _, _, o in rows]
    assert announces == sorted(announces, reverse=True)
    assert oracle[-1] > oracle[0]
