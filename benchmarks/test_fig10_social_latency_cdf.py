"""Fig 10: transaction latency CDFs on the social-network workload.

Paper's claims: Weaver's node programs (reads) have lower latency than
its write transactions (writes also commit on the backing store); Titan's
heavyweight locking pushes even reads to tens of milliseconds; Weaver
beats Titan for all reads and most writes.
"""

from repro.bench import harness
from repro.bench.report import format_series


def run_experiment():
    return harness.experiment_fig10(total_ops=6_000)


def test_fig10_latency_cdfs(benchmark, show):
    runs = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for fraction, run in sorted(runs.items(), reverse=True):
        label = f"{fraction:.1%} reads"
        rows.append(
            (
                f"Weaver ({label})",
                round(run.weaver_latencies.median * 1000, 2),
                round(run.weaver_latencies.quantile(99) * 1000, 2),
            )
        )
        rows.append(
            (
                f"Titan ({label})",
                round(run.titan_latencies.median * 1000, 2),
                round(run.titan_latencies.quantile(99) * 1000, 2),
            )
        )
    show(
        "Fig 10: transaction latency on the LiveJournal-like graph",
        ["system (workload)", "p50 (ms)", "p99 (ms)"],
        rows,
        lines=[
            format_series(
                "Weaver 99.8% CDF (s, frac)",
                runs[0.998].weaver_latencies.cdf(points=8),
            ),
            format_series(
                "Titan 99.8% CDF (s, frac)",
                runs[0.998].titan_latencies.cdf(points=8),
            ),
        ],
    )
    tao = runs[0.998]
    mixed = runs[0.75]
    # Reads faster than writes in Weaver.
    assert (
        tao.weaver_read_latencies.mean < tao.weaver_write_latencies.mean
    )
    # Weaver below Titan at every quantile on the read-heavy mix.
    for q in (50, 90, 99):
        assert tao.weaver_latencies.quantile(q) < tao.titan_latencies.quantile(q)
    # And at the median on the mixed workload.
    assert mixed.weaver_latencies.median < mixed.titan_latencies.median
