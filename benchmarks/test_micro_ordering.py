"""Ordering fast-path microbenchmark (ISSUE: ordering fast path).

Times an oracle-heavy schedule — ≥ 500 events, ≥ 30 % vclock-concurrent
pairs — against the skyline-indexed oracle and the seed-equivalent
reference, asserts the ≥ 3x speedup acceptance bar, and records the
result as ``BENCH_ordering.json`` at the repo root.
"""

import json
import pathlib

from repro.bench.ordering_bench import build_workload, compare_fastpath

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_workload_shape():
    """The recorded workload actually is oracle-heavy."""
    workload = build_workload()
    assert len(workload.stamps) >= 500
    assert workload.concurrent_fraction >= 0.30


def test_indexed_oracle_speedup(show):
    result = compare_fastpath()
    (REPO_ROOT / "BENCH_ordering.json").write_text(
        json.dumps(result, indent=2) + "\n"
    )
    show(
        "Ordering fast path: indexed oracle vs seed reference",
        headers=["metric", "value"],
        rows=[
            ["events", result["num_events"]],
            ["pairs ordered + re-queried", result["num_pairs"]],
            ["concurrent fraction", f"{result['concurrent_fraction']:.1%}"],
            ["indexed (s)", f"{result['indexed_seconds']:.3f}"],
            ["reference (s)", f"{result['reference_seconds']:.3f}"],
            ["speedup", f"{result['speedup']:.2f}x"],
            ["BFS expansions", result["indexed_counters"]["bfs_expansions"]],
            ["BFS pruned", result["indexed_counters"]["bfs_pruned"]],
            [
                "reach-cache hits",
                result["indexed_counters"]["reach_cache_hits"],
            ],
        ],
    )
    assert result["concurrent_fraction"] >= 0.30
    assert result["speedup"] >= 3.0, (
        f"indexed oracle only {result['speedup']:.2f}x faster than the "
        f"seed reference (need >= 3x)"
    )
