"""Fig 8: CoinGraph block-render throughput vs block height.

Paper's claim: throughput of block render queries decreases as block
height increases (later blocks hold more transactions), while the system
sustains 5,000-20,000 vertex reads per second throughout.
"""

from repro.bench import harness

BASE_HEIGHTS = (1_000, 100_000, 150_000, 200_000, 250_000, 300_000, 350_000)


def run_experiment():
    return harness.experiment_fig8(
        base_heights=BASE_HEIGHTS, queries_per_point=150, clients=16
    )


def test_fig08_block_render_throughput(benchmark, show):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    show(
        "Fig 8: Block render throughput (queries from [x, x+100])",
        ["block", "queries/s", "vertex reads/s"],
        [
            (base, round(tx_s, 1), round(reads_s))
            for base, tx_s, reads_s in result.rows()
        ],
    )
    throughputs = [t for _, t, _ in result.rows()]
    # Monotone-ish decline: every later point below the first.
    assert all(t <= throughputs[0] for t in throughputs[1:])
    assert throughputs[-1] < throughputs[0] / 10
    # Sustained vertex-read rate stays in a healthy band.
    for _, _, reads_s in result.rows()[1:]:
        assert reads_s > 1_000
