"""Geo sweep: deadline fast path vs oracle-only baseline per tau.

For each tau the sweep runs two otherwise-identical geo deployments
(3 regions, asymmetric wide-area latency matrix, deadline-delayed
commit acks) differing only in whether the ordering layer may use the
Tiga-style deadline fast path.  The result is recorded as
``BENCH_geo.json`` at the repo root.

The acceptance claim: at equal tau the fast path cuts oracle calls
(``oracle_reduction`` > 1 on every point) while the referee and the
History/OnlineChecker digest parity stay clean on both modes.
"""

import json
import pathlib

from repro.sim.clock import USEC
from repro.workloads.geo import geo_sweep

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

TAUS = [50 * USEC, 200 * USEC, 800 * USEC]


def test_geo_sweep(show):
    result = geo_sweep(seed=7, taus=TAUS, num_regions=3)
    (REPO_ROOT / "BENCH_geo.json").write_text(
        json.dumps(result, indent=2) + "\n"
    )
    show(
        "Geo sweep: 3 regions, oracle calls baseline vs deadline fast path",
        headers=["tau (us)", "oracle base", "oracle fast", "reduction",
                 "fastpath wins", "p99 base (ms)", "p99 fast (ms)"],
        rows=[
            [
                f"{p['tau'] * 1e6:g}",
                p["baseline"]["oracle_calls"],
                p["fastpath"]["oracle_calls"],
                f"{p['oracle_reduction']:.1f}x",
                p["fastpath"]["deadline_fastpath"],
                round(p["baseline"]["tx_p99"] * 1000, 3),
                round(p["fastpath"]["tx_p99"] * 1000, 3),
            ]
            for p in result["points"]
        ],
        lines=[f"all_consistent: {result['all_consistent']}"],
    )
    assert result["all_consistent"], "referee or digest parity failed"
    for point in result["points"]:
        fast, base = point["fastpath"], point["baseline"]
        # Same workload committed on both sides — the comparison is fair.
        assert fast["committed"] == base["committed"]
        assert fast["committed"] > 0 and fast["reads_completed"] > 0
        # The fast path actually fired, and the baseline never did.
        assert fast["deadline_fastpath"] > 0
        assert base["deadline_fastpath"] == 0
        # The acceptance bar: fewer oracle calls at equal tau.
        assert base["oracle_calls"] > fast["oracle_calls"], (
            f"tau={point['tau']}: baseline {base['oracle_calls']} vs "
            f"fastpath {fast['oracle_calls']}"
        )
        assert point["oracle_reduction"] > 1.0
