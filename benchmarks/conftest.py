"""Shared helpers for the figure benchmarks.

Every benchmark prints its paper-style table through ``show`` (which
bypasses pytest's capture so the rows land in the terminal / tee'd
output), then times the experiment body under pytest-benchmark.
"""

from __future__ import annotations

import pytest

from repro.bench.report import format_table


@pytest.fixture
def show(capsys):
    """Print a table (or raw lines) through pytest's output capture."""

    def _show(title, headers=None, rows=None, lines=()):
        with capsys.disabled():
            print()
            if headers is not None:
                print(format_table(title, headers, rows))
            else:
                print(title)
            for line in lines:
                print(line)

    return _show
