"""Fig 11: traversal latency CDF — Weaver vs GraphLab (sync & async).

Paper's claims: on reachability BFS over a small Twitter graph with a
sequential client, Weaver averages 4.3x lower latency than asynchronous
GraphLab and 9.4x lower than synchronous GraphLab, despite supporting
online transactional updates; latency variance is high because the work
per query varies enormously.
"""

from repro.bench import harness
from repro.bench.report import format_series, ratio_check

PAPER_VS_ASYNC = 4.3
PAPER_VS_SYNC = 9.4


def run_experiment():
    return harness.experiment_fig11(
        num_vertices=400, num_queries=40, num_shards=8, num_machines=8
    )


def test_fig11_traversal_latency(benchmark, show):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    show(
        "Fig 11: reachability traversal latency (simulated)",
        ["system", "mean (ms)", "p50 (ms)", "p99 (ms)"],
        [
            (
                name,
                round(rec.mean * 1000, 3),
                round(rec.median * 1000, 3),
                round(rec.quantile(99) * 1000, 3),
            )
            for name, rec in (
                ("Weaver", result.weaver),
                ("GraphLab async", result.graphlab_async),
                ("GraphLab sync", result.graphlab_sync),
            )
        ],
        lines=[
            ratio_check(
                "vs async", result.speedup_vs_async, PAPER_VS_ASYNC, 0.7
            ),
            ratio_check(
                "vs sync", result.speedup_vs_sync, PAPER_VS_SYNC, 0.7
            ),
            format_series("Weaver CDF", result.weaver.cdf(points=6)),
            format_series(
                "GraphLab sync CDF", result.graphlab_sync.cdf(points=6)
            ),
        ],
    )
    assert result.answers_agree, "systems disagreed on reachability"
    assert 1.5 <= result.speedup_vs_async <= 12
    assert 3 <= result.speedup_vs_sync <= 30
    assert result.speedup_vs_sync > result.speedup_vs_async
