"""Closed-loop workload driver for the functional database.

Runs an operation stream against a live :class:`~repro.db.client.
WeaverClient`, recording per-op success and the protocol statistics the
figures report (reactive-ordering fraction, abort counts).  Timing for
the throughput/latency figures comes from the cost models in
:mod:`repro.bench.models`; this driver establishes the *functional*
ground truth those models are parameterized with.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..errors import TransactionAborted, WeaverError
from .tao import TaoWorkload, apply_to_weaver


@dataclass
class RunReport:
    """Outcome of one functional workload run."""

    operations: int = 0
    failures: int = 0
    counts: Dict[str, int] = field(default_factory=dict)
    ordering: Dict[str, int] = field(default_factory=dict)

    @property
    def reactive_fraction(self) -> float:
        total = sum(self.ordering.values())
        return self.ordering.get("reactive", 0) / total if total else 0.0


def run_tao(client, workload: TaoWorkload, num_ops: int) -> RunReport:
    """Replay ``num_ops`` TAO operations through the client.

    Failures (e.g. a create_edge racing a vertex deletion) are counted,
    not raised — a real workload driver retries and moves on.
    """
    report = RunReport()
    db = client.db
    before = db.ordering_stats()
    for op in workload.stream(num_ops):
        report.operations += 1
        report.counts[op[0]] = report.counts.get(op[0], 0) + 1
        try:
            apply_to_weaver(client, op, workload)
        except (TransactionAborted, WeaverError):
            report.failures += 1
    after = db.ordering_stats()
    report.ordering = {
        key: after[key] - before.get(key, 0) for key in after
    }
    return report
