"""Skewed-contention workloads: stress for the concurrency control.

The paper argues (sections 1, 7) that OCC suffers when contention on
objects is high and that 2PL over-serializes reads.  This workload makes
that measurable: writers pick target vertices from a Zipf-like
distribution whose skew parameter sweeps from uniform (s=0) to heavily
hot-spotted, and the driver records abort rates (Weaver/OCC) or lock
contention (Titan/2PL).
"""

from __future__ import annotations

import bisect
import random
from typing import List, Sequence, Tuple

from ..errors import TransactionAborted


class ZipfSampler:
    """Zipf(s) over ranks 1..n, via inverse-CDF table lookup."""

    def __init__(self, n: int, s: float, seed: int = 0):
        if n <= 0:
            raise ValueError("need at least one rank")
        if s < 0:
            raise ValueError("skew must be non-negative")
        self.n = n
        self.s = s
        weights = [1.0 / (rank ** s) for rank in range(1, n + 1)]
        total = sum(weights)
        self._cdf: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cdf.append(acc)
        self._rng = random.Random(seed)

    def sample(self) -> int:
        """A rank in [0, n), rank 0 being the hottest."""
        return bisect.bisect_left(self._cdf, self._rng.random())


class ContentionReport:
    """Outcome of one contention run."""

    def __init__(self, skew: float):
        self.skew = skew
        self.attempts = 0
        self.commits = 0
        self.aborts = 0

    @property
    def abort_rate(self) -> float:
        return self.aborts / self.attempts if self.attempts else 0.0


def run_contention(
    db,
    vertices: Sequence[str],
    skew: float,
    rounds: int = 50,
    writers_per_round: int = 2,
    seed: int = 0,
) -> ContentionReport:
    """Interleave ``writers_per_round`` open transactions per round, each
    read-modify-writing one Zipf-sampled vertex, and count OCC aborts.

    Skew=0 spreads writers uniformly (few conflicts); higher skew funnels
    them onto the same hot vertices (many first-committer-wins aborts) —
    the regime where the paper says OCC degrades.
    """
    sampler = ZipfSampler(len(vertices), skew, seed)
    report = ContentionReport(skew)
    for _ in range(rounds):
        open_txs: List[Tuple] = []
        for _ in range(writers_per_round):
            target = vertices[sampler.sample()]
            tx = db.begin_transaction()
            current = tx.get_vertex(target).get("n", 0)
            tx.set_property(target, "n", current + 1)
            open_txs.append(tx)
        for tx in open_txs:
            report.attempts += 1
            try:
                tx.commit()
                report.commits += 1
            except TransactionAborted:
                report.aborts += 1
    return report
