"""Geo-distributed scenario: regions, deadlines, and the oracle tradeoff.

One :func:`run_geo` call builds a :class:`SimulatedWeaver` spanning 2-3
regions connected by an asymmetric wide-area latency matrix, drives a
Zipf write/read mix whose multi-vertex transactions routinely straddle
regions, and measures what the paper's Fig 14 measures — coordination
per transaction — in the geo shape: how often ordering had to call the
timeline oracle, and what the commit latency looked like, as functions
of the announce period tau.

The deadline fast path (Tiga-style: every geo stamp carries a future
deadline synthesized from the synchronized clock plus the issuing
region's measured one-way reach, and concurrent stamps whose deadlines
differ by more than the clock-skew bound order without any oracle call)
can be switched off per run, so :func:`geo_sweep` produces matched
fastpath/oracle-only pairs at equal tau — the comparison recorded in
``BENCH_geo.json``.

Every run keeps the chaos referee attached: the offline
:class:`~repro.verify.history.History` checker and the streaming
:class:`~repro.verify.online.OnlineChecker` both verdict every recorded
run, and their digests must agree.

:func:`run_geo_soak` is the long-form variant — :func:`~repro.workloads.
chaos.run_soak`'s chunked Zipf traffic transplanted into the geo
cluster, with per-chunk crashes and a full region partition, digest
parity asserted after every chunk.  ``transport="process"`` runs the
standard soak against a real multiprocess cluster built with the geo
config (regions shape the oracle wiring; the latency matrix is
simulator-only).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..db.config import WeaverConfig
from ..db.operations import CreateVertex, SetVertexProperty
from ..programs.library import GetNode
from ..sim.clock import MSEC, USEC
from ..sim.deployment import SimulatedWeaver
from ..sim.faults import FaultPlan
from ..sim.network import RegionTopology
from ..verify.history import History, HistoryChecker, Violation, decided_order
from ..verify.online import OnlineChecker
from .chaos import SoakReport, run_soak
from .contention import ZipfSampler


def default_geo_topology(
    num_regions: int = 3,
    intra: float = 20 * USEC,
    scale: float = 1.0,
) -> RegionTopology:
    """An asymmetric 2- or 3-region wide-area latency matrix.

    The numbers are deliberately unequal in both directions (routing
    asymmetry), so nothing in the deadline path can get away with
    assuming a symmetric matrix.  ``scale`` shrinks the wide-area edges
    uniformly — soak tests use a smaller world so deadline-delayed acks
    stay well inside one chunk horizon.
    """
    if num_regions == 2:
        lat = [
            [intra, 6.0 * MSEC * scale],
            [6.5 * MSEC * scale, intra],
        ]
        jit = [
            [2 * USEC, 150 * USEC * scale],
            [2 * USEC, 2 * USEC],
        ]
    elif num_regions == 3:
        lat = [
            [intra, 6.0 * MSEC * scale, 9.0 * MSEC * scale],
            [6.5 * MSEC * scale, intra, 4.0 * MSEC * scale],
            [9.5 * MSEC * scale, 4.5 * MSEC * scale, intra],
        ]
        jit = [
            [2 * USEC, 150 * USEC * scale, 200 * USEC * scale],
            [150 * USEC * scale, 2 * USEC, 100 * USEC * scale],
            [200 * USEC * scale, 100 * USEC * scale, 2 * USEC],
        ]
    else:
        raise ValueError("default topology covers 2 or 3 regions")
    return RegionTopology(lat, jit)


@dataclass
class GeoReport:
    """Everything one geo run produced."""

    seed: int
    num_regions: int
    tau: float
    fastpath: bool
    duration: float
    committed: int = 0
    aborted: int = 0
    reads_completed: int = 0
    reads_lost: int = 0
    # Coordination accounting: ``oracle_calls`` is the *aggregated*
    # count (chain head + every region client's locally-served queries);
    # ``oracle_calls_head`` is what the pre-fix accounting saw.
    oracle_calls: int = 0
    oracle_calls_head: int = 0
    announce_messages: int = 0
    deadline_fastpath: int = 0
    deadline_fallback: int = 0
    tx_latency: Dict[str, float] = field(default_factory=dict)
    read_latency: Dict[str, float] = field(default_factory=dict)
    region_metrics: Dict[str, float] = field(default_factory=dict)
    digest: str = ""
    online_digest: str = ""
    violations: List[Violation] = field(default_factory=list)
    online_violations: List[Violation] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        return (
            not self.violations
            and not self.online_violations
            and self.digest == self.online_digest
        )

    @property
    def oracle_rate(self) -> float:
        """Oracle calls per committed transaction (Fig 14's y-axis)."""
        return self.oracle_calls / self.committed if self.committed else 0.0


def run_geo(
    seed: int,
    num_regions: int = 3,
    tau: float = 100 * USEC,
    duration: float = 40 * MSEC,
    num_vertices: int = 12,
    skew: float = 0.8,
    tx_period: float = 800 * USEC,
    read_period: float = 1900 * USEC,
    topology: Optional[RegionTopology] = None,
    plan: Optional[FaultPlan] = None,
    fastpath: bool = True,
    nop_period: float = 200 * USEC,
    drain: float = 60 * MSEC,
    config: Optional[WeaverConfig] = None,
) -> GeoReport:
    """One seeded geo run; returns the double-checked :class:`GeoReport`.

    ``fastpath=False`` is the oracle-only baseline at equal tau: the
    deployment is identical (same topology, same deadline stamps, same
    deadline-delayed commit acks), but every shard's ordering runs with
    ``skew_bound=None`` so concurrent comparisons go to the vector
    clocks, the cache, and the oracle — never the deadlines.  Whatever
    separates the two runs' oracle-call counts is the fast path's doing.
    """
    config = config or WeaverConfig(
        num_gatekeepers=num_regions, num_shards=num_regions,
        num_regions=num_regions,
    )
    topology = topology or default_geo_topology(num_regions)
    sim = SimulatedWeaver(
        config=config,
        tau=tau,
        nop_period=nop_period,
        heartbeat_period=4 * MSEC,
        gc_period=10 * duration + drain,
        fault_plan=plan,
        topology=topology,
    )
    if not fastpath:
        sim.skew_bound = None  # recovery replacements inherit this
        for shard in sim.shards:
            shard.ordering.skew_bound = None
    history = History()
    history.attach(sim.tracer)
    checker = OnlineChecker(decided_order(sim.oracle), registry=sim.metrics)
    checker.attach(sim.tracer)
    report = GeoReport(
        seed=seed, num_regions=num_regions, tau=tau,
        fastpath=fastpath, duration=duration,
    )

    vertices = [f"v{i}" for i in range(num_vertices)]
    sampler = ZipfSampler(num_vertices, skew, seed=seed)
    tags = iter(range(10**9))

    def submit_write(targets: List[str]) -> None:
        tag = next(tags)
        submitted_at = sim.simulator.now
        ops = [SetVertexProperty(v, "w", tag) for v in targets]

        def on_commit(ok: bool, ts_or_exc) -> None:
            if ok:
                sim.tracer.emit(
                    trace_id, "txn.commit", node="client",
                    tag=tag, ts=ts_or_exc,
                    writes=tuple((v, tag) for v in targets),
                    submitted_at=submitted_at,
                )
            else:
                report.aborted += 1

        trace_id = sim.submit_transaction(ops, callback=on_commit)

    def submit_read(target: str) -> None:
        query_id = next(tags)
        submitted_at = sim.simulator.now

        def on_result(result) -> None:
            if result is None:
                report.reads_lost += 1
                return
            observed = None
            if result.results:
                observed = result.results[0]["properties"].get("w")
            sim.tracer.emit(
                trace_id, "program.read", node="client",
                query_id=query_id, ts=result.timestamp,
                reads=((target, observed),), submitted_at=submitted_at,
            )
            report.reads_completed += 1

        trace_id = sim.submit_program(GetNode(), target, callback=on_result)

    # -- setup ----------------------------------------------------------

    for vertex in vertices:
        tag = next(tags)
        submitted_at = sim.simulator.now
        setup_trace = []

        def on_setup(ok, ts_or_exc, tag=tag, vertex=vertex,
                     submitted_at=submitted_at,
                     setup_trace=setup_trace) -> None:
            if ok:
                sim.tracer.emit(
                    setup_trace[0], "txn.commit", node="client",
                    tag=tag, ts=ts_or_exc, writes=((vertex, tag),),
                    submitted_at=submitted_at,
                )

        setup_trace.append(sim.submit_transaction(
            [CreateVertex(vertex), SetVertexProperty(vertex, "w", tag)],
            callback=on_setup,
            new_vertices=(vertex,),
        ))
        sim.run(200 * USEC)
    # Deadline-delayed acks: let every setup commit land before timing.
    sim.run(2 * MSEC + topology.max_reach())

    # -- measured phase: cross-region writers and readers ---------------

    horizon = sim.simulator.now + duration
    next_tx = sim.simulator.now + tx_period
    next_read = sim.simulator.now + read_period
    while min(next_tx, next_read) < horizon:
        if next_tx <= next_read:
            sim.run(next_tx - sim.simulator.now)
            first = vertices[sampler.sample()]
            second = vertices[sampler.sample()]
            submit_write([first] if first == second else [first, second])
            next_tx += tx_period
        else:
            sim.run(next_read - sim.simulator.now)
            submit_read(vertices[sampler.sample()])
            next_read += read_period

    # -- drain ----------------------------------------------------------

    sim.run(topology.max_reach() + duration * 0.25)
    sim.run_until_quiet(max_extra=drain)

    report.committed = len(history.commits)
    report.oracle_calls = sim.oracle_messages()
    report.oracle_calls_head = sim.oracle.stats.messages
    report.announce_messages = sim.announce_messages()
    snap = sim.metrics.snapshot()
    report.deadline_fastpath = int(snap.get("ordering.deadline_fastpath", 0))
    report.deadline_fallback = int(snap.get("ordering.deadline_fallback", 0))
    report.region_metrics = {
        key: value for key, value in snap.items()
        if key.startswith("region.")
    }
    report.tx_latency = sim.latency_tx.summary()
    report.read_latency = sim.latency_program.summary()
    report.digest = history.digest()
    report.violations = HistoryChecker(
        history, decided_order(sim.oracle)
    ).check()
    report.online_violations = checker.finalize()
    report.online_digest = checker.digest()
    return report


def geo_sweep(
    seed: int = 7,
    taus: Optional[List[float]] = None,
    num_regions: int = 3,
    duration: float = 40 * MSEC,
    **kwargs,
) -> dict:
    """Matched fastpath/oracle-only runs per tau — ``BENCH_geo.json``.

    Each tau gets two runs differing only in the ordering's deadline
    fast path.  The returned dict is JSON-ready; ``consistent`` must be
    True on every point (referee + digest parity), and the acceptance
    claim lives in ``oracle_reduction`` (baseline calls / fastpath
    calls, per tau).
    """
    taus = taus or [50 * USEC, 200 * USEC, 800 * USEC]
    points = []
    for tau in taus:
        pair = {}
        for fastpath in (True, False):
            rep = run_geo(
                seed, num_regions=num_regions, tau=tau,
                duration=duration, fastpath=fastpath, **kwargs,
            )
            pair["fastpath" if fastpath else "baseline"] = {
                "tau": tau,
                "committed": rep.committed,
                "aborted": rep.aborted,
                "reads_completed": rep.reads_completed,
                "oracle_calls": rep.oracle_calls,
                "oracle_calls_head": rep.oracle_calls_head,
                "oracle_rate": rep.oracle_rate,
                "announce_messages": rep.announce_messages,
                "deadline_fastpath": rep.deadline_fastpath,
                "deadline_fallback": rep.deadline_fallback,
                "tx_p50": rep.tx_latency.get("p50", 0.0),
                "tx_p99": rep.tx_latency.get("p99", 0.0),
                "digest": rep.digest,
                "online_digest": rep.online_digest,
                "violations": len(rep.violations)
                + len(rep.online_violations),
                "consistent": rep.consistent,
            }
        base = pair["baseline"]["oracle_calls"]
        fast = pair["fastpath"]["oracle_calls"]
        pair["tau"] = tau
        pair["oracle_reduction"] = (base / fast) if fast else float(base)
        points.append(pair)
    return {
        "seed": seed,
        "num_regions": num_regions,
        "duration": duration,
        "taus": taus,
        "points": points,
        "all_consistent": all(
            p[mode]["consistent"]
            for p in points for mode in ("fastpath", "baseline")
        ),
    }


# ---------------------------------------------------------------------------
# Geo soak: run_soak's chunked traffic inside the geo cluster.
# ---------------------------------------------------------------------------


def region_partition_plan(
    seed: int,
    topology: RegionTopology,
    region_a: int,
    region_b: int,
    start: float,
    end: float,
    drop_rate: float = 0.02,
) -> FaultPlan:
    """Faults for a geo soak: light message chaos plus a *region*
    partition — every link between a server in ``region_a`` and one in
    ``region_b`` is cut for [start, end).  Server placement is read from
    the topology, so the plan always matches the deployment."""
    plan = (
        FaultPlan(seed=seed)
        .drop(drop_rate)
        .duplicate(drop_rate)
        .delay(0.05, extra_delay=150 * USEC)
    )
    names = sorted(topology.assignments)
    for a in names:
        if topology.region_of(a) != region_a:
            continue
        for b in names:
            if topology.region_of(b) != region_b:
                continue
            plan.partition(a, b, start=start, end=end)
    return plan


def run_geo_soak(
    seed: int,
    transport: str = "sim",
    chunks: int = 4,
    chunk_horizon: float = 20 * MSEC,
    num_regions: int = 2,
    num_vertices: int = 10,
    skew: float = 0.8,
    crash_every: int = 2,
) -> SoakReport:
    """Chunked Zipf soak in the geo cluster, referee always on.

    ``transport="sim"`` mirrors :func:`~repro.workloads.chaos.run_soak`'s
    sim arm on a geo deployment: a scaled-down wide-area topology, a
    gatekeeper/shard crash every ``crash_every`` chunks, and a full
    region partition across the middle chunks, with History vs
    OnlineChecker digest parity asserted after every chunk.
    ``transport="process"`` delegates to :func:`run_soak` with the geo
    cluster shape (``num_regions`` in the config wires the region oracle
    clients; a real network brings its own latencies).
    """
    if transport == "process":
        return run_soak(
            seed,
            transport="process",
            chunks=chunks,
            num_vertices=num_vertices,
            skew=skew,
            crash_every=crash_every,
            config=WeaverConfig(
                num_gatekeepers=2, num_shards=2, num_regions=num_regions
            ),
        )
    if transport != "sim":
        raise ValueError(f"unknown transport {transport!r}")

    config = WeaverConfig(
        num_gatekeepers=num_regions, num_shards=num_regions,
        num_regions=num_regions,
    )
    # A smaller world than run_geo's: deadline-delayed acks must clear
    # well inside one chunk horizon or the parity samples starve.
    topology = default_geo_topology(num_regions, scale=0.25)
    # Placement happens inside SimulatedWeaver, but the partition plan
    # needs it up front — mirror the builder's round-robin here.
    for i in range(config.num_gatekeepers):
        topology.assign(f"gk{i}", i % num_regions)
    for i in range(config.num_shards):
        topology.assign(f"shard{i}", i % num_regions)
    total = chunks * chunk_horizon
    plan = region_partition_plan(
        seed, topology, 0, 1 % num_regions,
        start=0.35 * total, end=0.55 * total,
    )
    sim = SimulatedWeaver(
        config=config,
        tau=100 * USEC,
        nop_period=200 * USEC,
        heartbeat_period=4 * MSEC,
        gc_period=chunk_horizon / 2,
        fault_plan=plan,
        topology=topology,
    )
    report = SoakReport(seed=seed, transport="sim")
    checker = OnlineChecker(decided_order(sim.oracle), registry=sim.metrics)
    checker.attach(sim.tracer)
    history = History()
    history.attach(sim.tracer)

    vertices = [f"v{i}" for i in range(num_vertices)]
    sampler = ZipfSampler(num_vertices, skew, seed=seed)
    tags = iter(range(10**9))
    tx_period = 900 * USEC
    read_period = 2100 * USEC

    def submit_write(targets: List[str]) -> None:
        tag = next(tags)
        submitted_at = sim.simulator.now
        ops = [SetVertexProperty(v, "w", tag) for v in targets]

        def on_commit(ok: bool, ts_or_exc) -> None:
            if ok:
                sim.tracer.emit(
                    trace_id, "txn.commit", node="client",
                    tag=tag, ts=ts_or_exc,
                    writes=tuple((v, tag) for v in targets),
                    submitted_at=submitted_at,
                )
            else:
                report.aborted += 1

        trace_id = sim.submit_transaction(ops, callback=on_commit)

    def submit_read(target: str) -> None:
        query_id = next(tags)
        submitted_at = sim.simulator.now

        def on_result(result) -> None:
            if result is None:
                report.reads_lost += 1
                return
            observed = None
            if result.results:
                observed = result.results[0]["properties"].get("w")
            sim.tracer.emit(
                trace_id, "program.read", node="client",
                query_id=query_id, ts=result.timestamp,
                reads=((target, observed),), submitted_at=submitted_at,
            )
            report.reads_completed += 1

        trace_id = sim.submit_program(GetNode(), target, callback=on_result)

    for vertex in vertices:
        tag = next(tags)
        submitted_at = sim.simulator.now
        setup_trace = []

        def on_setup(ok, ts_or_exc, tag=tag, vertex=vertex,
                     submitted_at=submitted_at,
                     setup_trace=setup_trace) -> None:
            if ok:
                sim.tracer.emit(
                    setup_trace[0], "txn.commit", node="client",
                    tag=tag, ts=ts_or_exc, writes=((vertex, tag),),
                    submitted_at=submitted_at,
                )

        setup_trace.append(sim.submit_transaction(
            [CreateVertex(vertex), SetVertexProperty(vertex, "w", tag)],
            callback=on_setup,
            new_vertices=(vertex,),
        ))
        sim.run(200 * USEC)
    sim.run(2 * MSEC + topology.max_reach())

    import time

    started = time.monotonic()
    for chunk in range(chunks):
        if crash_every and chunk % crash_every == crash_every - 1:
            cycle = chunk // crash_every
            if cycle % 2 == 0:
                sim.crash_shard((seed + cycle) % config.num_shards)
            else:
                sim.crash_gatekeeper(
                    (seed + cycle) % config.num_gatekeepers
                )
        horizon = sim.simulator.now + chunk_horizon
        next_tx = sim.simulator.now + tx_period
        next_read = sim.simulator.now + read_period
        while min(next_tx, next_read) < horizon:
            if next_tx <= next_read:
                sim.run(next_tx - sim.simulator.now)
                first = vertices[sampler.sample()]
                second = vertices[sampler.sample()]
                submit_write(
                    [first] if first == second else [first, second]
                )
                next_tx += tx_period
            else:
                sim.run(next_read - sim.simulator.now)
                submit_read(vertices[sampler.sample()])
                next_read += read_period
        sim.run(horizon - sim.simulator.now)
        report.window_samples.append(checker.window_size())
        report.committed_samples.append(checker.stats.commits)
        report.parity_checks += 1
        if history.digest() != checker.digest():
            report.parity_failures += 1

    sim.run(chunk_horizon * 0.5 + topology.max_reach())
    sim.run_until_quiet(max_extra=80 * MSEC)
    report.chunks = chunks
    report.wall_seconds = time.monotonic() - started
    report.online_violations = checker.finalize()
    report.digest = checker.digest()
    report.offline_digest = history.digest()
    report.parity_checks += 1
    if report.offline_digest != report.digest:
        report.parity_failures += 1
    report.offline_violations = HistoryChecker(
        history, decided_order(sim.oracle)
    ).check()
    report.committed = checker.stats.commits
    report.recoveries = sim.recoveries
    report.watermarks = checker.stats.watermarks
    report.pruned = checker.stats.pruned
    report.window_peak = checker.stats.window_peak
    report.window_final = checker.window_size()
    if report.wall_seconds > 0:
        report.throughput = report.committed / report.wall_seconds
    report.metrics = sim.metrics.snapshot()
    return report
