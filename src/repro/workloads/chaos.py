"""Seeded chaos runs: contended writes plus reads under injected faults.

One :func:`run_chaos` call builds a :class:`SimulatedWeaver` with a
:class:`~repro.sim.faults.FaultPlan` (message drops, duplicates, delays,
a partition, and at least one gatekeeper crash and one shard crash),
drives a Zipf-contended write/read mix against it, records everything
observable into a :class:`~repro.verify.history.History`, and checks the
history for strict-serializability violations.

Everything is derived from the single ``seed``: the fault schedule, the
Zipf targets, the submission times.  Two runs with the same seed produce
bit-for-bit identical histories (compare :meth:`History.digest`), which
is what makes a chaos failure reproducible and a determinism regression
detectable.

Writes tag each touched vertex with the writing transaction's unique
integer tag (property ``"w"``); reads are ``GetNode`` programs whose
observed tag identifies the newest write their snapshot contained.  That
one property is enough for the checker to reconstruct per-vertex write
chains and read positions.
"""

from __future__ import annotations

import dataclasses
import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..db.config import WeaverConfig
from ..db.operations import CreateVertex, SetVertexProperty
from ..programs.library import GetNode
from ..sim.clock import MSEC, USEC
from ..sim.deployment import SimulatedWeaver
from ..sim.faults import FaultPlan
from ..verify.history import History, HistoryChecker, Violation, decided_order
from ..verify.online import OnlineChecker
from .contention import ZipfSampler


def default_fault_plan(
    seed: int,
    duration: float,
    num_gatekeepers: int,
    num_shards: int,
    drop_rate: float = 0.05,
    duplicate_rate: float = 0.05,
    delay_rate: float = 0.1,
    extra_delay: float = 300 * USEC,
) -> FaultPlan:
    """The standard chaos mix for a run of ``duration`` seconds.

    Crashes one gatekeeper at ~35% of the horizon and one shard at ~60%
    (seed-selected indices), partitions one gatekeeper-shard pair for a
    stretch of the first half, and sprinkles probabilistic drops,
    duplicates, and delays over all message kinds.
    """
    gk_victim = seed % num_gatekeepers
    shard_victim = seed % num_shards
    part_gk = (seed + 1) % num_gatekeepers
    part_shard = (seed + 1) % num_shards
    plan = (
        FaultPlan(seed=seed)
        .drop(drop_rate)
        .duplicate(duplicate_rate)
        .delay(delay_rate, extra_delay=extra_delay)
        .partition(
            f"gk{part_gk}",
            f"shard{part_shard}",
            start=0.15 * duration,
            end=0.30 * duration,
        )
        .crash_gatekeeper(gk_victim, at=0.35 * duration)
        .crash_shard(shard_victim, at=0.60 * duration)
    )
    return plan


@dataclass
class ChaosReport:
    """Everything one seeded chaos run produced."""

    seed: int
    duration: float
    committed: int = 0
    aborted: int = 0
    reads_completed: int = 0
    reads_lost: int = 0
    recoveries: int = 0
    stragglers_dropped: int = 0
    duplicates_discarded: int = 0
    faults: Dict[str, int] = field(default_factory=dict)
    history: Optional[History] = None
    violations: List[Violation] = field(default_factory=list)
    digest: str = ""
    # Observability: commit/read latency summaries (count, p50/p95/p99 —
    # the Fig 10/11 CDF data comes from the same histograms via
    # ``metrics``), the full metric snapshot, and the run's tracer for
    # span-chain reconstruction (`repro trace`).
    tx_latency: Dict[str, float] = field(default_factory=dict)
    read_latency: Dict[str, float] = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict)
    tracer: Optional[object] = None
    # With ``online=True``: the streaming checker's verdict and digest,
    # plus the checker itself (window gauges, stats).
    online_violations: List[Violation] = field(default_factory=list)
    online_digest: str = ""
    online: Optional[OnlineChecker] = None

    @property
    def consistent(self) -> bool:
        return not self.violations and not self.online_violations


def run_chaos(
    seed: int,
    duration: float = 60 * MSEC,
    num_vertices: int = 12,
    skew: float = 0.8,
    tx_period: float = 800 * USEC,
    read_period: float = 1900 * USEC,
    config: Optional[WeaverConfig] = None,
    plan: Optional[FaultPlan] = None,
    heartbeat_period: float = 2 * MSEC,
    drain: float = 80 * MSEC,
    tau: float = 100 * USEC,
    nop_period: float = 100 * USEC,
    online: bool = False,
) -> ChaosReport:
    """One seeded chaos run; returns the checked :class:`ChaosReport`.

    Phases: *setup* (create and tag every vertex, no faults are usually
    scheduled that early), *chaos* (writers and readers on Zipf-sampled
    targets for ``duration`` simulated seconds, while the plan's crashes,
    partition, and message faults play out), *drain* (let partitions
    heal, recoveries finish, and every outstanding read complete).
    """
    config = config or WeaverConfig()
    if plan is None:
        plan = default_fault_plan(
            seed, duration, config.num_gatekeepers, config.num_shards
        )
    sim = SimulatedWeaver(
        config=config,
        tau=tau,
        # A coarser NOP cadence than the production default keeps the
        # oracle's event DAG small enough that reachability queries (both
        # the scheduler's and the checker's) stay cheap over a whole run.
        nop_period=nop_period,
        heartbeat_period=heartbeat_period,
        # One GC pass well after the horizon: mid-run collection would
        # only shrink what the checker can decide, not break it, but
        # keeping decisions makes the check as strong as possible.
        gc_period=10 * duration + drain,
        fault_plan=plan,
    )
    history = History()
    # The referee consumes the trace stream: shard.apply spans feed the
    # apply sequences, and the workload emits txn.commit / program.read
    # spans below instead of calling record_* directly.
    history.attach(sim.tracer)
    checker: Optional[OnlineChecker] = None
    if online:
        # The streaming referee rides the same stream; with chaos's
        # one-pass-after-the-horizon GC it settles everything at
        # finalize, so its verdict and digest must match the offline
        # checker's exactly (the differential suite's invariant).
        checker = OnlineChecker(
            decided_order(sim.oracle), registry=sim.metrics
        )
        checker.attach(sim.tracer)
    report = ChaosReport(seed=seed, duration=duration)

    vertices = [f"v{i}" for i in range(num_vertices)]
    sampler = ZipfSampler(num_vertices, skew, seed=seed)
    tags = iter(range(10**9))

    def submit_write(targets: List[str]) -> None:
        tag = next(tags)
        submitted_at = sim.simulator.now
        ops = [SetVertexProperty(v, "w", tag) for v in targets]

        def on_commit(ok: bool, ts_or_exc) -> None:
            if ok:
                sim.tracer.emit(
                    trace_id, "txn.commit", node="client",
                    tag=tag,
                    ts=ts_or_exc,
                    writes=tuple((v, tag) for v in targets),
                    submitted_at=submitted_at,
                )
            else:
                report.aborted += 1

        trace_id = sim.submit_transaction(ops, callback=on_commit)

    def submit_read(target: str) -> None:
        query_id = next(tags)
        submitted_at = sim.simulator.now

        def on_result(result) -> None:
            if result is None:
                report.reads_lost += 1
                return
            observed = None
            if result.results:
                observed = result.results[0]["properties"].get("w")
            sim.tracer.emit(
                trace_id, "program.read", node="client",
                query_id=query_id,
                ts=result.timestamp,
                reads=((target, observed),),
                submitted_at=submitted_at,
            )
            report.reads_completed += 1

        trace_id = sim.submit_program(GetNode(), target, callback=on_result)

    # -- setup: create every vertex with an initial tag ------------------

    for vertex in vertices:
        tag = next(tags)
        submitted_at = sim.simulator.now
        setup_trace = []

        def on_setup(ok, ts_or_exc, tag=tag, vertex=vertex,
                     submitted_at=submitted_at,
                     setup_trace=setup_trace) -> None:
            if ok:
                sim.tracer.emit(
                    setup_trace[0], "txn.commit", node="client",
                    tag=tag, ts=ts_or_exc, writes=((vertex, tag),),
                    submitted_at=submitted_at,
                )

        setup_trace.append(sim.submit_transaction(
            [CreateVertex(vertex), SetVertexProperty(vertex, "w", tag)],
            callback=on_setup,
            new_vertices=(vertex,),
        ))
        sim.run(100 * USEC)
    sim.run(2 * MSEC)  # let setup forwards land everywhere

    # -- chaos: interleaved writers and readers --------------------------

    horizon = sim.simulator.now + duration
    next_tx = sim.simulator.now + tx_period
    next_read = sim.simulator.now + read_period
    while min(next_tx, next_read) < horizon:
        if next_tx <= next_read:
            sim.run(next_tx - sim.simulator.now)
            first = vertices[sampler.sample()]
            second = vertices[sampler.sample()]
            targets = [first] if first == second else [first, second]
            submit_write(targets)
            next_tx += tx_period
        else:
            sim.run(next_read - sim.simulator.now)
            submit_read(vertices[sampler.sample()])
            next_read += read_period

    # -- drain: heal, recover, complete ----------------------------------

    sim.run(duration * 0.5)
    sim.run_until_quiet(max_extra=drain)

    report.committed = len(history.commits)
    report.recoveries = sim.recoveries
    report.stragglers_dropped = sim.stragglers_dropped
    report.duplicates_discarded = sum(
        shard.stats.duplicates_discarded for shard in sim.shards
    )
    report.faults = dict(sim.network.stats.faults)
    report.history = history
    report.digest = history.digest()
    offline = HistoryChecker(history, decided_order(sim.oracle))
    report.violations = offline.check()
    if checker is not None:
        report.online_violations = checker.finalize()
        report.online_digest = checker.digest()
        report.online = checker
    report.tx_latency = sim.latency_tx.summary()
    report.read_latency = sim.latency_program.summary()
    report.metrics = sim.metrics.snapshot()
    report.tracer = sim.tracer
    return report


# ---------------------------------------------------------------------------
# Soak: long-running chunked workload with the online referee always on.
# ---------------------------------------------------------------------------


@dataclass
class SoakReport:
    """Everything one soak run produced (see :func:`run_soak`)."""

    seed: int
    transport: str
    store: str = "memory"
    chunks: int = 0
    committed: int = 0
    aborted: int = 0
    reads_completed: int = 0
    reads_lost: int = 0
    recoveries: int = 0
    watermarks: int = 0
    wall_seconds: float = 0.0
    throughput: float = 0.0  # commits per wall-clock second
    # Parity: online digest vs offline History digest, per chunk + final.
    parity_checks: int = 0
    parity_failures: int = 0
    digest: str = ""
    offline_digest: str = ""
    online_violations: List[Violation] = field(default_factory=list)
    offline_violations: List[Violation] = field(default_factory=list)
    # Memory bound: retained-window size sampled after each chunk, and
    # the commit count at the same instants (growth vs flatness).
    window_samples: List[int] = field(default_factory=list)
    committed_samples: List[int] = field(default_factory=list)
    window_peak: int = 0
    window_final: int = 0
    pruned: int = 0
    metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return (
            not self.online_violations
            and not self.offline_violations
            and self.parity_failures == 0
        )


def run_soak(
    seed: int,
    transport: str = "sim",
    chunks: Optional[int] = None,
    wall_seconds: Optional[float] = None,
    chunk_horizon: float = 30 * MSEC,
    num_vertices: int = 12,
    skew: float = 0.8,
    tx_period: float = 800 * USEC,
    read_period: float = 1900 * USEC,
    crash_every: int = 4,
    config: Optional[WeaverConfig] = None,
    parity: bool = True,
    offline_check: bool = True,
    store: str = "memory",
    store_cache_bytes: Optional[int] = None,
) -> SoakReport:
    """A long-running seeded Zipf + fault workload, referee always on.

    The run is *chunked*: each chunk drives ``chunk_horizon`` of Zipf
    writes/reads (sim) or a fixed op batch (process transport), with a
    crash-and-recover injected every ``crash_every`` chunks and the GC
    watermark advancing throughout — so the :class:`OnlineChecker`
    settles and prunes continuously instead of buffering the whole run.
    After every chunk the harness samples the checker's retained-window
    size and asserts digest parity against the offline :class:`History`
    fed from the same span stream.

    Stop condition: ``chunks`` (deterministic, used by tests) or
    ``wall_seconds`` (the CLI's ``repro soak --duration``); with
    neither, 8 chunks.

    ``store="sqlite"`` runs the whole soak on the durable SQLite/WAL
    backend in a temporary database (removed afterwards): commits go
    through real OCC-over-SQL, and process-transport crash recovery
    reopens the database in the replacement worker instead of shipping
    a dict snapshot.  ``store_cache_bytes`` bounds its page cache, so a
    small budget soaks the larger-than-RAM paging paths too.
    """
    if transport not in ("sim", "process"):
        raise ValueError(f"unknown transport {transport!r}")
    if store not in ("memory", "sqlite"):
        raise ValueError(f"unknown store {store!r}")
    if chunks is None and wall_seconds is None:
        chunks = 8
    tmpdir: Optional[str] = None
    if store == "sqlite":
        tmpdir = tempfile.mkdtemp(prefix="weaver-soak-")
        base = config or WeaverConfig(num_gatekeepers=2, num_shards=2)
        config = dataclasses.replace(
            base,
            store_backend="sqlite",
            store_path=os.path.join(tmpdir, "soak.db"),
            store_cache_bytes=(
                store_cache_bytes if store_cache_bytes is not None
                else base.store_cache_bytes
            ),
        )
    try:
        if transport == "sim":
            report = _soak_sim(
                seed, chunks, wall_seconds, chunk_horizon, num_vertices,
                skew, tx_period, read_period, crash_every, config, parity,
                offline_check,
            )
        else:
            report = _soak_process(
                seed, chunks, wall_seconds, num_vertices, skew,
                crash_every, config, parity, offline_check,
            )
    finally:
        if tmpdir is not None:
            shutil.rmtree(tmpdir, ignore_errors=True)
    report.store = store
    return report


def _soak_sim(
    seed, chunks, wall_seconds, chunk_horizon, num_vertices, skew,
    tx_period, read_period, crash_every, config, parity, offline_check,
) -> SoakReport:
    config = config or WeaverConfig()
    # Message-level faults stay on for the whole run; crashes are
    # injected per chunk below so an unbounded run keeps faulting.
    plan = (
        FaultPlan(seed=seed)
        .drop(0.03)
        .duplicate(0.03)
        .delay(0.08, extra_delay=200 * USEC)
    )
    sim = SimulatedWeaver(
        config=config,
        tau=100 * USEC,
        nop_period=100 * USEC,
        heartbeat_period=2 * MSEC,
        # Live GC: the watermark advances twice per chunk, which is the
        # whole point — the online checker must keep up with pruning.
        gc_period=chunk_horizon / 2,
        fault_plan=plan,
    )
    report = SoakReport(seed=seed, transport="sim")
    checker = OnlineChecker(decided_order(sim.oracle), registry=sim.metrics)
    checker.attach(sim.tracer)
    history: Optional[History] = None
    if parity:
        history = History()
        history.attach(sim.tracer)

    vertices = [f"v{i}" for i in range(num_vertices)]
    sampler = ZipfSampler(num_vertices, skew, seed=seed)
    tags = iter(range(10**9))

    def submit_write(targets: List[str]) -> None:
        tag = next(tags)
        submitted_at = sim.simulator.now
        ops = [SetVertexProperty(v, "w", tag) for v in targets]

        def on_commit(ok: bool, ts_or_exc) -> None:
            if ok:
                sim.tracer.emit(
                    trace_id, "txn.commit", node="client",
                    tag=tag, ts=ts_or_exc,
                    writes=tuple((v, tag) for v in targets),
                    submitted_at=submitted_at,
                )
            else:
                report.aborted += 1

        trace_id = sim.submit_transaction(ops, callback=on_commit)

    def submit_read(target: str) -> None:
        query_id = next(tags)
        submitted_at = sim.simulator.now

        def on_result(result) -> None:
            if result is None:
                report.reads_lost += 1
                return
            observed = None
            if result.results:
                observed = result.results[0]["properties"].get("w")
            sim.tracer.emit(
                trace_id, "program.read", node="client",
                query_id=query_id, ts=result.timestamp,
                reads=((target, observed),), submitted_at=submitted_at,
            )
            report.reads_completed += 1

        trace_id = sim.submit_program(GetNode(), target, callback=on_result)

    for vertex in vertices:
        tag = next(tags)
        submitted_at = sim.simulator.now
        setup_trace = []

        def on_setup(ok, ts_or_exc, tag=tag, vertex=vertex,
                     submitted_at=submitted_at,
                     setup_trace=setup_trace) -> None:
            if ok:
                sim.tracer.emit(
                    setup_trace[0], "txn.commit", node="client",
                    tag=tag, ts=ts_or_exc, writes=((vertex, tag),),
                    submitted_at=submitted_at,
                )

        setup_trace.append(sim.submit_transaction(
            [CreateVertex(vertex), SetVertexProperty(vertex, "w", tag)],
            callback=on_setup,
            new_vertices=(vertex,),
        ))
        sim.run(100 * USEC)
    sim.run(2 * MSEC)

    started = time.monotonic()
    deadline = None if wall_seconds is None else started + wall_seconds
    chunk = 0
    while True:
        if chunks is not None and chunk >= chunks:
            break
        if deadline is not None and time.monotonic() >= deadline:
            break
        if crash_every and chunk % crash_every == crash_every - 1:
            cycle = chunk // crash_every
            if cycle % 2 == 0:
                sim.crash_shard((seed + cycle) % config.num_shards)
            else:
                sim.crash_gatekeeper(
                    (seed + cycle) % config.num_gatekeepers
                )
        horizon = sim.simulator.now + chunk_horizon
        next_tx = sim.simulator.now + tx_period
        next_read = sim.simulator.now + read_period
        while min(next_tx, next_read) < horizon:
            if next_tx <= next_read:
                sim.run(next_tx - sim.simulator.now)
                first = vertices[sampler.sample()]
                second = vertices[sampler.sample()]
                submit_write(
                    [first] if first == second else [first, second]
                )
                next_tx += tx_period
            else:
                sim.run(next_read - sim.simulator.now)
                submit_read(vertices[sampler.sample()])
                next_read += read_period
        sim.run(horizon - sim.simulator.now)
        chunk += 1
        report.window_samples.append(checker.window_size())
        report.committed_samples.append(checker.stats.commits)
        if history is not None:
            report.parity_checks += 1
            if history.digest() != checker.digest():
                report.parity_failures += 1

    sim.run(chunk_horizon * 0.5)
    sim.run_until_quiet(max_extra=80 * MSEC)
    report.chunks = chunk
    report.wall_seconds = time.monotonic() - started
    report.online_violations = checker.finalize()
    report.digest = checker.digest()
    if history is not None:
        report.offline_digest = history.digest()
        report.parity_checks += 1
        if report.offline_digest != report.digest:
            report.parity_failures += 1
        if offline_check:
            # Mid-run GC already collected old decisions, so this pass
            # is weaker than the online one — but still sound, and it
            # cross-checks the shared taxonomy end to end.
            offline = HistoryChecker(history, decided_order(sim.oracle))
            report.offline_violations = offline.check()
    report.committed = checker.stats.commits
    report.recoveries = sim.recoveries
    report.watermarks = checker.stats.watermarks
    report.pruned = checker.stats.pruned
    report.window_peak = checker.stats.window_peak
    report.window_final = checker.window_size()
    if report.wall_seconds > 0:
        report.throughput = report.committed / report.wall_seconds
    report.metrics = sim.metrics.snapshot()
    return report


def _soak_process(
    seed, chunks, wall_seconds, num_vertices, skew, crash_every, config,
    parity, offline_check, writes_per_chunk: int = 10,
    reads_per_chunk: int = 3,
) -> SoakReport:
    from ..cluster.process import ProcessWeaver

    config = config or WeaverConfig(num_shards=2, num_gatekeepers=2)
    report = SoakReport(seed=seed, transport="process")
    vertices = [f"v{i}" for i in range(num_vertices)]
    sampler = ZipfSampler(num_vertices, skew, seed=seed)
    tags = iter(range(10**9))

    with ProcessWeaver(config) as db:
        checker = OnlineChecker(
            decided_order(db.oracle), registry=db.metrics
        )
        checker.attach(db.tracer)
        history: Optional[History] = None
        if parity:
            history = History()
            history.attach(db.tracer)

        def write(targets: List[str]) -> None:
            tag = next(tags)
            submitted_at = time.perf_counter()
            tx = db.begin_transaction()
            for target in targets:
                tx.set_property(target, "w", tag)
            ts = tx.commit()
            db.tracer.emit(
                tx.trace_id, "txn.commit", node="client",
                at=time.perf_counter(), tag=tag, ts=ts,
                writes=tuple((t, tag) for t in targets),
                submitted_at=submitted_at,
            )

        def read(target: str) -> None:
            query_id = next(tags)
            submitted_at = time.perf_counter()
            result = db.run_program(GetNode(), target)
            observed = result.value["properties"].get("w")
            db.tracer.emit(
                db.tracer.next_trace_id(), "program.read", node="client",
                at=time.perf_counter(), query_id=query_id,
                ts=result.timestamp, reads=((target, observed),),
                submitted_at=submitted_at,
            )
            report.reads_completed += 1

        for vertex in vertices:
            tag = next(tags)
            submitted_at = time.perf_counter()
            tx = db.begin_transaction()
            tx.create_vertex(vertex)
            tx.set_property(vertex, "w", tag)
            ts = tx.commit()
            db.tracer.emit(
                tx.trace_id, "txn.commit", node="client",
                at=time.perf_counter(), tag=tag, ts=ts,
                writes=((vertex, tag),), submitted_at=submitted_at,
            )
        db.drain()

        started = time.monotonic()
        deadline = None if wall_seconds is None else started + wall_seconds
        chunk = 0
        while True:
            if chunks is not None and chunk >= chunks:
                break
            if deadline is not None and time.monotonic() >= deadline:
                break
            if crash_every and chunk % crash_every == crash_every - 1:
                victim = (seed + chunk // crash_every) % config.num_shards
                db.kill_shard_worker(victim)
                db.recover_shard(victim)
            for i in range(writes_per_chunk):
                first = vertices[sampler.sample()]
                second = vertices[sampler.sample()]
                write([first] if first == second else [first, second])
                if i % (writes_per_chunk // reads_per_chunk + 1) == 1:
                    read(vertices[sampler.sample()])
            db.drain()
            # Advance the GC watermark: emits the gc.watermark span the
            # checker settles on, then collects below it.
            db.collect_garbage()
            chunk += 1
            report.window_samples.append(checker.window_size())
            report.committed_samples.append(checker.stats.commits)
            if history is not None:
                report.parity_checks += 1
                if history.digest() != checker.digest():
                    report.parity_failures += 1

        db.drain()
        read(vertices[0])
        read(vertices[1])
        report.chunks = chunk
        report.wall_seconds = time.monotonic() - started
        report.online_violations = checker.finalize()
        report.digest = checker.digest()
        if history is not None:
            report.offline_digest = history.digest()
            report.parity_checks += 1
            if report.offline_digest != report.digest:
                report.parity_failures += 1
            if offline_check:
                offline = HistoryChecker(
                    history, decided_order(db.oracle)
                )
                report.offline_violations = offline.check()
        report.committed = checker.stats.commits
        report.recoveries = db.recoveries
        report.watermarks = checker.stats.watermarks
        report.pruned = checker.stats.pruned
        report.window_peak = checker.stats.window_peak
        report.window_final = checker.window_size()
        if report.wall_seconds > 0:
            report.throughput = report.committed / report.wall_seconds
        report.metrics = db.metrics.snapshot()
    return report
