"""Seeded chaos runs: contended writes plus reads under injected faults.

One :func:`run_chaos` call builds a :class:`SimulatedWeaver` with a
:class:`~repro.sim.faults.FaultPlan` (message drops, duplicates, delays,
a partition, and at least one gatekeeper crash and one shard crash),
drives a Zipf-contended write/read mix against it, records everything
observable into a :class:`~repro.verify.history.History`, and checks the
history for strict-serializability violations.

Everything is derived from the single ``seed``: the fault schedule, the
Zipf targets, the submission times.  Two runs with the same seed produce
bit-for-bit identical histories (compare :meth:`History.digest`), which
is what makes a chaos failure reproducible and a determinism regression
detectable.

Writes tag each touched vertex with the writing transaction's unique
integer tag (property ``"w"``); reads are ``GetNode`` programs whose
observed tag identifies the newest write their snapshot contained.  That
one property is enough for the checker to reconstruct per-vertex write
chains and read positions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..db.config import WeaverConfig
from ..db.operations import CreateVertex, SetVertexProperty
from ..programs.library import GetNode
from ..sim.clock import MSEC, USEC
from ..sim.deployment import SimulatedWeaver
from ..sim.faults import FaultPlan
from ..verify.history import History, HistoryChecker, Violation, decided_order
from .contention import ZipfSampler


def default_fault_plan(
    seed: int,
    duration: float,
    num_gatekeepers: int,
    num_shards: int,
    drop_rate: float = 0.05,
    duplicate_rate: float = 0.05,
    delay_rate: float = 0.1,
    extra_delay: float = 300 * USEC,
) -> FaultPlan:
    """The standard chaos mix for a run of ``duration`` seconds.

    Crashes one gatekeeper at ~35% of the horizon and one shard at ~60%
    (seed-selected indices), partitions one gatekeeper-shard pair for a
    stretch of the first half, and sprinkles probabilistic drops,
    duplicates, and delays over all message kinds.
    """
    gk_victim = seed % num_gatekeepers
    shard_victim = seed % num_shards
    part_gk = (seed + 1) % num_gatekeepers
    part_shard = (seed + 1) % num_shards
    plan = (
        FaultPlan(seed=seed)
        .drop(drop_rate)
        .duplicate(duplicate_rate)
        .delay(delay_rate, extra_delay=extra_delay)
        .partition(
            f"gk{part_gk}",
            f"shard{part_shard}",
            start=0.15 * duration,
            end=0.30 * duration,
        )
        .crash_gatekeeper(gk_victim, at=0.35 * duration)
        .crash_shard(shard_victim, at=0.60 * duration)
    )
    return plan


@dataclass
class ChaosReport:
    """Everything one seeded chaos run produced."""

    seed: int
    duration: float
    committed: int = 0
    aborted: int = 0
    reads_completed: int = 0
    reads_lost: int = 0
    recoveries: int = 0
    stragglers_dropped: int = 0
    duplicates_discarded: int = 0
    faults: Dict[str, int] = field(default_factory=dict)
    history: Optional[History] = None
    violations: List[Violation] = field(default_factory=list)
    digest: str = ""
    # Observability: commit/read latency summaries (count, p50/p95/p99 —
    # the Fig 10/11 CDF data comes from the same histograms via
    # ``metrics``), the full metric snapshot, and the run's tracer for
    # span-chain reconstruction (`repro trace`).
    tx_latency: Dict[str, float] = field(default_factory=dict)
    read_latency: Dict[str, float] = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict)
    tracer: Optional[object] = None

    @property
    def consistent(self) -> bool:
        return not self.violations


def run_chaos(
    seed: int,
    duration: float = 60 * MSEC,
    num_vertices: int = 12,
    skew: float = 0.8,
    tx_period: float = 800 * USEC,
    read_period: float = 1900 * USEC,
    config: Optional[WeaverConfig] = None,
    plan: Optional[FaultPlan] = None,
    heartbeat_period: float = 2 * MSEC,
    drain: float = 80 * MSEC,
    tau: float = 100 * USEC,
    nop_period: float = 100 * USEC,
) -> ChaosReport:
    """One seeded chaos run; returns the checked :class:`ChaosReport`.

    Phases: *setup* (create and tag every vertex, no faults are usually
    scheduled that early), *chaos* (writers and readers on Zipf-sampled
    targets for ``duration`` simulated seconds, while the plan's crashes,
    partition, and message faults play out), *drain* (let partitions
    heal, recoveries finish, and every outstanding read complete).
    """
    config = config or WeaverConfig()
    if plan is None:
        plan = default_fault_plan(
            seed, duration, config.num_gatekeepers, config.num_shards
        )
    sim = SimulatedWeaver(
        config=config,
        tau=tau,
        # A coarser NOP cadence than the production default keeps the
        # oracle's event DAG small enough that reachability queries (both
        # the scheduler's and the checker's) stay cheap over a whole run.
        nop_period=nop_period,
        heartbeat_period=heartbeat_period,
        # One GC pass well after the horizon: mid-run collection would
        # only shrink what the checker can decide, not break it, but
        # keeping decisions makes the check as strong as possible.
        gc_period=10 * duration + drain,
        fault_plan=plan,
    )
    history = History()
    # The referee consumes the trace stream: shard.apply spans feed the
    # apply sequences, and the workload emits txn.commit / program.read
    # spans below instead of calling record_* directly.
    history.attach(sim.tracer)
    report = ChaosReport(seed=seed, duration=duration)

    vertices = [f"v{i}" for i in range(num_vertices)]
    sampler = ZipfSampler(num_vertices, skew, seed=seed)
    tags = iter(range(10**9))

    def submit_write(targets: List[str]) -> None:
        tag = next(tags)
        submitted_at = sim.simulator.now
        ops = [SetVertexProperty(v, "w", tag) for v in targets]

        def on_commit(ok: bool, ts_or_exc) -> None:
            if ok:
                sim.tracer.emit(
                    trace_id, "txn.commit", node="client",
                    tag=tag,
                    ts=ts_or_exc,
                    writes=tuple((v, tag) for v in targets),
                    submitted_at=submitted_at,
                )
            else:
                report.aborted += 1

        trace_id = sim.submit_transaction(ops, callback=on_commit)

    def submit_read(target: str) -> None:
        query_id = next(tags)
        submitted_at = sim.simulator.now

        def on_result(result) -> None:
            if result is None:
                report.reads_lost += 1
                return
            observed = None
            if result.results:
                observed = result.results[0]["properties"].get("w")
            sim.tracer.emit(
                trace_id, "program.read", node="client",
                query_id=query_id,
                ts=result.timestamp,
                reads=((target, observed),),
                submitted_at=submitted_at,
            )
            report.reads_completed += 1

        trace_id = sim.submit_program(GetNode(), target, callback=on_result)

    # -- setup: create every vertex with an initial tag ------------------

    for vertex in vertices:
        tag = next(tags)
        submitted_at = sim.simulator.now
        setup_trace = []

        def on_setup(ok, ts_or_exc, tag=tag, vertex=vertex,
                     submitted_at=submitted_at,
                     setup_trace=setup_trace) -> None:
            if ok:
                sim.tracer.emit(
                    setup_trace[0], "txn.commit", node="client",
                    tag=tag, ts=ts_or_exc, writes=((vertex, tag),),
                    submitted_at=submitted_at,
                )

        setup_trace.append(sim.submit_transaction(
            [CreateVertex(vertex), SetVertexProperty(vertex, "w", tag)],
            callback=on_setup,
            new_vertices=(vertex,),
        ))
        sim.run(100 * USEC)
    sim.run(2 * MSEC)  # let setup forwards land everywhere

    # -- chaos: interleaved writers and readers --------------------------

    horizon = sim.simulator.now + duration
    next_tx = sim.simulator.now + tx_period
    next_read = sim.simulator.now + read_period
    while min(next_tx, next_read) < horizon:
        if next_tx <= next_read:
            sim.run(next_tx - sim.simulator.now)
            first = vertices[sampler.sample()]
            second = vertices[sampler.sample()]
            targets = [first] if first == second else [first, second]
            submit_write(targets)
            next_tx += tx_period
        else:
            sim.run(next_read - sim.simulator.now)
            submit_read(vertices[sampler.sample()])
            next_read += read_period

    # -- drain: heal, recover, complete ----------------------------------

    sim.run(duration * 0.5)
    sim.run_until_quiet(max_extra=drain)

    report.committed = len(history.commits)
    report.recoveries = sim.recoveries
    report.stragglers_dropped = sim.stragglers_dropped
    report.duplicates_discarded = sum(
        shard.stats.duplicates_discarded for shard in sim.shards
    )
    report.faults = dict(sim.network.stats.faults)
    report.history = history
    report.digest = history.digest()
    checker = HistoryChecker(history, decided_order(sim.oracle))
    report.violations = checker.check()
    report.tx_latency = sim.latency_tx.summary()
    report.read_latency = sim.latency_program.summary()
    report.metrics = sim.metrics.snapshot()
    report.tracer = sim.tracer
    return report
