"""The Facebook TAO operation mix (Table 1).

The social-network benchmark (section 6.2) replays TAO's measured
operation distribution::

    Reads  99.8%   get_edges  59.4%
                   count_edges 11.7%
                   get_node    28.9%
    Writes  0.2%   create_edge 80.0%
                   delete_edge 20.0%

Fig 9b additionally runs the same relative mixes at 75% reads.  The
generator keeps the within-class proportions fixed and exposes the
read fraction as a parameter.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

# Within-class proportions from Table 1.
READ_MIX = (("get_edges", 0.594), ("count_edges", 0.117), ("get_node", 0.289))
WRITE_MIX = (("create_edge", 0.80), ("delete_edge", 0.20))

TAO_READ_FRACTION = 0.998

Op = Tuple  # ("get_node", vertex) | ("create_edge", src, dst) | ...


class TaoWorkload:
    """A deterministic stream of TAO-mix operations over a graph.

    ``edge_pool`` seeds deletable edges as (src, handle) pairs; created
    edges join the pool so deletes always have a target.  Vertices are
    sampled uniformly, matching the paper's use of the raw LiveJournal
    snapshot.
    """

    def __init__(
        self,
        vertices: Sequence[str],
        edge_pool: Optional[List[Tuple[str, str]]] = None,
        read_fraction: float = TAO_READ_FRACTION,
        seed: int = 1234,
    ):
        if not vertices:
            raise ValueError("need vertices to operate on")
        if not 0.0 <= read_fraction <= 1.0:
            raise ValueError("read fraction must be in [0, 1]")
        self._vertices = list(vertices)
        self._edge_pool = list(edge_pool or [])
        self.read_fraction = read_fraction
        self._rng = random.Random(seed)
        self._created = 0
        self.counts: Dict[str, int] = {}

    def _pick_vertex(self) -> str:
        return self._vertices[self._rng.randrange(len(self._vertices))]

    def _pick(self, mix) -> str:
        roll = self._rng.random()
        acc = 0.0
        for name, weight in mix:
            acc += weight
            if roll < acc:
                return name
        return mix[-1][0]

    def next_op(self) -> Op:
        """The next operation descriptor in the stream."""
        if self._rng.random() < self.read_fraction:
            kind = self._pick(READ_MIX)
            op: Op = (kind, self._pick_vertex())
        else:
            kind = self._pick(WRITE_MIX)
            if kind == "delete_edge" and not self._edge_pool:
                kind = "create_edge"  # nothing to delete yet
            if kind == "create_edge":
                src = self._pick_vertex()
                dst = self._pick_vertex()
                handle = f"tao_e{self._created}"
                self._created += 1
                op = ("create_edge", src, dst, handle)
            else:
                index = self._rng.randrange(len(self._edge_pool))
                src, handle = self._edge_pool.pop(index)
                op = ("delete_edge", src, handle)
        self.counts[op[0]] = self.counts.get(op[0], 0) + 1
        return op

    def note_created(self, src: str, handle: str) -> None:
        """Record a successfully created edge as deletable."""
        self._edge_pool.append((src, handle))

    def stream(self, n: int) -> Iterator[Op]:
        for _ in range(n):
            yield self.next_op()


def apply_to_weaver(client, op: Op, workload: TaoWorkload):
    """Execute one TAO op through the Weaver client; returns its result."""
    kind = op[0]
    if kind == "get_edges":
        return client.get_edges(op[1])
    if kind == "count_edges":
        return client.count_edges(op[1])
    if kind == "get_node":
        return client.get_node(op[1])
    if kind == "create_edge":
        _, src, dst, handle = op
        created = client.transact(lambda tx: tx.create_edge(src, dst, handle))
        workload.note_created(src, created)
        return created
    if kind == "delete_edge":
        _, src, handle = op
        client.transact(lambda tx: tx.delete_edge(src, handle))
        return None
    raise ValueError(f"unknown op {kind!r}")
