"""Synthetic graph generators standing in for the paper's datasets.

The evaluation uses LiveJournal (4.8M vertices, 68.9M edges), two Twitter
snapshots (1.76M and 1.47B edges), and the Bitcoin blockchain.  None are
shippable here, so we generate graphs with the property that drives each
experiment's shape: a **power-law degree distribution** (preferential
attachment), which reproduces the skewed contention of TAO workloads and
the heavy-tailed reachable-set sizes of traversal workloads, at laptop
scale.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Sequence, Tuple

Edge = Tuple[str, str]


def vertex_name(i: int) -> str:
    return f"n{i}"


def powerlaw_graph(
    num_vertices: int,
    edges_per_vertex: int = 4,
    seed: int = 42,
) -> List[Edge]:
    """Directed preferential-attachment graph (Barabási-Albert style).

    Every new vertex attaches ``edges_per_vertex`` out-edges to targets
    sampled proportionally to current in-degree (plus one, so early
    vertices with no edges remain reachable as targets).
    """
    if num_vertices < 2:
        raise ValueError("need at least two vertices")
    rng = random.Random(seed)
    edges: List[Edge] = []
    # Repeated-targets list implements preferential sampling in O(1).
    targets: List[int] = [0]
    for v in range(1, num_vertices):
        wanted = min(edges_per_vertex, v)
        chosen = set()
        while len(chosen) < wanted:
            chosen.add(targets[rng.randrange(len(targets))])
        for u in chosen:
            edges.append((vertex_name(v), vertex_name(u)))
            targets.append(u)
        targets.append(v)
    return edges


def uniform_graph(
    num_vertices: int,
    num_edges: int,
    seed: int = 42,
) -> List[Edge]:
    """Uniform random directed graph (no self loops, duplicates allowed
    to be skipped)."""
    if num_vertices < 2:
        raise ValueError("need at least two vertices")
    rng = random.Random(seed)
    edges: List[Edge] = []
    seen = set()
    while len(edges) < num_edges:
        a = rng.randrange(num_vertices)
        b = rng.randrange(num_vertices)
        if a == b or (a, b) in seen:
            continue
        seen.add((a, b))
        edges.append((vertex_name(a), vertex_name(b)))
    return edges


def social_graph(
    num_vertices: int = 2000, avg_out_degree: int = 7, seed: int = 42
) -> List[Edge]:
    """A LiveJournal-like stand-in: power-law, modest average degree."""
    return powerlaw_graph(num_vertices, avg_out_degree, seed)


def twitter_graph(
    num_vertices: int = 1000, avg_out_degree: int = 4, seed: int = 7
) -> List[Edge]:
    """A small-Twitter-like stand-in for the traversal benchmarks."""
    return powerlaw_graph(num_vertices, avg_out_degree, seed)


def vertices_of(edges: Iterable[Edge]) -> List[str]:
    """All vertex names appearing in an edge list, in first-seen order."""
    seen: Dict[str, None] = {}
    for src, dst in edges:
        seen.setdefault(src)
        seen.setdefault(dst)
    return list(seen)


def adjacency(edges: Iterable[Edge]) -> Dict[str, List[str]]:
    out: Dict[str, List[str]] = {}
    for src, dst in edges:
        out.setdefault(src, []).append(dst)
        out.setdefault(dst, [])
    return out


def load_into_weaver(
    client,
    edges: Sequence[Edge],
    batch_size: int = 500,
    edge_prop: str = None,
) -> Dict[str, str]:
    """Bulk-load an edge list through the transactional API.

    Returns a map from (src, dst) string pair key to edge handle so
    workloads can later delete specific edges.  Batching many operations
    per transaction keeps load time reasonable while still exercising the
    full commit path.
    """
    handles: Dict[str, str] = {}
    names = vertices_of(edges)
    for i in range(0, len(names), batch_size):
        with client.transaction() as tx:
            for name in names[i:i + batch_size]:
                tx.create_vertex(name)
    for i in range(0, len(edges), batch_size):
        with client.transaction() as tx:
            for src, dst in edges[i:i + batch_size]:
                handle = tx.create_edge(src, dst)
                if edge_prop is not None:
                    tx.set_edge_property(src, handle, edge_prop, True)
                handles[f"{src}->{dst}"] = handle
    return handles
