"""A synthetic Bitcoin blockchain (the CoinGraph dataset, section 5.2).

The real blockchain (80M vertices, 1.2B edges, ~900 GB) is replaced by a
generator that reproduces the one property Figs 7 and 8 depend on: the
**number of transactions per block grows with block height**, from 1-2
transactions near block 1k to ~1800 at block 350k.  The generator's
growth curve is calibrated to the paper's quoted figure (block 350,000 =
1795 transactions).

Each block becomes a vertex with header properties and one edge (tagged
``tx``) to each of its transaction vertices; transactions carry value
and address-count data and optionally ``spends`` edges to earlier
transactions, giving the taint-tracking example a real multi-hop graph.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List

# Calibration point from section 6.1.
_REFERENCE_HEIGHT = 350_000
_REFERENCE_TXS = 1795
_GROWTH_EXPONENT = 3.2


def txs_in_block(height: int) -> int:
    """Transactions per block at a given height (growth-curve model)."""
    if height <= 0:
        return 1
    scale = (height / _REFERENCE_HEIGHT) ** _GROWTH_EXPONENT
    return max(1, round(_REFERENCE_TXS * scale))


@dataclass
class BitcoinTx:
    tx_id: str
    value: float
    n_inputs: int
    n_outputs: int
    spends: List[str] = field(default_factory=list)

    def properties(self) -> Dict[str, Any]:
        return {
            "value": self.value,
            "n_inputs": self.n_inputs,
            "n_outputs": self.n_outputs,
        }


@dataclass
class Block:
    height: int
    block_id: str
    transactions: List[BitcoinTx]

    def header(self) -> Dict[str, Any]:
        return {"height": self.height, "n_tx": len(self.transactions)}


class BlockchainGenerator:
    """Deterministic synthetic blockchain segments.

    ``scale`` shrinks per-block transaction counts uniformly (0.05 keeps
    block 350k at ~90 transactions — same growth shape, laptop-sized).
    """

    def __init__(self, seed: int = 2009, scale: float = 1.0):
        if scale <= 0:
            raise ValueError("scale must be positive")
        self._rng = random.Random(seed)
        self._scale = scale
        self._tx_counter = 0
        self._recent_txs: List[str] = []

    def txs_for(self, height: int) -> int:
        return max(1, round(txs_in_block(height) * self._scale))

    def generate_block(self, height: int) -> Block:
        txs = []
        for _ in range(self.txs_for(height)):
            tx_id = f"tx{self._tx_counter}"
            self._tx_counter += 1
            spends: List[str] = []
            # Most transactions spend outputs of 1-3 earlier transactions.
            if self._recent_txs:
                for _ in range(self._rng.randint(1, 3)):
                    spends.append(
                        self._recent_txs[
                            self._rng.randrange(len(self._recent_txs))
                        ]
                    )
            txs.append(
                BitcoinTx(
                    tx_id=tx_id,
                    value=round(self._rng.expovariate(0.1), 4),
                    n_inputs=self._rng.randint(1, 4),
                    n_outputs=self._rng.randint(1, 4),
                    spends=sorted(set(spends)),
                )
            )
            self._recent_txs.append(tx_id)
            if len(self._recent_txs) > 500:
                self._recent_txs = self._recent_txs[-500:]
        return Block(height, f"blk{height}", txs)

    def generate(self, heights) -> List[Block]:
        return [self.generate_block(h) for h in heights]


def load_into_weaver(
    client,
    blocks: List[Block],
    batch_size: int = 400,
    with_spend_edges: bool = False,
) -> None:
    """Load blocks into Weaver: block and tx vertices, ``tx`` edges from
    block to transactions, optionally ``spends`` edges between txs."""
    known_txs = set()
    for block in blocks:
        items = list(block.transactions)
        for i in range(0, max(1, len(items)), batch_size):
            with client.transaction() as tx_block:
                if i == 0:
                    tx_block.create_vertex(block.block_id)
                    tx_block.set_property(
                        block.block_id, "height", block.height
                    )
                for btx in items[i:i + batch_size]:
                    tx_block.create_vertex(btx.tx_id)
                    for key, value in btx.properties().items():
                        tx_block.set_property(btx.tx_id, key, value)
                    edge = tx_block.create_edge(block.block_id, btx.tx_id)
                    tx_block.set_edge_property(
                        block.block_id, edge, "tx", True
                    )
                    if with_spend_edges:
                        for spent in btx.spends:
                            if spent in known_txs:
                                spend_edge = tx_block.create_edge(
                                    btx.tx_id, spent
                                )
                                tx_block.set_edge_property(
                                    btx.tx_id, spend_edge, "spends", True
                                )
                    known_txs.add(btx.tx_id)


def load_into_explorer(explorer, blocks: List[Block]) -> None:
    """Load the same data into the relational baseline."""
    for block in blocks:
        explorer.insert_block(block.block_id, block.header())
        for btx in block.transactions:
            explorer.insert_transaction(
                btx.tx_id, block.block_id, btx.properties()
            )
