"""Workload generators and drivers for the evaluation."""

from .graphs import (
    adjacency,
    load_into_weaver,
    powerlaw_graph,
    social_graph,
    twitter_graph,
    uniform_graph,
    vertices_of,
)
from .tao import TAO_READ_FRACTION, TaoWorkload, apply_to_weaver
from .bitcoin import (
    BitcoinTx,
    Block,
    BlockchainGenerator,
    load_into_explorer,
    txs_in_block,
)
from .bitcoin import load_into_weaver as load_blockchain_into_weaver
from .runner import RunReport, run_tao
from .contention import ContentionReport, ZipfSampler, run_contention
from .chaos import ChaosReport, default_fault_plan, run_chaos

__all__ = [
    "adjacency",
    "load_into_weaver",
    "powerlaw_graph",
    "social_graph",
    "twitter_graph",
    "uniform_graph",
    "vertices_of",
    "TAO_READ_FRACTION",
    "TaoWorkload",
    "apply_to_weaver",
    "BitcoinTx",
    "Block",
    "BlockchainGenerator",
    "load_into_explorer",
    "txs_in_block",
    "load_blockchain_into_weaver",
    "RunReport",
    "run_tao",
    "ContentionReport",
    "ZipfSampler",
    "run_contention",
    "ChaosReport",
    "default_fault_plan",
    "run_chaos",
]
