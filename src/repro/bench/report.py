"""ASCII reporting: the tables and series the benchmark harness prints.

Every figure benchmark prints its data through these helpers so the
output reads like the paper's tables — one row per parameter point, with
a paper-claim column alongside the measured one where applicable.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
) -> str:
    """Render a titled, column-aligned ASCII table."""
    string_rows: List[List[str]] = [
        [_fmt(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in string_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [title, "=" * len(title)]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in string_rows:
        lines.append(
            " | ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def print_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
) -> None:
    print()
    print(format_table(title, headers, rows))
    print()


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4g}"
    return str(cell)


def format_series(name: str, points: Iterable[Sequence[Any]]) -> str:
    """A compact "x -> y" series line, for CDF-style data."""
    parts = [
        f"({', '.join(_fmt(v) for v in point)})" for point in points
    ]
    return f"{name}: " + " ".join(parts)


def ratio_check(
    label: str, measured: float, paper: float, tolerance: float = 0.5
) -> str:
    """One-line paper-vs-measured comparison.

    ``tolerance`` is the acceptable relative deviation of the measured
    ratio from the paper's (shape reproduction, not absolute equality).
    """
    if paper > 0:
        deviation = abs(measured - paper) / paper
        verdict = "OK" if deviation <= tolerance else "DIFFERS"
    else:
        verdict = "n/a"
    return (
        f"{label}: paper={paper:g}x measured={measured:.2f}x [{verdict}]"
    )
