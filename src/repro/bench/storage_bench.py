"""Paging benchmark: the durable store under memory pressure.

Measures transactional write and read throughput of the backing store
in three regimes with identical workloads:

* ``memory`` — the in-memory :class:`TransactionalStore` (the upper
  bound: no serialization, no I/O);
* ``sqlite @ 1x`` — the durable store with a page-cache budget that
  holds the whole live set (durability cost, no paging);
* ``sqlite @ 4x`` — the live set is four times the cache budget, so
  reads continuously page chains in and out of SQL (the
  larger-than-RAM regime the backend exists for).

Counts ride along with the clocks: page-cache hits/misses/evictions
prove each regime actually exercised the path its label claims.
"""

from __future__ import annotations

import os
import random
import shutil
import tempfile
import time
from typing import Any, Dict, List

from ..store.durable import DurableStore
from ..store.kvstore import TransactionalStore


def _run_workload(
    store, keys: List[str], value_bytes: int, writes: int, reads: int,
    seed: int,
) -> Dict[str, float]:
    rng = random.Random(seed)
    payload = "x" * value_bytes

    started = time.perf_counter()
    for key in keys:
        store.transact(lambda t, key=key: t.put(key, payload))
    for i in range(writes):
        key = keys[rng.randrange(len(keys))]
        store.transact(lambda t, key=key, i=i: t.put(key, f"{payload}{i}"))
    write_seconds = time.perf_counter() - started

    started = time.perf_counter()
    for _ in range(reads):
        store.get(keys[rng.randrange(len(keys))])
    read_seconds = time.perf_counter() - started

    # Compact mid-life, like the deployments' GC tick does, so the
    # measured regime includes watermark compaction work.
    store.collect_below(store.safe_compact_version())

    return {
        "write_seconds": write_seconds,
        "read_seconds": read_seconds,
        "writes_per_second": (len(keys) + writes) / write_seconds,
        "reads_per_second": reads / read_seconds,
    }


def paging_experiment(
    num_keys: int = 256,
    value_bytes: int = 512,
    writes: int = 1024,
    reads: int = 4096,
    seed: int = 7,
) -> Dict[str, Any]:
    """Run the workload in all three regimes; returns the BENCH record."""
    keys = [f"k{i}" for i in range(num_keys)]
    dataset_bytes = num_keys * value_bytes
    points: List[Dict[str, Any]] = []

    store = TransactionalStore()
    point = {
        "backend": "memory",
        "pressure": 0.0,
        "cache_bytes": None,
        **_run_workload(store, keys, value_bytes, writes, reads, seed),
        "page_cache": {},
    }
    points.append(point)

    tmpdir = tempfile.mkdtemp(prefix="weaver-bench-")
    try:
        for pressure in (1.0, 4.0):
            # At pressure p the live set is p times the cache budget.
            # The 1x regime must hold every version chain, not just the
            # live set: updates append records that are only trimmed at
            # the compaction pass, so budget for all records plus their
            # pickle/key/cache overhead.
            cache_bytes = (
                int(dataset_bytes / pressure)
                if pressure > 1.0
                else (num_keys + writes) * (value_bytes + 128) * 2
            )
            path = os.path.join(tmpdir, f"bench-{pressure}.db")
            durable = DurableStore(path, cache_bytes=cache_bytes)
            try:
                measured = _run_workload(
                    durable, keys, value_bytes, writes, reads, seed
                )
                stats = durable.stats
                points.append({
                    "backend": "sqlite",
                    "pressure": pressure,
                    "cache_bytes": cache_bytes,
                    **measured,
                    "page_cache": {
                        "hits": stats.page_cache_hits,
                        "misses": stats.page_cache_misses,
                        "evictions": stats.page_cache_evictions,
                        "resident_bytes": stats.page_cache_bytes,
                    },
                })
            finally:
                durable.close()
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)

    baseline = points[0]["reads_per_second"]
    return {
        "num_keys": num_keys,
        "value_bytes": value_bytes,
        "dataset_bytes": dataset_bytes,
        "writes": writes,
        "reads": reads,
        "points": points,
        "read_slowdown_at_4x": baseline / points[-1]["reads_per_second"],
    }
