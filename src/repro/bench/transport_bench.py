"""Fig 13-style shard scaling over the real multiprocess transport.

One seeded random graph is loaded into a
:class:`~repro.cluster.process.ProcessWeaver` at several worker counts
and the same batch of traversal queries is timed at each; the identical
graph and queries also run on the deterministic
:class:`~repro.sim.deployment.SimulatedWeaver` twin, whose results the
process runs must match exactly (``results_equal``) — the simulator is
the correctness referee, the processes are the performance claim.

Node-program execution splits client/worker (see
:mod:`~repro.cluster.process`): program logic runs in the client, while
the multi-version visibility work runs in the shard workers, one
pipelined request per shard per round.  Adding workers therefore adds
resolution throughput **only on multi-core hardware** — the recorded
``cpu_count`` tells the consumer whether the scaling number means
anything on the host that produced it.

``benchmarks/test_transport_scaling.py`` records the results as
``BENCH_transport.json`` at the repo root (one section per experiment,
each carrying the ``cpu_count`` it was measured on; see
:func:`record_bench` for the provenance rules).

:func:`resident_comparison` times the same query batch in both
execution modes against the same worker processes: ``images`` pulls
vertex images to the client every round, ``resident`` ships the program
to the shards and forwards frontiers peer-to-peer, so only O(shards)
coordination frames per round touch the wire the client can see.
"""

from __future__ import annotations

import json
import os
import pathlib
import random
import time
from typing import Dict, List, Tuple

from ..cluster.process import ProcessWeaver
from ..db.config import WeaverConfig
from ..db.operations import CreateEdge, CreateVertex
from ..programs.library import Bfs, CollectReachable, params
from ..sim.deployment import SimulatedWeaver

#: Scaling/speedup bars only mean something with real parallel hardware.
MIN_MEANINGFUL_CORES = 4

QueryResults = List[Tuple[str, ...]]


def graph_spec(
    num_vertices: int = 400, avg_degree: int = 4, seed: int = 29
) -> Tuple[List[str], List[Tuple[str, str]]]:
    """A seeded connected random graph: spanning tree + extra edges."""
    rng = random.Random(seed)
    handles = [f"n{i}" for i in range(num_vertices)]
    edges: List[Tuple[str, str]] = []
    seen = set()
    for i in range(1, num_vertices):
        parent = handles[rng.randrange(i)]
        edges.append((parent, handles[i]))
        seen.add((parent, handles[i]))
    extra = num_vertices * avg_degree - len(edges)
    while extra > 0:
        src, dst = rng.sample(handles, 2)
        if (src, dst) in seen:
            continue
        seen.add((src, dst))
        edges.append((src, dst))
        extra -= 1
    return handles, edges


def query_roots(
    handles: List[str], num_queries: int = 40, seed: int = 31
) -> List[str]:
    """Zipf-flavoured root choice: hot heads, long tail."""
    rng = random.Random(seed)
    return [
        handles[min(int(rng.paretovariate(1.2)) - 1, len(handles) - 1)]
        for _ in range(num_queries)
    ]


def run_process(
    num_shards: int,
    handles: List[str],
    edges: List[Tuple[str, str]],
    roots: List[str],
    num_gatekeepers: int = 2,
    ops_per_tx: int = 100,
) -> Dict:
    """Load the graph and time the query batch at one worker count."""
    config = WeaverConfig(
        num_shards=num_shards, num_gatekeepers=num_gatekeepers
    )
    with ProcessWeaver(config) as db:
        tx = db.begin_transaction()
        pending = 0
        for handle in handles:
            tx.create_vertex(handle)
            pending += 1
            if pending >= ops_per_tx:
                tx.commit()
                tx = db.begin_transaction()
                pending = 0
        for src, dst in edges:
            tx.create_edge(src, dst)
            pending += 1
            if pending >= ops_per_tx:
                tx.commit()
                tx = db.begin_transaction()
                pending = 0
        if pending:
            tx.commit()
        else:
            tx.abort()
        db.drain()
        # Warm-up query: pays the readiness storm and worker page-in so
        # the timed batch measures steady-state resolution throughput.
        db.run_program(CollectReachable(), roots[0])
        results: QueryResults = []
        started = time.perf_counter()
        for root in roots:
            outcome = db.run_program(CollectReachable(), root)
            results.append(tuple(sorted(outcome.results)))
        elapsed = time.perf_counter() - started
        snap = db.metrics.snapshot()
        return {
            "shards": num_shards,
            "elapsed_seconds": elapsed,
            "throughput_qps": len(roots) / elapsed if elapsed > 0 else 0.0,
            "results": results,
            "transport": {
                "bytes_sent": snap.get("transport.bytes_sent", 0),
                "bytes_received": snap.get("transport.bytes_received", 0),
                "requests": snap.get("transport.requests", 0),
                "requests_pipelined": snap.get(
                    "transport.requests_pipelined", 0
                ),
                "batches_sent": snap.get("transport.batches_sent", 0),
                "batched_messages": snap.get(
                    "transport.batched_messages", 0
                ),
            },
        }


def run_simulated(
    num_shards: int,
    handles: List[str],
    edges: List[Tuple[str, str]],
    roots: List[str],
    num_gatekeepers: int = 2,
    ops_per_tx: int = 100,
) -> QueryResults:
    """The deterministic twin: same graph, same queries, simulated time."""
    config = WeaverConfig(
        num_shards=num_shards, num_gatekeepers=num_gatekeepers
    )
    sim = SimulatedWeaver(config)

    def submit(ops, new):
        sim.submit_transaction(ops, new_vertices=new)
        sim.run(0.01)

    for base in range(0, len(handles), ops_per_tx):
        chunk = handles[base:base + ops_per_tx]
        submit([CreateVertex(h) for h in chunk], tuple(chunk))
    for base in range(0, len(edges), ops_per_tx):
        chunk = edges[base:base + ops_per_tx]
        submit(
            [
                CreateEdge(f"b{base}_{i}", src, dst)
                for i, (src, dst) in enumerate(chunk)
            ],
            (),
        )
    results: List[Tuple[str, ...]] = []

    def capture(outcome) -> None:
        results.append(tuple(sorted(outcome.results)))

    for root in roots:
        sim.submit_program(CollectReachable(), root, callback=capture)
        sim.run_until_quiet(max_extra=2.0)
    return results


def scaling_experiment(
    shard_counts: Tuple[int, ...] = (1, 2, 4),
    num_vertices: int = 400,
    avg_degree: int = 4,
    num_queries: int = 40,
    seed: int = 29,
) -> Dict:
    """The full experiment: per-worker-count throughput + twin parity."""
    handles, edges = graph_spec(num_vertices, avg_degree, seed)
    roots = query_roots(handles, num_queries, seed + 2)
    reference = run_simulated(max(shard_counts), handles, edges, roots)
    points = []
    for count in shard_counts:
        point = run_process(count, handles, edges, roots)
        point["results_equal"] = point.pop("results") == reference
        points.append(point)
    first, last = points[0], points[-1]
    return {
        "cpu_count": os.cpu_count(),
        "num_vertices": num_vertices,
        "num_edges": len(edges),
        "num_queries": num_queries,
        "shard_counts": list(shard_counts),
        "points": points,
        "scaling": (
            last["throughput_qps"] / first["throughput_qps"]
            if first["throughput_qps"] > 0
            else 0.0
        ),
        "results_equal": all(p["results_equal"] for p in points),
    }


def _load_graph(db: ProcessWeaver, handles, edges, ops_per_tx=100) -> None:
    tx = db.begin_transaction()
    pending = 0
    for handle in handles:
        tx.create_vertex(handle)
        pending += 1
        if pending >= ops_per_tx:
            tx.commit()
            tx = db.begin_transaction()
            pending = 0
    for src, dst in edges:
        tx.create_edge(src, dst)
        pending += 1
        if pending >= ops_per_tx:
            tx.commit()
            tx = db.begin_transaction()
            pending = 0
    if pending:
        tx.commit()
    else:
        tx.abort()
    db.drain()


def _time_mode(db: ProcessWeaver, mode: str, roots) -> Dict:
    """Time the query batch in one execution mode on live workers."""
    db.config.program_execution = mode
    # Warm-up pays the readiness storm / page-in / first-connect costs.
    db.run_program(Bfs(), roots[0], params(depth=0))
    before = db.metrics.snapshot()
    results: QueryResults = []
    started = time.perf_counter()
    for root in roots:
        outcome = db.run_program(Bfs(), root, params(depth=0))
        results.append(tuple(sorted(outcome.results)))
    elapsed = time.perf_counter() - started
    after = db.metrics.snapshot()

    def delta(key: str) -> float:
        return after.get(key, 0) - before.get(key, 0)

    point = {
        "elapsed_seconds": elapsed,
        "throughput_qps": len(roots) / elapsed if elapsed > 0 else 0.0,
        "client_requests": delta("transport.requests"),
        "client_bytes_sent": delta("transport.bytes_sent"),
        "client_bytes_received": delta("transport.bytes_received"),
        "rounds": delta("program.batch_rounds"),
        "results": results,
    }
    rounds = point["rounds"]
    if mode == "resident":
        # Peer coordination per round: forwards + round_go + reports,
        # every one bounded by the shard count, not the frontier size.
        coordination = (
            delta("program.resident.forwards_sent")
            + delta("program.resident.round_reports")
        )
        point["forwards_sent"] = delta("program.resident.forwards_sent")
        point["wire_messages_per_round"] = (
            coordination / rounds if rounds else 0.0
        )
    else:
        # Image pulls: one resolve request per touched shard per round,
        # whose replies carry O(frontier) vertex images back.
        point["wire_messages_per_round"] = (
            delta("program.shard_batches") / rounds if rounds else 0.0
        )
        point["images_pulled"] = delta("program.vertices_resolved")
    return point


def resident_comparison(
    num_vertices: int = 800,
    avg_degree: int = 12,
    num_shards: int = 4,
    num_queries: int = 12,
    seed: int = 37,
) -> Dict:
    """Images vs resident on the same graph and the same workers.

    Multi-shard BFS batch, hash-partitioned so every query crosses
    shards.  ``speedup`` is images-elapsed / resident-elapsed; on hosts
    below :data:`MIN_MEANINGFUL_CORES` the number is recorded but makes
    no parallelism claim.
    """
    handles, edges = graph_spec(num_vertices, avg_degree, seed)
    roots = query_roots(handles, num_queries, seed + 2)
    config = WeaverConfig(
        num_shards=num_shards, num_gatekeepers=2, partitioner="hash"
    )
    with ProcessWeaver(config) as db:
        _load_graph(db, handles, edges)
        images = _time_mode(db, "images", roots)
        resident = _time_mode(db, "resident", roots)
    results_equal = images.pop("results") == resident.pop("results")
    return {
        "cpu_count": os.cpu_count(),
        "num_vertices": num_vertices,
        "num_edges": len(edges),
        "num_shards": num_shards,
        "num_queries": num_queries,
        "images": images,
        "resident": resident,
        "speedup": (
            images["elapsed_seconds"] / resident["elapsed_seconds"]
            if resident["elapsed_seconds"] > 0
            else 0.0
        ),
        "results_equal": results_equal,
    }


def record_bench(path, section: str, result: Dict) -> bool:
    """Merge ``result`` under ``section`` in the bench JSON at ``path``.

    Provenance rule: a recording measured on a host with at least
    :data:`MIN_MEANINGFUL_CORES` cores is never overwritten by one from
    a smaller host — scaling and speedup numbers from a 1-core box would
    silently replace the only meaningful archive.  Returns whether the
    section was written.  Legacy flat files (the pre-section layout) are
    adopted as the ``scaling`` section.
    """
    path = pathlib.Path(path)
    data: Dict = {}
    if path.exists():
        data = json.loads(path.read_text())
        if "points" in data:  # legacy flat layout
            data = {"scaling": data}
    existing = data.get(section)
    new_cores = result.get("cpu_count") or 1
    if existing is not None:
        old_cores = existing.get("cpu_count") or 1
        if old_cores >= MIN_MEANINGFUL_CORES > new_cores:
            return False
    data[section] = result
    path.write_text(json.dumps(data, indent=2) + "\n")
    return True
