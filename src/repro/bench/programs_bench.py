"""Traversal microbenchmark: batched scatter-gather vs seed per-vertex.

Builds a multi-shard Weaver holding a seeded random connected graph and
runs the same BFS node program two ways at the same checkpoint:

* **batched** — the round-based executor path with a
  :class:`~repro.programs.routing.ShardSnapshotResolver`, which resolves
  each round's frontier per owning shard against one long-lived snapshot
  view per (query, shard), so the per-snapshot comparison memo persists
  across the whole traversal and same-round duplicate hops are deduped;
* **seed** — the per-vertex closure both resolvers used before this
  optimization: a brand-new ``SnapshotView`` (and a brand-new cold
  comparison memo) per vertex resolution, one resolution per queued hop.

``benchmarks/test_micro_programs.py`` records the result as
``BENCH_programs.json``; ``benchmarks/test_perf_guard.py`` runs a small
configuration asserting the structural counters (snapshot constructions,
batch messages) rather than wall clock.
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Tuple

from ..db import Weaver, WeaverConfig
from ..programs.framework import ProgramExecutor
from ..programs.library import Bfs, params
from ..programs.routing import ShardSnapshotResolver


def build_database(
    num_vertices: int = 800,
    avg_degree: int = 12,
    num_shards: int = 4,
    num_gatekeepers: int = 2,
    seed: int = 13,
    ops_per_tx: int = 200,
) -> Tuple[Weaver, List[str]]:
    """A multi-shard Weaver with a seeded random connected graph.

    A spanning tree from the first vertex guarantees the whole graph is
    BFS-reachable; extra random edges raise the average out-degree to
    ``avg_degree`` so traversals revisit vertices from many parents —
    the workload shape that separates the two resolver strategies.
    """
    rng = random.Random(seed)
    db = Weaver(
        WeaverConfig(
            num_shards=num_shards,
            num_gatekeepers=num_gatekeepers,
            partitioner="hash",
        )
    )
    handles = [f"n{i}" for i in range(num_vertices)]

    def batched(make_ops) -> None:
        pending = 0
        tx = db.begin_transaction()
        for op in make_ops:
            op(tx)
            pending += 1
            if pending >= ops_per_tx:
                tx.commit()
                tx = db.begin_transaction()
                pending = 0
        if pending:
            tx.commit()
        else:
            tx.abort()

    batched(
        (lambda t, h=h: t.create_vertex(h)) for h in handles
    )
    edge_ops = []
    seen = set()
    for i in range(1, num_vertices):
        parent = handles[rng.randrange(i)]
        edge_ops.append((parent, handles[i]))
        seen.add((parent, handles[i]))
    extra = num_vertices * avg_degree - len(edge_ops)
    while extra > 0:
        src, dst = rng.sample(handles, 2)
        if (src, dst) in seen:
            continue
        seen.add((src, dst))
        edge_ops.append((src, dst))
        extra -= 1
    batched(
        (lambda t, s=s, d=d: t.create_edge(s, d)) for s, d in edge_ops
    )
    return db, handles


def _seed_resolver(db: Weaver, point, counters: Dict[str, int]):
    """The pre-optimization per-vertex resolver, with construction
    accounting: one fresh snapshot view (cold memo) per resolution."""

    def resolve(handle: str):
        shard_index = db._shard_of(handle)
        if shard_index is None:
            return None
        shard = db.shards[shard_index]
        shard.stats.vertices_read += 1
        shard.ensure_paged(handle)
        counters["snapshots_created"] += 1
        counters["resolutions"] += 1
        snapshot = shard.graph.at(point, memo_stats=shard.ordering.stats)
        if not snapshot.has_vertex(handle):
            return None
        return snapshot.vertex(handle)

    return resolve


def compare_traversal(
    num_vertices: int = 800,
    avg_degree: int = 12,
    num_shards: int = 4,
    num_gatekeepers: int = 2,
    seed: int = 13,
    repeats: int = 3,
) -> Dict:
    """Time the same BFS both ways at one checkpoint; report the speedup.

    Both runs traverse the identical frontier from the first vertex and
    must produce identical results and read sets (asserted structurally
    here and exhaustively in ``tests/test_program_differential.py``).
    """
    db, handles = build_database(
        num_vertices=num_vertices,
        avg_degree=avg_degree,
        num_shards=num_shards,
        num_gatekeepers=num_gatekeepers,
        seed=seed,
    )
    point = db.checkpoint()
    db._make_shards_ready(point)
    root = handles[0]
    start = [(root, params(depth=0))]

    batched_seconds = float("inf")
    batched_executor = ProgramExecutor()
    batched_result = None
    for _ in range(repeats):
        resolver = ShardSnapshotResolver(
            point,
            db._shard_of,
            db.shards,
            stats=batched_executor.stats,
            page_in=True,
        )
        started = time.perf_counter()
        result = batched_executor.execute(Bfs(), start, resolver, point)
        batched_seconds = min(
            batched_seconds, time.perf_counter() - started
        )
        batched_result = result
        last_resolver = resolver

    seed_seconds = float("inf")
    seed_executor = ProgramExecutor()
    seed_counters = {"snapshots_created": 0, "resolutions": 0}
    seed_result = None
    for _ in range(repeats):
        counters = {"snapshots_created": 0, "resolutions": 0}
        resolve = _seed_resolver(db, point, counters)
        started = time.perf_counter()
        result = seed_executor.execute(Bfs(), start, resolve, point)
        seed_seconds = min(seed_seconds, time.perf_counter() - started)
        seed_result = result
        seed_counters = counters

    stats = batched_executor.stats
    return {
        "num_vertices": num_vertices,
        "num_edges": num_vertices * avg_degree,
        "num_shards": num_shards,
        "num_gatekeepers": num_gatekeepers,
        "batched_seconds": batched_seconds,
        "seed_seconds": seed_seconds,
        "speedup": (
            seed_seconds / batched_seconds
            if batched_seconds > 0
            else float("inf")
        ),
        "results_equal": batched_result.results == seed_result.results,
        "read_sets_equal": batched_result.read_set == seed_result.read_set,
        "batched_counters": {
            # Per single query (the last repeat's resolver).
            "snapshots_per_query": last_resolver.snapshots_created,
            "rounds": batched_result.rounds,
            # Across all repeats (executor-lifetime totals).
            "snapshots_created": stats.snapshots_created,
            "snapshot_reuse_hits": stats.snapshot_reuse_hits,
            "vertices_resolved": stats.vertices_resolved,
            "shard_batches": stats.shard_batches,
            "round_messages_saved": stats.round_messages_saved,
            "dedup_hits": stats.dedup_hits,
        },
        "seed_counters": {
            # Per single query: one fresh snapshot per resolution.
            "snapshots_per_query": seed_counters["snapshots_created"],
            "resolutions": seed_counters["resolutions"],
        },
    }
