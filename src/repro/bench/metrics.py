"""Latency/throughput metrics: percentiles, CDFs, summaries."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple


def percentile(sorted_values: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile of pre-sorted data, p in [0, 100]."""
    if not sorted_values:
        raise ValueError("no data")
    if not 0 <= p <= 100:
        raise ValueError("percentile out of range")
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (p / 100) * (len(sorted_values) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return sorted_values[low]
    frac = rank - low
    return sorted_values[low] * (1 - frac) + sorted_values[high] * frac


class LatencyRecorder:
    """Accumulates per-operation latencies and summarizes them."""

    def __init__(self) -> None:
        self._samples: List[float] = []

    def record(self, latency: float) -> None:
        if latency < 0:
            raise ValueError("negative latency")
        self._samples.append(latency)

    def extend(self, latencies: Iterable[float]) -> None:
        for value in latencies:
            self.record(value)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> List[float]:
        return list(self._samples)

    @property
    def mean(self) -> float:
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    def quantile(self, p: float) -> float:
        return percentile(sorted(self._samples), p)

    @property
    def median(self) -> float:
        return self.quantile(50)

    @property
    def p99(self) -> float:
        return self.quantile(99)

    def summary(self) -> Dict[str, float]:
        if not self._samples:
            return {"count": 0}
        data = sorted(self._samples)
        return {
            "count": len(data),
            "mean": self.mean,
            "p50": percentile(data, 50),
            "p90": percentile(data, 90),
            "p99": percentile(data, 99),
            "max": data[-1],
        }

    def cdf(self, points: int = 50) -> List[Tuple[float, float]]:
        """(latency, cumulative fraction) pairs — the Fig 10/11 curves."""
        if not self._samples:
            return []
        data = sorted(self._samples)
        n = len(data)
        step = max(1, n // points)
        curve = [
            (data[i], (i + 1) / n) for i in range(0, n, step)
        ]
        if curve[-1] != (data[-1], 1.0):
            curve.append((data[-1], 1.0))
        return curve


def throughput(ops: int, makespan_seconds: float) -> float:
    if makespan_seconds <= 0:
        return 0.0
    return ops / makespan_seconds
