"""Analytic cost-model simulation for throughput/latency experiments.

The evaluation's claims are about coordination economics — how many
messages, lock waits, and barrier stalls each protocol pays per
operation.  This module provides the minimal machinery to charge those
costs deterministically in simulated time:

* :class:`Resource` — a serially-busy server (gatekeeper, shard, lock
  manager, machine).  ``acquire(start, cost)`` grants the next available
  slot at or after ``start`` and returns the completion time, which
  models FCFS queueing — the mechanism behind every throughput curve.
* :class:`LockTable` — per-object exclusive locks on the time axis, used
  by the Titan baseline (2PL holds block conflicting transactions for
  the whole commit protocol) and by async GraphLab (edge consistency).
* :class:`ClosedLoop` — N clients, each issuing its next operation when
  the previous one completes; reports throughput and latency.

Costs are configured in :class:`CostParams`; defaults approximate the
paper's testbed (gigabit LAN, ~100 µs one-way hop, tens of µs of service
time per simple operation).  Absolute values are not the point — the
*ratios* between protocols are.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Tuple

from ..sim.clock import MSEC, USEC


class Resource:
    """A serially-busy resource with FCFS queueing in simulated time."""

    __slots__ = ("name", "free_at", "busy_time", "jobs")

    def __init__(self, name: str = "resource"):
        self.name = name
        self.free_at = 0.0
        self.busy_time = 0.0
        self.jobs = 0

    def acquire(self, start: float, cost: float) -> float:
        """Queue for the resource at ``start``; returns completion time."""
        if cost < 0:
            raise ValueError("negative cost")
        begin = max(start, self.free_at)
        self.free_at = begin + cost
        self.busy_time += cost
        self.jobs += 1
        return self.free_at

    def utilization(self, horizon: float) -> float:
        return min(1.0, self.busy_time / horizon) if horizon > 0 else 0.0


class LockTable:
    """Per-object exclusive locks on the time axis.

    ``lock(obj, start)`` returns the grant time (after the current
    holder's release); the caller then calls ``hold_until(obj, t)`` when
    it knows its release time.  This models 2PL contention: conflicting
    transactions serialize for the full lock-hold duration.
    """

    def __init__(self) -> None:
        self._free_at: Dict[str, float] = {}
        self.acquisitions = 0
        self.contended = 0

    def lock(self, obj: str, start: float) -> float:
        free = self._free_at.get(obj, 0.0)
        self.acquisitions += 1
        if free > start:
            self.contended += 1
            return free
        return start

    def lock_all(self, objects, start: float) -> float:
        """Grant time at which every object's lock is held.

        Objects are acquired in sorted order (the standard deadlock-
        avoidance discipline); the grant is the max across them.
        """
        grant = start
        for obj in sorted(set(objects)):
            grant = max(grant, self.lock(obj, grant))
        return grant

    def hold_until(self, obj: str, until: float) -> None:
        if until > self._free_at.get(obj, 0.0):
            self._free_at[obj] = until

    def hold_all_until(self, objects, until: float) -> None:
        for obj in set(objects):
            self.hold_until(obj, until)

    @property
    def contention_rate(self) -> float:
        if not self.acquisitions:
            return 0.0
        return self.contended / self.acquisitions


class CostParams:
    """Latency and service-time parameters shared by the cost models."""

    def __init__(
        self,
        net_latency: float = 100 * USEC,
        wan_latency: float = 13 * MSEC,
        gatekeeper_service: float = 120 * USEC,
        shard_op_service: float = 5 * USEC,
        vertex_read_service: float = 2 * USEC,
        store_commit_service: float = 5 * MSEC,
        oracle_service: float = 5 * USEC,
        lock_service: float = 10 * USEC,
        sql_row_service: float = 6 * MSEC,
        barrier_cost: float = 300 * USEC,
        titan_coordinator_service: float = 500 * USEC,
        graphlab_job_startup: float = 1 * MSEC,
        coingraph_tx_service: float = 700 * USEC,
        store_nodes: int = 4,
    ):
        self.net_latency = net_latency
        self.wan_latency = wan_latency
        self.gatekeeper_service = gatekeeper_service
        self.shard_op_service = shard_op_service
        self.vertex_read_service = vertex_read_service
        self.store_commit_service = store_commit_service
        self.oracle_service = oracle_service
        self.lock_service = lock_service
        # Blockchain.info pays 5-8 ms of MySQL join work per Bitcoin
        # transaction fetched (measured in section 6.1).
        self.sql_row_service = sql_row_service
        self.barrier_cost = barrier_cost
        # Titan's commit path funnels through lock/2PC coordination that
        # its measured flat ~2k tx/s implies is serial; this is that
        # serial cost per transaction (1 / 500 us = 2,000/s).
        self.titan_coordinator_service = titan_coordinator_service
        # GraphLab is an offline engine: every query is a job launch that
        # must coordinate all machines before the first superstep.
        self.graphlab_job_startup = graphlab_job_startup
        # CoinGraph pays 0.6-0.8 ms per Bitcoin transaction per block
        # (measured in section 6.1; dominated by demand paging).
        self.coingraph_tx_service = coingraph_tx_service
        # The backing store (HyperDex Warp) is itself distributed.
        self.store_nodes = store_nodes

    @property
    def rtt(self) -> float:
        return 2 * self.net_latency


class ClosedLoopResult:
    """Throughput and latency of one closed-loop run."""

    def __init__(self, latencies: List[float], makespan: float):
        self.latencies = latencies
        self.makespan = makespan

    @property
    def operations(self) -> int:
        return len(self.latencies)

    @property
    def throughput(self) -> float:
        """Operations per simulated second."""
        if self.makespan <= 0:
            return 0.0
        return self.operations / self.makespan

    @property
    def mean_latency(self) -> float:
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)


class ClosedLoop:
    """Drive a system model with N always-busy clients.

    ``issue(client_id, op_index, start_time)`` runs one operation through
    the model and returns its completion time.  Clients re-issue
    immediately on completion, which is how the paper's throughput
    experiments load the system (50-60 concurrent clients, Fig 9).
    """

    def __init__(self, clients: int):
        if clients <= 0:
            raise ValueError("need at least one client")
        self.clients = clients

    def run(
        self,
        total_ops: int,
        issue: Callable[[int, int, float], float],
    ) -> ClosedLoopResult:
        latencies: List[float] = []
        # (ready_time, client_id); heap order = FCFS by readiness.
        ready: List[Tuple[float, int]] = [
            (0.0, c) for c in range(self.clients)
        ]
        heapq.heapify(ready)
        makespan = 0.0
        for op_index in range(total_ops):
            start, client = heapq.heappop(ready)
            finish = issue(client, op_index, start)
            if finish < start:
                raise ValueError("operation finished before it started")
            latencies.append(finish - start)
            makespan = max(makespan, finish)
            heapq.heappush(ready, (finish, client))
        return ClosedLoopResult(latencies, makespan)
