"""Experiment harness: one function per table/figure in section 6.

Each ``experiment_*`` function runs the *functional* systems to establish
ground truth (answers, protocol statistics like the reactive-ordering
fraction) and the *cost models* to produce simulated-time throughput and
latency, then returns a result object whose ``rows()`` method yields the
same series the paper's figure plots.  The benchmark files under
``benchmarks/`` call these and print the tables.

Scales default to laptop-sized datasets; every function takes explicit
size parameters so the suites can run fast under pytest while remaining
faithful at larger settings.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..baselines.graphlab import GraphLab
from ..baselines.titan import TitanGraph
from ..core.gatekeeper import Gatekeeper, sync_announce_all
from ..core.ordering import RefinableOrdering
from ..core.oracle import TimelineOracle
from ..db.client import WeaverClient
from ..db.config import WeaverConfig
from ..db.database import Weaver
from ..graph.partition import (
    HashPartitioner,
    LdgPartitioner,
    balance,
    edge_cut,
    restream,
)
from ..sim.clock import MSEC, USEC
from ..workloads import bitcoin, graphs
from ..workloads.runner import run_tao
from ..workloads.tao import TaoWorkload
from .costmodel import ClosedLoop, CostParams
from .metrics import LatencyRecorder
from .models import CoinGraphModel, WeaverModel


# ---------------------------------------------------------------------------
# Figures 7 & 8: CoinGraph vs Blockchain.info
# ---------------------------------------------------------------------------

@dataclass
class Fig7Result:
    rows_data: List[Tuple[int, int, float, float, float]] = field(
        default_factory=list
    )
    functional_blocks_checked: int = 0

    def rows(self):
        return [
            (h, ntx, cg, bc, speed)
            for h, ntx, cg, bc, speed in self.rows_data
        ]

    @property
    def speedup_at_max_height(self) -> float:
        return self.rows_data[-1][4] if self.rows_data else 0.0


def experiment_fig7(
    heights: Sequence[int] = (
        1_000, 50_000, 100_000, 150_000, 200_000, 250_000, 300_000, 350_000
    ),
    functional_scale: float = 0.02,
    costs: Optional[CostParams] = None,
) -> Fig7Result:
    """Block-query latency, CoinGraph vs Blockchain.info (Fig 7).

    Functional part: a scaled-down blockchain is loaded into a live
    Weaver and each block is rendered through a node program, verifying
    the query returns exactly the block's transactions.  Cost part:
    latency is charged at the *real* per-height transaction counts using
    each system's measured per-transaction cost.
    """
    costs = costs or CostParams()
    result = Fig7Result()
    # Functional verification on the scaled chain.
    gen = bitcoin.BlockchainGenerator(seed=7, scale=functional_scale)
    blocks = gen.generate(heights)
    db = Weaver(WeaverConfig(num_gatekeepers=2, num_shards=4))
    client = WeaverClient(db)
    bitcoin.load_into_weaver(client, blocks)
    for block in blocks:
        rendered = client.render_block(block.block_id)
        assert rendered["n_tx"] == len(block.transactions)
        assert len(rendered["transactions"]) == len(block.transactions)
        result.functional_blocks_checked += 1
    # Cost model at real per-block transaction counts.
    model = CoinGraphModel(costs=costs)
    for height in heights:
        n_tx = bitcoin.txs_in_block(height)
        coingraph = model.block_query_latency(n_tx)
        bcinfo = 2 * costs.wan_latency + n_tx * costs.sql_row_service
        result.rows_data.append(
            (height, n_tx, coingraph, bcinfo, bcinfo / coingraph)
        )
    return result


@dataclass
class Fig8Result:
    rows_data: List[Tuple[int, float, float]] = field(default_factory=list)

    def rows(self):
        return list(self.rows_data)


def experiment_fig8(
    base_heights: Sequence[int] = (
        1_000, 100_000, 200_000, 300_000, 350_000
    ),
    queries_per_point: int = 200,
    clients: int = 16,
    num_shards: int = 8,
    costs: Optional[CostParams] = None,
) -> Fig8Result:
    """Block-render throughput vs block height (Fig 8).

    For each base height x, renders blocks drawn uniformly from
    [x, x+100] under a closed loop; reports queries/s and vertex
    reads/s.  Throughput falls with height (bigger blocks) while the
    vertex-read rate stays within a band — the paper's 5k-20k reads/s.
    """
    costs = costs or CostParams()
    result = Fig8Result()
    for base in base_heights:
        model = CoinGraphModel(num_shards=num_shards, costs=costs)
        rng = random.Random(base)
        tx_counts = [
            bitcoin.txs_in_block(base + rng.randrange(100))
            for _ in range(queries_per_point)
        ]
        loop = ClosedLoop(clients)
        run = loop.run(
            queries_per_point,
            lambda client_id, i, start: model.block_query(
                tx_counts[i], start
            ),
        )
        reads = sum(1 + n for n in tx_counts)
        result.rows_data.append(
            (
                base,
                run.throughput,
                reads / run.makespan if run.makespan else 0.0,
            )
        )
    return result


# ---------------------------------------------------------------------------
# Figures 9 & 10: social-network workload, Weaver vs Titan
# ---------------------------------------------------------------------------

@dataclass
class SocialRunResult:
    read_fraction: float
    clients_weaver: int
    clients_titan: int
    weaver_throughput: float
    titan_throughput: float
    weaver_latencies: LatencyRecorder
    titan_latencies: LatencyRecorder
    weaver_read_latencies: LatencyRecorder
    weaver_write_latencies: LatencyRecorder
    reactive_fraction: float

    @property
    def speedup(self) -> float:
        if self.titan_throughput <= 0:
            return 0.0
        return self.weaver_throughput / self.titan_throughput


def _functional_reactive_fraction(
    read_fraction: float,
    num_vertices: int,
    functional_ops: int,
    seed: int,
) -> float:
    """Measure the reactively-ordered fraction on the live system."""
    edges = graphs.social_graph(num_vertices, 5, seed)
    # announce_every=4 models a finite τ: some same-window stamps stay
    # concurrent and need the oracle, as in the paper's deployment.
    db = Weaver(
        WeaverConfig(num_gatekeepers=3, num_shards=4, announce_every=4)
    )
    client = WeaverClient(db)
    handles = graphs.load_into_weaver(client, edges)
    pool = [
        (key.split("->", 1)[0], handle) for key, handle in handles.items()
    ]
    workload = TaoWorkload(
        graphs.vertices_of(edges),
        edge_pool=pool,
        read_fraction=read_fraction,
        seed=seed,
    )
    report = run_tao(client, workload, functional_ops)
    return report.reactive_fraction


def experiment_fig9(
    read_fraction: float = 0.998,
    clients_weaver: int = 50,
    clients_titan: int = 60,
    total_ops: int = 20_000,
    num_vertices: int = 400,
    functional_ops: int = 300,
    seed: int = 11,
    costs: Optional[CostParams] = None,
    measure_reactive: bool = True,
) -> SocialRunResult:
    """Throughput on the TAO mix (Fig 9a at 99.8% reads; Fig 9b at 75%).

    Runs the functional Weaver first to measure the reactive-ordering
    fraction for this mix, then drives both cost models under a closed
    loop of the same operation stream.
    """
    costs = costs or CostParams()
    reactive = (
        _functional_reactive_fraction(
            read_fraction, num_vertices, functional_ops, seed
        )
        if measure_reactive
        else 0.0
    )
    edges = graphs.social_graph(num_vertices, 5, seed)
    vertices = graphs.vertices_of(edges)
    degree = {v: 0 for v in vertices}
    for src, _ in edges:
        degree[src] += 1

    # --- Weaver model run ---
    weaver = WeaverModel(
        num_gatekeepers=3,
        num_shards=8,
        costs=costs,
        reactive_fraction=reactive,
        seed=seed,
    )
    workload = TaoWorkload(vertices, read_fraction=read_fraction, seed=seed)
    ops = list(workload.stream(total_ops))
    weaver_lat = LatencyRecorder()
    weaver_read_lat = LatencyRecorder()
    weaver_write_lat = LatencyRecorder()

    def weaver_issue(client_id: int, i: int, start: float) -> float:
        op = ops[i]
        if op[0] in ("get_edges", "count_edges", "get_node"):
            scan = max(1, degree.get(op[1], 1))
            finish = weaver.read_program(
                start,
                vertices_read=1,
                work_per_vertex=costs.vertex_read_service * scan,
                shards_involved=1,
            )
            weaver_read_lat.record(finish - start)
        else:
            finish = weaver.write_tx(start, num_ops=2)
            weaver_write_lat.record(finish - start)
        weaver_lat.record(finish - start)
        return finish

    weaver_run = ClosedLoop(clients_weaver).run(total_ops, weaver_issue)

    # --- Titan run (functional + cost in one) ---
    titan = TitanGraph(num_shards=8, costs=costs)
    titan.load(edges)
    titan_workload = TaoWorkload(
        vertices, read_fraction=read_fraction, seed=seed
    )
    titan_ops = list(titan_workload.stream(total_ops))
    titan_lat = LatencyRecorder()

    def titan_issue(client_id: int, i: int, start: float) -> float:
        op = titan_ops[i]
        kind = op[0]
        try:
            if kind == "get_node":
                _, finish = titan.get_node(op[1], start)
            elif kind == "get_edges":
                _, finish = titan.get_edges(op[1], start)
            elif kind == "count_edges":
                _, finish = titan.count_edges(op[1], start)
            elif kind == "create_edge":
                _, src, dst, handle = op
                finish = titan.execute(
                    [("create_edge", handle, src, dst)], start
                )
                titan_workload.note_created(src, handle)
            else:
                _, src, handle = op
                finish = titan.execute([("delete_edge", src, handle)], start)
        except Exception:
            finish = start + costs.rtt  # failed op still takes a trip
        titan_lat.record(finish - start)
        return finish

    titan_run = ClosedLoop(clients_titan).run(total_ops, titan_issue)

    return SocialRunResult(
        read_fraction=read_fraction,
        clients_weaver=clients_weaver,
        clients_titan=clients_titan,
        weaver_throughput=weaver_run.throughput,
        titan_throughput=titan_run.throughput,
        weaver_latencies=weaver_lat,
        titan_latencies=titan_lat,
        weaver_read_latencies=weaver_read_lat,
        weaver_write_latencies=weaver_write_lat,
        reactive_fraction=reactive,
    )


def experiment_fig10(
    total_ops: int = 10_000,
    seed: int = 11,
    costs: Optional[CostParams] = None,
) -> Dict[float, SocialRunResult]:
    """Latency CDFs for the two mixes (Fig 10) — reuses the Fig 9 runs."""
    return {
        0.998: experiment_fig9(
            0.998, 50, 60, total_ops, seed=seed, costs=costs,
            measure_reactive=False,
        ),
        0.75: experiment_fig9(
            0.75, 45, 50, total_ops, seed=seed, costs=costs,
            measure_reactive=False,
        ),
    }


# ---------------------------------------------------------------------------
# Figure 11: traversal latency, Weaver vs GraphLab
# ---------------------------------------------------------------------------

@dataclass
class Fig11Result:
    weaver: LatencyRecorder
    graphlab_async: LatencyRecorder
    graphlab_sync: LatencyRecorder
    answers_agree: bool

    @property
    def speedup_vs_async(self) -> float:
        if self.weaver.mean <= 0:
            return 0.0
        return self.graphlab_async.mean / self.weaver.mean

    @property
    def speedup_vs_sync(self) -> float:
        if self.weaver.mean <= 0:
            return 0.0
        return self.graphlab_sync.mean / self.weaver.mean


def experiment_fig11(
    num_vertices: int = 300,
    num_queries: int = 30,
    num_shards: int = 8,
    num_machines: int = 8,
    seed: int = 23,
    costs: Optional[CostParams] = None,
) -> Fig11Result:
    """Reachability traversals, sequential single client (Fig 11).

    All three systems answer every query on the same graph; answers are
    cross-checked.  Weaver's per-query cost is derived from the
    *functional* traversal's visit count (vertices actually read at the
    snapshot); GraphLab's engines charge their own coordination.
    """
    costs = costs or CostParams()
    edges = graphs.twitter_graph(num_vertices, 4, seed)
    vertices = graphs.vertices_of(edges)
    rng = random.Random(seed)
    pairs = [
        (vertices[rng.randrange(len(vertices))],
         vertices[rng.randrange(len(vertices))])
        for _ in range(num_queries)
    ]

    # Functional Weaver: real traversals for answers and visit counts.
    db = Weaver(WeaverConfig(num_gatekeepers=2, num_shards=num_shards))
    client = WeaverClient(db)
    graphs.load_into_weaver(client, edges)
    weaver_model = WeaverModel(
        num_gatekeepers=2, num_shards=num_shards, costs=costs, seed=seed
    )
    weaver_lat = LatencyRecorder()
    weaver_answers = []
    from ..programs import library

    t = 0.0  # sequential single client, as in the paper's setup
    for src, dst in pairs:
        result = db.run_program(
            library.Reachability(), src, library.params(target=dst)
        )
        reached = bool(result.results)
        weaver_answers.append(reached)
        finish = weaver_model.read_program(
            t,
            vertices_read=max(1, result.vertices_visited),
            work_per_vertex=costs.vertex_read_service,
            shards_involved=num_shards,
            hops=max(1, result.hops // max(1, result.vertices_visited)),
        )
        weaver_lat.record(finish - t)
        t = finish

    # GraphLab, both engines (functional + cost).
    agree = True
    lat_async = LatencyRecorder()
    lat_sync = LatencyRecorder()
    for mode, recorder in (("async", lat_async), ("sync", lat_sync)):
        engine = GraphLab(mode=mode, num_machines=num_machines, costs=costs)
        engine.load(edges)
        t = 0.0
        for (src, dst), expected in zip(pairs, weaver_answers):
            reached, finish = engine.reachability(src, dst, t)
            recorder.record(finish - t)
            t = finish
            if reached != expected:
                agree = False
    return Fig11Result(weaver_lat, lat_async, lat_sync, agree)


# ---------------------------------------------------------------------------
# Figures 12 & 13: scalability microbenchmarks
# ---------------------------------------------------------------------------

@dataclass
class ScalingResult:
    rows_data: List[Tuple[int, float]] = field(default_factory=list)

    def rows(self):
        return list(self.rows_data)

    @property
    def linearity(self) -> float:
        """Throughput(max servers) / (Throughput(1 server) * max servers):
        1.0 is perfectly linear scaling."""
        if len(self.rows_data) < 2:
            return 1.0
        first_n, first_t = self.rows_data[0]
        last_n, last_t = self.rows_data[-1]
        ideal = first_t / first_n * last_n
        return last_t / ideal if ideal > 0 else 0.0


def experiment_fig12(
    gatekeeper_counts: Sequence[int] = (1, 2, 3, 4, 5, 6),
    ops: int = 20_000,
    clients: int = 128,
    costs: Optional[CostParams] = None,
) -> ScalingResult:
    """get_node throughput vs gatekeeper count (Fig 12).

    get_node is vertex-local: shards do almost nothing, so the
    gatekeeper bank is the bottleneck and throughput grows linearly.
    """
    costs = costs or CostParams()
    result = ScalingResult()
    for count in gatekeeper_counts:
        model = WeaverModel(
            num_gatekeepers=count, num_shards=8, costs=costs
        )
        run = ClosedLoop(clients).run(
            ops,
            lambda c, i, start: model.read_program(
                start, vertices_read=1, shards_involved=1
            ),
        )
        result.rows_data.append((count, run.throughput))
    return result


def experiment_fig13(
    shard_counts: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8, 9),
    ops: int = 4_000,
    clients: int = 64,
    num_vertices: int = 300,
    seed: int = 5,
    costs: Optional[CostParams] = None,
) -> ScalingResult:
    """Clustering-coefficient throughput vs shard count (Fig 13).

    The work per query (centre scan plus every neighbour's scan) comes
    from the actual degree structure of the generated graph, so heavier
    tails genuinely shift the curve.
    """
    costs = costs or CostParams()
    adjacency = graphs.adjacency(graphs.twitter_graph(num_vertices, 4, seed))
    names = list(adjacency)
    rng = random.Random(seed)
    # Vertex-read units per clustering query at a random centre.
    work_units = []
    for _ in range(ops):
        centre = names[rng.randrange(len(names))]
        neighbors = adjacency[centre]
        work_units.append(
            1 + len(neighbors) + sum(len(adjacency[n]) for n in neighbors)
        )
    result = ScalingResult()
    for count in shard_counts:
        model = WeaverModel(
            num_gatekeepers=6, num_shards=count, costs=costs
        )
        run = ClosedLoop(clients).run(
            ops,
            lambda c, i, start: model.read_program(
                start,
                vertices_read=work_units[i],
                work_per_vertex=costs.vertex_read_service * 10,
                shards_involved=count,
                hops=2,
            ),
        )
        result.rows_data.append((count, run.throughput))
    return result


# ---------------------------------------------------------------------------
# Figure 14: coordination overhead vs announce period tau
# ---------------------------------------------------------------------------

@dataclass
class Fig14Result:
    rows_data: List[Tuple[float, float, float]] = field(default_factory=list)

    def rows(self):
        return list(self.rows_data)


def experiment_fig14(
    taus: Sequence[float] = (
        10 * USEC, 100 * USEC, 1 * MSEC, 10 * MSEC, 100 * MSEC, 1.0
    ),
    num_gatekeepers: int = 3,
    num_txs: int = 2_000,
    arrival_rate: float = 10_000.0,
    seed: int = 3,
) -> Fig14Result:
    """Announce vs oracle messages per query as τ sweeps (Fig 14).

    Fully functional: transactions arrive Poisson at the gatekeeper
    bank, clocks announce every τ simulated seconds, and consecutive
    transaction pairs (the conservative same-shard rule of section 3.4)
    are ordered through a real RefinableOrdering — oracle messages are
    whatever the oracle actually had to serve.
    """
    result = Fig14Result()
    rng = random.Random(seed)
    for tau in taus:
        gatekeepers = [
            Gatekeeper(i, num_gatekeepers) for i in range(num_gatekeepers)
        ]
        announces = 0
        now = 0.0
        next_announce = tau
        stamps = []
        for _ in range(num_txs):
            now += rng.expovariate(arrival_rate)
            while now >= next_announce:
                sync_announce_all(gatekeepers)
                announces += num_gatekeepers * (num_gatekeepers - 1)
                next_announce += tau
            gk = gatekeepers[rng.randrange(num_gatekeepers)]
            stamps.append(gk.issue_timestamp())
        oracle = TimelineOracle()
        ordering = RefinableOrdering(oracle, use_cache=True)
        for i, (a, b) in enumerate(zip(stamps, stamps[1:])):
            ordering.compare(a, b)
            # Garbage-collect settled events (section 4.5): only the
            # recent window can still be queried (the workload orders
            # adjacent arrivals), so older events leave the DAG exactly
            # as Weaver's watermark GC would retire them.
            if i % 200 == 199:
                for old in stamps[max(0, i - 399):i - 199]:
                    oracle.graph.remove_event(old)
        result.rows_data.append(
            (
                tau,
                announces / num_txs,
                oracle.stats.messages / num_txs,
            )
        )
    return result


# ---------------------------------------------------------------------------
# Ablations A1-A4
# ---------------------------------------------------------------------------

@dataclass
class CachingAblationResult:
    cold_reads: int
    cached_reads: int
    hit_rate: float
    invalidations: int

    @property
    def reads_saved_fraction(self) -> float:
        if self.cold_reads <= 0:
            return 0.0
        return 1.0 - self.cached_reads / self.cold_reads


def ablation_caching(
    num_blocks: int = 10,
    queries: int = 200,
    write_every: int = 25,
    seed: int = 17,
) -> CachingAblationResult:
    """A1: node-program memoization under a read-mostly block workload.

    Renders random blocks repeatedly with the cache on; every
    ``write_every`` queries one block gains a transaction, invalidating
    its cached render.  Reports vertex reads saved and hit rate.
    """
    gen = bitcoin.BlockchainGenerator(seed=seed, scale=0.02)
    blocks = gen.generate(range(10_000, 10_000 + num_blocks * 1000, 1000))
    db = Weaver(
        WeaverConfig(
            num_gatekeepers=2, num_shards=2, enable_program_cache=True
        )
    )
    client = WeaverClient(db)
    bitcoin.load_into_weaver(client, blocks)
    rng = random.Random(seed)
    reads_before = sum(s.stats.vertices_read for s in db.shards)
    cold_equivalent = 0
    extra = 0
    for q in range(queries):
        block = blocks[rng.randrange(len(blocks))]
        rendered = client.render_block(block.block_id, use_cache=True)
        cold_equivalent += 1 + rendered["n_tx"]
        if (q + 1) % write_every == 0:
            target = blocks[rng.randrange(len(blocks))]

            def add_tx(tx):
                nonlocal extra
                handle = tx.create_vertex(f"extra_tx{extra}")
                edge = tx.create_edge(target.block_id, handle)
                tx.set_edge_property(target.block_id, edge, "tx", True)
                extra += 1

            client.transact(add_tx)
    reads_after = sum(s.stats.vertices_read for s in db.shards)
    cache = db.program_cache
    return CachingAblationResult(
        cold_reads=cold_equivalent,
        cached_reads=reads_after - reads_before,
        hit_rate=cache.hit_rate,
        invalidations=cache.invalidations,
    )


@dataclass
class PartitionAblationResult:
    rows_data: List[Tuple[str, float, float]] = field(default_factory=list)

    def rows(self):
        return list(self.rows_data)

    def cut_of(self, name: str) -> float:
        for row_name, cut, _ in self.rows_data:
            if row_name == name:
                return cut
        raise KeyError(name)


def ablation_partitioning(
    num_vertices: int = 1000,
    num_partitions: int = 8,
    seed: int = 31,
) -> PartitionAblationResult:
    """A2: edge cut of hash vs LDG vs restreaming LDG (section 4.6)."""
    edges = graphs.social_graph(num_vertices, 6, seed)
    adjacency = graphs.adjacency(edges)
    stream = [(v, adjacency[v]) for v in adjacency]
    result = PartitionAblationResult()
    assignments = {
        "hash": HashPartitioner(num_partitions).partition(stream),
        "ldg": LdgPartitioner(num_partitions).partition(stream),
        "restream": restream(stream, num_partitions, passes=3),
    }
    for name, assignment in assignments.items():
        cut, total = edge_cut(assignment, edges)
        result.rows_data.append(
            (
                name,
                cut / total if total else 0.0,
                balance(assignment, num_partitions),
            )
        )
    return result


@dataclass
class OracleCacheAblationResult:
    with_cache_oracle_messages: int
    without_cache_oracle_messages: int
    cache_hits: int

    @property
    def messages_saved_fraction(self) -> float:
        if self.without_cache_oracle_messages <= 0:
            return 0.0
        return 1.0 - (
            self.with_cache_oracle_messages
            / self.without_cache_oracle_messages
        )


def ablation_oracle_cache(
    num_pairs: int = 400,
    num_gatekeepers: int = 3,
    reuse: int = 4,
    seed: int = 41,
) -> OracleCacheAblationResult:
    """A3: oracle traffic saved by shard-side decision caching.

    Generates concurrent timestamp pairs (no announces) and orders each
    pair ``reuse`` times — the repeated comparisons shards make while
    merging queues — with and without the cache.
    """
    rng = random.Random(seed)

    def make_pairs():
        gatekeepers = [
            Gatekeeper(i, num_gatekeepers) for i in range(num_gatekeepers)
        ]
        pairs = []
        for _ in range(num_pairs):
            a = gatekeepers[rng.randrange(num_gatekeepers)]
            b = gatekeepers[rng.randrange(num_gatekeepers)]
            while b is a:
                b = gatekeepers[rng.randrange(num_gatekeepers)]
            pairs.append((a.issue_timestamp(), b.issue_timestamp()))
        return pairs

    results = {}
    hits = 0
    for use_cache in (True, False):
        oracle = TimelineOracle()
        ordering = RefinableOrdering(oracle, use_cache=use_cache)
        for a, b in make_pairs():
            for _ in range(reuse):
                ordering.compare(a, b)
        results[use_cache] = oracle.stats.messages
        if use_cache and ordering.cache is not None:
            hits = ordering.cache.hits
    return OracleCacheAblationResult(
        with_cache_oracle_messages=results[True],
        without_cache_oracle_messages=results[False],
        cache_hits=hits,
    )


@dataclass
class NopAblationResult:
    rows_data: List[Tuple[float, float, float]] = field(default_factory=list)

    def rows(self):
        return list(self.rows_data)


@dataclass
class ContentionResult:
    rows_data: List[Tuple[float, float]] = field(default_factory=list)

    def rows(self):
        return list(self.rows_data)


def ablation_contention(
    skews: Sequence[float] = (0.0, 0.8, 1.6, 2.4),
    num_vertices: int = 40,
    rounds: int = 60,
    seed: int = 61,
) -> ContentionResult:
    """A6: OCC abort rate vs write skew.

    Interleaved read-modify-write transactions target Zipf-sampled
    vertices; first-committer-wins aborts climb as the distribution
    sharpens — the contention regime the paper says OCC handles poorly
    and that motivates Weaver executing reads as node programs instead.
    """
    from ..workloads.contention import run_contention

    result = ContentionResult()
    for skew in skews:
        db = Weaver(WeaverConfig(num_gatekeepers=2, num_shards=2))
        client = WeaverClient(db)
        names = [f"v{i}" for i in range(num_vertices)]
        with client.transaction() as tx:
            for name in names:
                tx.create_vertex(name)
        report = run_contention(
            db, names, skew=skew, rounds=rounds, seed=seed
        )
        result.rows_data.append((skew, report.abort_rate))
    return result


@dataclass
class FreshnessResult:
    rows_data: List[Tuple[float, float, float]] = field(default_factory=list)

    def rows(self):
        return list(self.rows_data)


def ablation_freshness(
    epoch_intervals: Sequence[float] = (1.0, 5.0, 10.0),
    num_updates: int = 200,
    seed: int = 71,
) -> FreshnessResult:
    """A7: update-visibility lag, Weaver vs a Kineograph-like system.

    Kineograph buffers updates until the epoch turns, so a write becomes
    query-visible only at the next boundary (mean lag = interval / 2);
    Weaver's refinable timestamps make it visible as soon as the commit
    response returns (a few network hops).  Rows: (epoch interval,
    Kineograph mean lag, Weaver lag).
    """
    from ..baselines.kineograph import Kineograph

    rng = random.Random(seed)
    weaver_lag = WeaverModel().write_tx(0.0)  # commit response time
    result = FreshnessResult()
    for interval in epoch_intervals:
        kg = Kineograph(epoch_interval=interval)
        lags = []
        for _ in range(num_updates):
            at = rng.uniform(0, interval * 20)
            lags.append(kg.visibility_lag(at))
        result.rows_data.append(
            (interval, sum(lags) / len(lags), weaver_lag)
        )
    return result


@dataclass
class RebalanceResult:
    cut_before: int
    cut_after: int
    total_edges: int
    moves: int

    @property
    def improvement(self) -> float:
        if self.cut_before == 0:
            return 0.0
        return 1.0 - self.cut_after / self.cut_before


def ablation_rebalance(
    num_vertices: int = 150,
    num_shards: int = 4,
    max_moves: int = 400,
    seed: int = 91,
) -> RebalanceResult:
    """A9: online vertex migration (section 4.6's dynamic colocation).

    Loads a power-law graph with the default balanced-but-locality-blind
    placement, then runs the greedy rebalancer and reports the edge-cut
    improvement.  Every migration carries the vertex's full version
    history, so correctness costs nothing (tested separately).
    """
    db = Weaver(WeaverConfig(num_gatekeepers=2, num_shards=num_shards))
    client = WeaverClient(db)
    edges = graphs.social_graph(num_vertices, 5, seed)
    graphs.load_into_weaver(client, edges)
    cut_before, total = db.edge_cut()
    moves = db.rebalance(max_moves=max_moves)
    cut_after, _ = db.edge_cut()
    return RebalanceResult(cut_before, cut_after, total, moves)


@dataclass
class StoreChainResult:
    rows_data: List[Tuple[int, float, float]] = field(default_factory=list)

    def rows(self):
        return list(self.rows_data)


def ablation_store_chains(
    keys_per_tx: Sequence[int] = (1, 2, 4, 8),
    num_nodes: int = 8,
    replication: int = 2,
    txs_per_point: int = 100,
    seed: int = 81,
) -> StoreChainResult:
    """A8: linear-transaction chain cost in the distributed store.

    Warp-style commits pay one validation+application pass through every
    involved key-owner; the chain grows with the keys a transaction
    touches (saturating at the node count).  Rows: (keys per tx, mean
    chain length, messages per commit).
    """
    from ..store.distributed import DistributedStore

    rng = random.Random(seed)
    result = StoreChainResult()
    for k in keys_per_tx:
        store = DistributedStore(num_nodes, replication)
        for _ in range(txs_per_point):
            keys = [f"key{rng.randrange(10_000)}" for _ in range(k)]

            def write_all(tx, keys=keys):
                for key in keys:
                    tx.put(key, 1)

            store.transact(write_all)
        result.rows_data.append(
            (
                k,
                store.mean_chain_length,
                store.chain_messages / store.commits,
            )
        )
    return result


@dataclass
class AdaptiveTauResult:
    start_tau: float
    final_tau: float
    trajectory: List[float] = field(default_factory=list)


def ablation_adaptive_tau(
    start_tau: float,
    bounds: Tuple[float, float] = (50 * USEC, 8 * MSEC),
    windows: int = 24,
    txs_per_window: int = 20,
) -> AdaptiveTauResult:
    """A5: the section 3.5 dynamic-τ controller, end to end.

    Runs the event-driven deployment under a steady write load with the
    feedback controller enabled; records the τ trajectory from the given
    starting point.  Started at either extreme it should move toward the
    Fig 14 crossover region.
    """
    from ..db import operations as ops
    from ..sim.deployment import SimulatedWeaver, TauController

    controller = TauController(start_tau, bounds=bounds)
    sw = SimulatedWeaver(
        WeaverConfig(num_gatekeepers=3, num_shards=2),
        nop_period=500 * USEC,
        tau_controller=controller,
        adapt_window=4 * MSEC,
    )
    n = 0
    for _ in range(windows):
        for _ in range(txs_per_window):
            handle = f"v{n}"
            n += 1
            sw.submit_transaction(
                [ops.CreateVertex(handle)], new_vertices=(handle,)
            )
        sw.run(sw.adapt_window)
    return AdaptiveTauResult(
        start_tau=start_tau,
        final_tau=sw.tau,
        trajectory=[tau for tau, _ in controller.adjustments],
    )


def ablation_nop_period(
    periods: Sequence[float] = (
        10 * USEC, 100 * USEC, 1 * MSEC, 10 * MSEC
    ),
    num_gatekeepers: int = 3,
    num_shards: int = 4,
    seed: int = 53,
) -> NopAblationResult:
    """A4: NOP period vs node-program delay and heartbeat overhead.

    Under light load a node program waits for the next NOP on every
    gatekeeper queue: expected delay is period/2 (plus a network hop);
    heartbeat traffic is gatekeepers x shards / period messages per
    second.  The rows quantify that tradeoff (section 4.2 defaults the
    period to 10 µs).
    """
    rng = random.Random(seed)
    net = 100 * USEC
    result = NopAblationResult()
    for period in periods:
        # Expected wait until the last of G independent uniformly-phased
        # NOP timers fires: period * G/(G+1), estimated by sampling.
        samples = [
            max(rng.random() for _ in range(num_gatekeepers)) * period
            for _ in range(2000)
        ]
        expected_delay = sum(samples) / len(samples) + net
        messages_per_second = num_gatekeepers * num_shards / period
        result.rows_data.append(
            (period, expected_delay, messages_per_second)
        )
    return result
