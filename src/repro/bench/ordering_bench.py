"""Ordering fast-path microbenchmark: indexed oracle vs seed reference.

Builds an oracle-heavy workload — hundreds of events from loosely
synchronized gatekeeper clocks, with a pair schedule whose concurrent
fraction is measured, not assumed — and times the same schedule against
the skyline-indexed :class:`~repro.core.oracle.EventDependencyGraph` and
the seed-equivalent
:class:`~repro.core.oracle_reference.ReferenceEventDependencyGraph`.

``benchmarks/test_micro_ordering.py`` records the result as
``BENCH_ordering.json``; ``benchmarks/test_perf_guard.py`` runs a small
configuration as a CI regression guard.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.oracle import TimelineOracle
from ..core.oracle_reference import reference_oracle
from ..core.vclock import Ordering, VectorClock, VectorTimestamp


@dataclass
class OrderingWorkload:
    """A reproducible stamp stream plus pair schedule."""

    stamps: List[VectorTimestamp]
    pairs: List[Tuple[VectorTimestamp, VectorTimestamp]]
    concurrent_fraction: float


def build_workload(
    num_events: int = 800,
    num_pairs: int = 2000,
    num_gatekeepers: int = 3,
    observe_probability: float = 0.02,
    seed: int = 7,
) -> OrderingWorkload:
    """Generate causally-valid stamps and a mixed pair schedule.

    ``observe_probability`` tunes how often gatekeepers fold in a peer's
    announce — lower means more concurrent (oracle-bound) pairs.
    """
    rng = random.Random(seed)
    clocks = [VectorClock(num_gatekeepers, i) for i in range(num_gatekeepers)]
    stamps: List[VectorTimestamp] = []
    while len(stamps) < num_events:
        actor = rng.randrange(num_gatekeepers)
        if rng.random() < observe_probability:
            peer = rng.randrange(num_gatekeepers)
            clocks[actor].observe(clocks[peer].announce())
        stamps.append(clocks[actor].tick())
    pairs = [tuple(rng.sample(stamps, 2)) for _ in range(num_pairs)]
    concurrent = sum(
        1 for a, b in pairs if a.compare(b) is Ordering.CONCURRENT
    )
    return OrderingWorkload(stamps, pairs, concurrent / len(pairs))


def run_schedule(oracle: TimelineOracle, workload: OrderingWorkload) -> float:
    """Drive one oracle through the workload; returns elapsed seconds.

    The schedule orders every pair (committing decisions for concurrent
    ones), then re-queries the whole schedule — the repeat-query pattern
    shard servers generate.
    """
    for ts in workload.stamps:
        oracle.create_event(ts)
    started = time.perf_counter()
    for a, b in workload.pairs:
        oracle.order(a, b)
    for a, b in workload.pairs:
        oracle.query_order(a, b)
    return time.perf_counter() - started


def compare_fastpath(
    num_events: int = 800,
    num_pairs: int = 2000,
    num_gatekeepers: int = 3,
    observe_probability: float = 0.02,
    seed: int = 7,
) -> Dict:
    """Run the schedule on both implementations and report the speedup."""
    workload = build_workload(
        num_events=num_events,
        num_pairs=num_pairs,
        num_gatekeepers=num_gatekeepers,
        observe_probability=observe_probability,
        seed=seed,
    )
    indexed = TimelineOracle()
    indexed_seconds = run_schedule(indexed, workload)
    reference = reference_oracle()
    reference_seconds = run_schedule(reference, workload)
    return {
        "num_events": num_events,
        "num_pairs": num_pairs,
        "num_gatekeepers": num_gatekeepers,
        "concurrent_fraction": round(workload.concurrent_fraction, 4),
        "indexed_seconds": indexed_seconds,
        "reference_seconds": reference_seconds,
        "speedup": (
            reference_seconds / indexed_seconds
            if indexed_seconds > 0
            else float("inf")
        ),
        "indexed_counters": {
            "bfs_expansions": indexed.stats.bfs_expansions,
            "bfs_pruned": indexed.stats.bfs_pruned,
            "reach_cache_hits": indexed.stats.reach_cache_hits,
            "decisions": indexed.stats.decisions,
        },
    }
