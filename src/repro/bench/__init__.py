"""Benchmark harness: cost models, metrics, and per-figure experiments."""

from .costmodel import ClosedLoop, ClosedLoopResult, CostParams, LockTable, Resource
from .metrics import LatencyRecorder, percentile, throughput
from .models import CoinGraphModel, WeaverModel
from .report import format_series, format_table, print_table, ratio_check

# NOTE: `repro.bench.harness` is imported on demand (it depends on the
# baselines, which themselves use the cost models defined here).
__all__ = [
    "ClosedLoop",
    "ClosedLoopResult",
    "CostParams",
    "LockTable",
    "Resource",
    "LatencyRecorder",
    "percentile",
    "throughput",
    "CoinGraphModel",
    "WeaverModel",
    "format_series",
    "format_table",
    "print_table",
    "ratio_check",
    "harness",
]
