"""The Weaver cost model: protocol-faithful timing for the figures.

Weaver's functional implementation (:class:`repro.db.database.Weaver`)
establishes *what happens* — which operations commit, how many ordering
decisions escalate to the oracle.  This model charges *how long it
takes* on a simulated cluster, mirroring the protocol hop by hop:

* a **read (node program)**: client -> gatekeeper (stamp) -> shard(s);
  vertex-read work is spread across the involved shards; a configurable
  fraction of operations (measured from the functional run) pays a
  timeline-oracle round trip; response returns to the client.
* a **write transaction**: client -> gatekeeper -> backing-store commit
  (the durable, OCC multi-key commit — the expensive step, spread over
  ``store_nodes``) -> response; the in-memory shard apply happens off
  the critical path, exactly as in section 4.2.

Throughput bottlenecks emerge from resource saturation: the gatekeeper
bank caps stamp throughput (Fig 12), shard capacity caps traversal
throughput (Fig 13), and the store caps write-heavy mixes (Fig 9b).
"""

from __future__ import annotations

import itertools
import random
from typing import Optional

from .costmodel import CostParams, Resource


class WeaverModel:
    """Timing model of one Weaver deployment."""

    def __init__(
        self,
        num_gatekeepers: int = 3,
        num_shards: int = 8,
        costs: Optional[CostParams] = None,
        reactive_fraction: float = 0.0,
        seed: int = 99,
    ):
        if num_gatekeepers < 1 or num_shards < 1:
            raise ValueError("need at least one gatekeeper and one shard")
        if not 0.0 <= reactive_fraction <= 1.0:
            raise ValueError("reactive fraction must be in [0, 1]")
        self.costs = costs or CostParams()
        self.gatekeepers = [
            Resource(f"gk{i}") for i in range(num_gatekeepers)
        ]
        self.shards = [Resource(f"shard{i}") for i in range(num_shards)]
        self.store_nodes = [
            Resource(f"store{i}") for i in range(self.costs.store_nodes)
        ]
        self.oracle = Resource("oracle")
        self.reactive_fraction = reactive_fraction
        self._rng = random.Random(seed)
        self._gk_rr = itertools.count()
        self._store_rr = itertools.count()
        self.reads = 0
        self.writes = 0
        self.oracle_trips = 0

    # -- routing ---------------------------------------------------------

    def _gatekeeper(self) -> Resource:
        return self.gatekeepers[
            next(self._gk_rr) % len(self.gatekeepers)
        ]

    def _store_node(self) -> Resource:
        return self.store_nodes[
            next(self._store_rr) % len(self.store_nodes)
        ]

    def _maybe_oracle(self, t: float) -> float:
        if (
            self.reactive_fraction > 0
            and self._rng.random() < self.reactive_fraction
        ):
            self.oracle_trips += 1
            t = self.oracle.acquire(
                t + self.costs.net_latency, self.costs.oracle_service
            )
            t += self.costs.net_latency
        return t

    # -- operations --------------------------------------------------------

    def read_program(
        self,
        start: float,
        vertices_read: int = 1,
        work_per_vertex: Optional[float] = None,
        shards_involved: Optional[int] = None,
        hops: int = 1,
    ) -> float:
        """One node program; returns its completion time.

        ``vertices_read`` units of per-vertex work are spread across
        ``shards_involved`` shard servers (default: all of them, capped
        at the vertex count); ``hops`` charges inter-shard propagation
        latency for multi-hop traversals.
        """
        c = self.costs
        self.reads += 1
        work = (
            work_per_vertex
            if work_per_vertex is not None
            else c.vertex_read_service
        )
        t = start + c.net_latency
        t = self._gatekeeper().acquire(t, c.gatekeeper_service)
        t += c.net_latency
        t = self._maybe_oracle(t)
        involved = shards_involved or min(len(self.shards), vertices_read)
        involved = max(1, min(involved, len(self.shards)))
        # Spread the vertex reads over the least-loaded shards; the
        # program finishes when the slowest involved shard finishes.
        per_shard = (vertices_read * work) / involved
        chosen = sorted(self.shards, key=lambda s: s.free_at)[:involved]
        t = max(shard.acquire(t, per_shard) for shard in chosen)
        t += max(0, hops - 1) * c.net_latency
        return t + c.net_latency

    def write_tx(
        self,
        start: float,
        num_ops: int = 1,
        shards_touched: int = 1,
    ) -> float:
        """One read-write transaction; returns its client-visible
        completion time (the durable store commit, section 4.2)."""
        c = self.costs
        self.writes += 1
        t = start + c.net_latency
        t = self._gatekeeper().acquire(t, c.gatekeeper_service)
        t = self._maybe_oracle(t)
        # Durable OCC commit at the backing store.
        t = self._store_node().acquire(
            t + c.net_latency, c.store_commit_service
        )
        finish = t + c.net_latency
        # In-memory shard apply is off the critical path: charge the
        # shard resources (they do the work) but do not delay the client.
        for _ in range(max(1, shards_touched)):
            shard = min(self.shards, key=lambda s: s.free_at)
            shard.acquire(finish, c.shard_op_service * max(1, num_ops))
        return finish

    # -- capacity introspection (used by scaling benches) ----------------

    def busiest_utilization(self, horizon: float) -> dict:
        groups = {
            "gatekeepers": self.gatekeepers,
            "shards": self.shards,
            "store": self.store_nodes,
        }
        return {
            name: max(r.utilization(horizon) for r in resources)
            for name, resources in groups.items()
        }


class CoinGraphModel:
    """Timing for CoinGraph block queries (Figs 7, 8).

    A block query is one node program whose work is dominated by reading
    (and demand-paging) the block's transaction vertices: the paper
    measures 0.6-0.8 ms per transaction.  Latency is therefore linear in
    the block's transaction count; cluster-wide throughput is the
    aggregate vertex-read capacity divided by per-query work.
    """

    def __init__(
        self,
        num_shards: int = 8,
        costs: Optional[CostParams] = None,
    ):
        self.costs = costs or CostParams()
        self.num_shards = num_shards
        self.shards = [Resource(f"cg{i}") for i in range(num_shards)]

    def block_query_latency(self, n_tx: int) -> float:
        """Latency of rendering a block with ``n_tx`` transactions."""
        c = self.costs
        return 2 * c.net_latency + (1 + n_tx) * c.coingraph_tx_service

    def block_query(self, n_tx: int, start: float) -> float:
        """Closed-loop version: the paging work occupies one shard."""
        c = self.costs
        t = start + c.net_latency
        shard = min(self.shards, key=lambda s: s.free_at)
        t = shard.acquire(t, (1 + n_tx) * c.coingraph_tx_service)
        return t + c.net_latency
