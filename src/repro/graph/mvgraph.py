"""The in-memory multi-version graph and its snapshot views.

Every mutation carries the vector timestamp of the writing transaction and
tombstones rather than destroys (section 4.2).  Reads go through a
:class:`SnapshotView` bound to one timestamp: the view exposes only the
vertices, edges, and property values whose lifespans contain that
timestamp, which is how long-running node programs observe a consistent
cut of the graph without blocking writers — and how historical queries
run on past versions.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional

from ..core.vclock import Ordering, VectorTimestamp
from ..errors import NoSuchEdge, NoSuchVertex
from .elements import Edge, Vertex
from .properties import Comparator, MemoizedComparator, vclock_compare


class MultiVersionGraph:
    """A timestamp-versioned property graph (one shard's partition)."""

    def __init__(self, cmp: Comparator = vclock_compare):
        self._vertices: Dict[str, Vertex] = {}
        # Earlier incarnations of re-created handles: a deleted vertex's
        # record moves here when its handle is reused, so historical
        # snapshots between its creation and deletion still see it.
        self._archive: Dict[str, List[Vertex]] = {}
        self._cmp = cmp

    # -- introspection -----------------------------------------------------

    @property
    def comparator(self) -> Comparator:
        return self._cmp

    def __len__(self) -> int:
        return len(self._vertices)

    def __contains__(self, handle: str) -> bool:
        return handle in self._vertices

    def raw_vertex(self, handle: str) -> Optional[Vertex]:
        """The underlying record, tombstoned or not."""
        return self._vertices.get(handle)

    def vertices(self) -> Iterator[Vertex]:
        """Every vertex record, current and archived incarnations."""
        for vertex in self._vertices.values():
            yield vertex
        for incarnations in self._archive.values():
            yield from incarnations

    def visible_vertex(
        self,
        handle: str,
        ts: VectorTimestamp,
        cmp: Optional[Comparator] = None,
    ) -> Optional[Vertex]:
        """The incarnation of ``handle`` visible at ``ts``, if any."""
        cmp = cmp or self._cmp
        current = self._vertices.get(handle)
        if current is not None and current.visible_at(ts, cmp):
            return current
        for vertex in reversed(self._archive.get(handle, ())):
            if vertex.visible_at(ts, cmp):
                return vertex
        return None

    def version_count(self) -> int:
        return sum(v.version_count() for v in self.vertices())

    # -- mutations (each stamped with the writer's timestamp) ---------------

    def create_vertex(self, handle: str, ts: VectorTimestamp) -> Vertex:
        existing = self._vertices.get(handle)
        if existing is not None:
            if not existing.span.is_deleted:
                raise ValueError(f"vertex {handle!r} already exists")
            # Keep the dead incarnation for historical snapshots.
            self._archive.setdefault(handle, []).append(existing)
        vertex = Vertex(handle, ts)
        self._vertices[handle] = vertex
        return vertex

    def delete_vertex(self, handle: str, ts: VectorTimestamp) -> None:
        vertex = self._live_vertex(handle)
        for edge in vertex.edges.values():
            if not edge.span.is_deleted:
                edge.span.delete(ts)
        vertex.span.delete(ts)

    def create_edge(
        self, handle: str, src: str, dst: str, ts: VectorTimestamp
    ) -> Edge:
        vertex = self._live_vertex(src)
        edge = Edge(handle, src, dst, ts)
        vertex.add_edge(edge)
        return edge

    def delete_edge(self, src: str, handle: str, ts: VectorTimestamp) -> None:
        edge = self._live_edge(src, handle)
        edge.span.delete(ts)

    def set_vertex_property(
        self, handle: str, key: str, value: Any, ts: VectorTimestamp
    ) -> None:
        self._live_vertex(handle).properties.assign(key, value, ts)

    def delete_vertex_property(
        self, handle: str, key: str, ts: VectorTimestamp
    ) -> bool:
        return self._live_vertex(handle).properties.remove(key, ts)

    def set_edge_property(
        self, src: str, handle: str, key: str, value: Any, ts: VectorTimestamp
    ) -> None:
        self._live_edge(src, handle).properties.assign(key, value, ts)

    def delete_edge_property(
        self, src: str, handle: str, key: str, ts: VectorTimestamp
    ) -> bool:
        return self._live_edge(src, handle).properties.remove(key, ts)

    # -- reads ----------------------------------------------------------

    def at(
        self,
        ts: VectorTimestamp,
        cmp: Optional[Comparator] = None,
        memo_stats=None,
    ) -> "SnapshotView":
        """A consistent read-only view of the graph at ``ts``.

        ``memo_stats`` (an ``OrderingStats``-like object) receives the
        view's snapshot-memo hit counts, if given.
        """
        return SnapshotView(self, ts, cmp or self._cmp, memo_stats)

    def release_vertex(self, handle: str):
        """Detach a vertex record (with its archived incarnations) for
        migration to another partition.  Unlike :meth:`evict`, the full
        multi-version history travels with it.

        Returns ``(vertex, archived_incarnations)``; raises if the
        handle is unknown.
        """
        vertex = self._vertices.pop(handle, None)
        if vertex is None:
            raise NoSuchVertex(handle)
        return vertex, self._archive.pop(handle, [])

    def adopt_vertex(self, vertex: Vertex, archived=None) -> None:
        """Install a migrated vertex record (see :meth:`release_vertex`)."""
        if vertex.handle in self._vertices:
            raise ValueError(f"vertex {vertex.handle!r} already here")
        self._vertices[vertex.handle] = vertex
        if archived:
            self._archive[vertex.handle] = list(archived)

    def evict(self, handle: str) -> int:
        """Drop a vertex record (all versions) from memory entirely.

        Demand paging support (section 6.1): evicted state is *not*
        deleted — the durable copy lives in the backing store and is
        paged back in on access.  Returns the number of versioned
        records released.
        """
        vertex = self._vertices.pop(handle, None)
        released = vertex.version_count() if vertex is not None else 0
        for old in self._archive.pop(handle, ()):
            released += old.version_count()
        return released

    # -- garbage collection (section 4.5) ---------------------------------

    def collect_below(self, watermark: VectorTimestamp) -> int:
        """Drop tombstoned state invisible to every query at or after the
        watermark (the oldest ongoing node program).  Returns the number of
        records reclaimed."""
        reclaimed = 0
        for handle in list(self._archive):
            incarnations = self._archive[handle]
            kept = [
                v for v in incarnations
                if not v.span.dead_before(watermark, self._cmp)
            ]
            reclaimed += sum(
                v.version_count()
                for v in incarnations
                if v.span.dead_before(watermark, self._cmp)
            )
            if kept:
                self._archive[handle] = kept
            else:
                del self._archive[handle]
        for handle in list(self._vertices):
            vertex = self._vertices[handle]
            if vertex.span.dead_before(watermark, self._cmp):
                reclaimed += vertex.version_count()
                del self._vertices[handle]
                continue
            reclaimed += vertex.properties.collect_below(watermark, self._cmp)
            reclaimed += vertex.collect_archived_below(watermark, self._cmp)
            for edge_handle in list(vertex.edges):
                edge = vertex.edges[edge_handle]
                if edge.span.dead_before(watermark, self._cmp):
                    reclaimed += 1 + edge.properties.version_count()
                    del vertex.edges[edge_handle]
                else:
                    reclaimed += edge.properties.collect_below(
                        watermark, self._cmp
                    )
        return reclaimed

    # -- internals ---------------------------------------------------------

    def _live_vertex(self, handle: str) -> Vertex:
        vertex = self._vertices.get(handle)
        if vertex is None or vertex.span.is_deleted:
            raise NoSuchVertex(handle)
        return vertex

    def _live_edge(self, src: str, handle: str) -> Edge:
        vertex = self._live_vertex(src)
        edge = vertex.get_edge(handle)
        if edge is None or edge.span.is_deleted:
            raise NoSuchEdge(handle)
        return edge


class EdgeView:
    """A read-only edge as seen by a snapshot (what node programs get)."""

    __slots__ = ("_edge", "_ts", "_cmp")

    def __init__(self, edge: Edge, ts: VectorTimestamp, cmp: Comparator):
        self._edge = edge
        self._ts = ts
        self._cmp = cmp

    @property
    def handle(self) -> str:
        return self._edge.handle

    @property
    def src(self) -> str:
        return self._edge.src

    @property
    def nbr(self) -> str:
        """The neighbour (destination) vertex handle — paper's ``edge.nbr``."""
        return self._edge.dst

    @property
    def dst(self) -> str:
        return self._edge.dst

    def check(self, key: str, value: Any = None) -> bool:
        """Paper's ``edge.check(prop)``: property visible at the snapshot."""
        return self._edge.properties.check(key, self._ts, self._cmp, value)

    def get_property(self, key: str, default: Any = None) -> Any:
        return self._edge.properties.get(key, self._ts, self._cmp, default)

    def properties(self) -> Dict[str, Any]:
        return self._edge.properties.items_at(self._ts, self._cmp)


class VertexView:
    """A read-only vertex as seen by a snapshot."""

    __slots__ = ("_vertex", "_ts", "_cmp", "_edges", "prog_state")

    def __init__(self, vertex: Vertex, ts: VectorTimestamp, cmp: Comparator):
        self._vertex = vertex
        self._ts = ts
        self._cmp = cmp
        # Visible-edge cache: the view is bound to one timestamp, so the
        # edges_at scan is the same every time — neighbors/out_degree share
        # one pass.  Safe within a query: programs read a fixed snapshot.
        self._edges: Optional[tuple] = None
        # Per-query mutable state, installed by the node-program executor.
        self.prog_state: Any = None

    @property
    def handle(self) -> str:
        return self._vertex.handle

    def _visible_edges(self) -> tuple:
        if self._edges is None:
            # Inlined LifeSpan.visible_at: this scan runs once per vertex
            # per traversal and the per-edge call chain dominates it.
            ts = self._ts
            cmp = self._cmp
            before = Ordering.BEFORE
            vertex = self._vertex
            visible = []
            for edge in vertex.edges.values():
                span = edge.span
                if cmp(span.created_at, ts) is not before:
                    continue
                deleted = span.deleted_at
                if deleted is not None and cmp(deleted, ts) is before:
                    continue
                visible.append(edge)
            for edge in vertex.archived_edges:
                if edge.visible_at(ts, cmp):
                    visible.append(edge)
            self._edges = tuple(visible)
        return self._edges

    @property
    def neighbors(self) -> List[EdgeView]:
        """Visible out-edges — paper's ``node.neighbors``."""
        return [
            EdgeView(edge, self._ts, self._cmp)
            for edge in self._visible_edges()
        ]

    def out_degree(self) -> int:
        return len(self._visible_edges())

    def get_edge(self, handle: str) -> Optional[EdgeView]:
        edge = self._vertex.visible_edge(handle, self._ts, self._cmp)
        if edge is None:
            return None
        return EdgeView(edge, self._ts, self._cmp)

    def get_property(self, key: str, default: Any = None) -> Any:
        return self._vertex.properties.get(key, self._ts, self._cmp, default)

    def check(self, key: str, value: Any = None) -> bool:
        return self._vertex.properties.check(key, self._ts, self._cmp, value)

    def properties(self) -> Dict[str, Any]:
        return self._vertex.properties.items_at(self._ts, self._cmp)


class SnapshotView:
    """The whole graph at one timestamp."""

    def __init__(
        self,
        graph: MultiVersionGraph,
        ts: VectorTimestamp,
        cmp: Comparator,
        memo_stats=None,
    ):
        self._graph = graph
        self._ts = ts
        # Every visibility check this view (and the vertex/edge views it
        # hands out) performs compares some write timestamp against the
        # one fixed snapshot timestamp; a bounded per-snapshot memo makes
        # the repeats cost one dict lookup.  Safe because comparator
        # decisions never change once made.
        if not isinstance(cmp, MemoizedComparator):
            cmp = MemoizedComparator(cmp, stats=memo_stats)
        self._cmp = cmp

    @property
    def timestamp(self) -> VectorTimestamp:
        return self._ts

    @property
    def memo_hits(self) -> int:
        """Visibility checks answered by the per-snapshot memo."""
        return self._cmp.hits if isinstance(self._cmp, MemoizedComparator) else 0

    def has_vertex(self, handle: str) -> bool:
        return (
            self._graph.visible_vertex(handle, self._ts, self._cmp)
            is not None
        )

    def vertex(self, handle: str) -> VertexView:
        vertex = self._graph.visible_vertex(handle, self._ts, self._cmp)
        if vertex is None:
            raise NoSuchVertex(handle)
        return VertexView(vertex, self._ts, self._cmp)

    def try_vertex(self, handle: str) -> Optional[VertexView]:
        """The view of ``handle``, or None — one visibility check where
        ``has_vertex`` + ``vertex`` would pay two."""
        vertex = self._graph.visible_vertex(handle, self._ts, self._cmp)
        if vertex is None:
            return None
        return VertexView(vertex, self._ts, self._cmp)

    def vertices(self) -> Iterator[VertexView]:
        for vertex in self._graph.vertices():
            if vertex.visible_at(self._ts, self._cmp):
                yield VertexView(vertex, self._ts, self._cmp)

    def edge_count(self) -> int:
        return sum(v.out_degree() for v in self.vertices())

    def vertex_count(self) -> int:
        return sum(1 for _ in self.vertices())
