"""Timestamped property records for the multi-version graph.

Weaver marks every written object with the refinable timestamp of the
writing transaction (section 4.2): a deleted edge is not removed but
tombstoned with the deletion timestamp.  The same applies to named
properties on vertices and edges.  :class:`LifeSpan` is that pair of
timestamps, and :class:`PropertyRecord` one timestamped value of one named
property.  Visibility decisions are delegated to a comparison callable so
the same records work under raw vector-clock order (in unit tests) and
under full refinable order (inside shard servers).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..core.vclock import Ordering, VectorTimestamp

Comparator = Callable[[VectorTimestamp, VectorTimestamp], Ordering]


def vclock_compare(a: VectorTimestamp, b: VectorTimestamp) -> Ordering:
    """Default comparator: plain vector-clock order.

    Sufficient whenever all writes came through one gatekeeper (totally
    ordered by construction); shard servers substitute their
    :meth:`~repro.core.ordering.RefinableOrdering.compare`.
    """
    return a.compare(b)


class MemoizedComparator:
    """A bounded memo over a comparator, for repeated visibility checks.

    A snapshot view resolves the same (write-ts, read-ts) pair once per
    property record it walks; since comparator outcomes are stable
    (vector-clock comparisons are pure and oracle decisions irreversible),
    the repeat resolutions collapse to one dict lookup.  The memo is
    bounded and simply resets when full — it is a cache, never an
    authority.
    """

    __slots__ = ("_cmp", "_memo", "_limit", "_stats", "hits")

    def __init__(
        self,
        cmp: Comparator,
        limit: int = 8192,
        stats: Optional[Any] = None,
    ):
        self._cmp = cmp
        self._memo: Dict[Any, Ordering] = {}
        self._limit = limit
        # Optional OrderingStats-like sink with a snapshot_memo_hits field.
        self._stats = stats
        self.hits = 0

    @property
    def wrapped(self) -> Comparator:
        return self._cmp

    def __len__(self) -> int:
        return len(self._memo)

    def __call__(self, a: VectorTimestamp, b: VectorTimestamp) -> Ordering:
        # _id is the precomputed identity behind the ``id`` property;
        # this is the hottest read path, so skip the descriptor.
        key = (a._id, b._id)
        found = self._memo.get(key)
        if found is not None:
            self.hits += 1
            if self._stats is not None:
                self._stats.snapshot_memo_hits += 1
            return found
        result = self._cmp(a, b)
        if len(self._memo) >= self._limit:
            self._memo.clear()
        self._memo[key] = result
        return result


class LifeSpan:
    """The [created, deleted) timestamp interval of one graph object."""

    __slots__ = ("created_at", "deleted_at")

    def __init__(self, created_at: VectorTimestamp):
        self.created_at = created_at
        self.deleted_at: Optional[VectorTimestamp] = None

    @property
    def is_deleted(self) -> bool:
        return self.deleted_at is not None

    def delete(self, ts: VectorTimestamp) -> None:
        if self.deleted_at is not None:
            raise ValueError("object already deleted")
        self.deleted_at = ts

    def visible_at(self, ts: VectorTimestamp, cmp: Comparator) -> bool:
        """True iff the object exists in the snapshot at ``ts``.

        An object is visible when its creation happened before the
        snapshot and its deletion (if any) did not: exactly the filtering
        rule node-program execution applies in section 4.1.
        """
        if cmp(self.created_at, ts) is not Ordering.BEFORE:
            return False
        if self.deleted_at is None:
            return True
        return cmp(self.deleted_at, ts) is not Ordering.BEFORE

    def dead_before(self, ts: VectorTimestamp, cmp: Comparator) -> bool:
        """True iff deleted strictly before ``ts`` (GC eligibility)."""
        return (
            self.deleted_at is not None
            and cmp(self.deleted_at, ts) is Ordering.BEFORE
        )


class PropertyRecord:
    """One timestamped value of a named property."""

    __slots__ = ("key", "value", "span")

    def __init__(self, key: str, value: Any, created_at: VectorTimestamp):
        self.key = key
        self.value = value
        self.span = LifeSpan(created_at)

    def visible_at(self, ts: VectorTimestamp, cmp: Comparator) -> bool:
        return self.span.visible_at(ts, cmp)


class PropertyBag:
    """All versions of all named properties of one vertex or edge.

    Assigning a property closes the live record of the same key (if any)
    and appends a fresh one, so point-in-time reads can recover any past
    value.
    """

    def __init__(self) -> None:
        self._records: Dict[str, List[PropertyRecord]] = {}

    def assign(self, key: str, value: Any, ts: VectorTimestamp) -> None:
        records = self._records.setdefault(key, [])
        if records and not records[-1].span.is_deleted:
            records[-1].span.delete(ts)
        records.append(PropertyRecord(key, value, ts))

    def remove(self, key: str, ts: VectorTimestamp) -> bool:
        """Tombstone the live record of ``key``; False if none was live."""
        records = self._records.get(key)
        if not records or records[-1].span.is_deleted:
            return False
        records[-1].span.delete(ts)
        return True

    def get(
        self,
        key: str,
        ts: VectorTimestamp,
        cmp: Comparator,
        default: Any = None,
    ) -> Any:
        """Value of ``key`` visible at ``ts``; newest qualifying record."""
        for record in reversed(self._records.get(key, ())):
            if record.visible_at(ts, cmp):
                return record.value
        return default

    def has(self, key: str, ts: VectorTimestamp, cmp: Comparator) -> bool:
        sentinel = object()
        return self.get(key, ts, cmp, default=sentinel) is not sentinel

    def check(
        self,
        key: str,
        ts: VectorTimestamp,
        cmp: Comparator,
        value: Any = None,
    ) -> bool:
        """The paper's ``edge.check(prop)``: property present (and equal to
        ``value`` when given) at the snapshot."""
        sentinel = object()
        found = self.get(key, ts, cmp, default=sentinel)
        if found is sentinel:
            return False
        return True if value is None else found == value

    def items_at(self, ts: VectorTimestamp, cmp: Comparator) -> Dict[str, Any]:
        """All visible key -> value pairs at ``ts``."""
        visible: Dict[str, Any] = {}
        for key, records in self._records.items():
            for record in reversed(records):
                if record.visible_at(ts, cmp):
                    visible[key] = record.value
                    break
        return visible

    def collect_below(self, ts: VectorTimestamp, cmp: Comparator) -> int:
        """Drop records dead before ``ts``; returns the number dropped."""
        dropped = 0
        for key in list(self._records):
            records = self._records[key]
            kept = [r for r in records if not r.span.dead_before(ts, cmp)]
            dropped += len(records) - len(kept)
            if kept:
                self._records[key] = kept
            else:
                del self._records[key]
        return dropped

    def version_count(self) -> int:
        return sum(len(records) for records in self._records.values())
