"""Vertices and edges of the multi-version property graph.

A graph partition (section 3.2) consists of a set of vertices, all
outgoing edges rooted at those vertices, and their attributes — so edges
live inside their source vertex here too.  Both element types carry a
:class:`~repro.graph.properties.LifeSpan` and a property bag; deletion is
tombstoning, never physical removal (until garbage collection).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from ..core.vclock import VectorTimestamp
from .properties import Comparator, LifeSpan, PropertyBag


class Edge:
    """A directed edge, stored at its source vertex."""

    __slots__ = ("handle", "src", "dst", "span", "properties")

    def __init__(
        self,
        handle: str,
        src: str,
        dst: str,
        created_at: VectorTimestamp,
    ):
        self.handle = handle
        self.src = src
        self.dst = dst
        self.span = LifeSpan(created_at)
        self.properties = PropertyBag()

    def visible_at(self, ts: VectorTimestamp, cmp: Comparator) -> bool:
        return self.span.visible_at(ts, cmp)

    def __repr__(self) -> str:
        return f"Edge({self.handle!r}, {self.src!r} -> {self.dst!r})"


class Vertex:
    """A vertex plus its out-edges and attributes.

    ``edges`` maps edge handle to :class:`Edge` and keeps tombstoned edges
    until GC; snapshot reads filter by visibility.
    """

    __slots__ = ("handle", "span", "properties", "edges", "archived_edges")

    def __init__(self, handle: str, created_at: VectorTimestamp):
        self.handle = handle
        self.span = LifeSpan(created_at)
        self.properties = PropertyBag()
        self.edges: Dict[str, Edge] = {}
        # Earlier incarnations of re-created edge handles: a deleted
        # edge's record moves here when its handle is reused, keeping
        # historical snapshots between its creation and deletion intact.
        self.archived_edges: list = []

    def visible_at(self, ts: VectorTimestamp, cmp: Comparator) -> bool:
        return self.span.visible_at(ts, cmp)

    def add_edge(self, edge: Edge) -> None:
        if edge.src != self.handle:
            raise ValueError(
                f"edge {edge.handle!r} is rooted at {edge.src!r}, "
                f"not {self.handle!r}"
            )
        existing = self.edges.get(edge.handle)
        if existing is not None:
            if not existing.span.is_deleted:
                raise ValueError(f"duplicate edge handle {edge.handle!r}")
            self.archived_edges.append(existing)
        self.edges[edge.handle] = edge

    def get_edge(self, handle: str) -> Optional[Edge]:
        return self.edges.get(handle)

    def visible_edge(
        self, handle: str, ts: VectorTimestamp, cmp: Comparator
    ) -> Optional[Edge]:
        """The incarnation of edge ``handle`` visible at ``ts``, if any."""
        current = self.edges.get(handle)
        if current is not None and current.visible_at(ts, cmp):
            return current
        for edge in reversed(self.archived_edges):
            if edge.handle == handle and edge.visible_at(ts, cmp):
                return edge
        return None

    def edges_at(
        self, ts: VectorTimestamp, cmp: Comparator
    ) -> Iterator[Edge]:
        """Out-edges visible in the snapshot at ``ts``."""
        for edge in self.edges.values():
            if edge.visible_at(ts, cmp):
                yield edge
        for edge in self.archived_edges:
            if edge.visible_at(ts, cmp):
                yield edge

    def collect_archived_below(
        self, watermark: VectorTimestamp, cmp: Comparator
    ) -> int:
        """Drop archived edge incarnations dead before the watermark."""
        kept = [
            e for e in self.archived_edges
            if not e.span.dead_before(watermark, cmp)
        ]
        reclaimed = sum(
            1 + e.properties.version_count()
            for e in self.archived_edges
            if e.span.dead_before(watermark, cmp)
        )
        self.archived_edges = kept
        return reclaimed

    def version_count(self) -> int:
        """Number of versioned records held (for GC accounting)."""
        total = 1 + self.properties.version_count()
        for edge in self.edges.values():
            total += 1 + edge.properties.version_count()
        for edge in self.archived_edges:
            total += 1 + edge.properties.version_count()
        return total

    def __repr__(self) -> str:
        return f"Vertex({self.handle!r}, {len(self.edges)} edges)"
