"""The multi-version property graph and partitioning algorithms."""

from .properties import (
    Comparator,
    LifeSpan,
    PropertyBag,
    PropertyRecord,
    vclock_compare,
)
from .elements import Edge, Vertex
from .mvgraph import EdgeView, MultiVersionGraph, SnapshotView, VertexView
from .partition import (
    HashPartitioner,
    LdgPartitioner,
    balance,
    edge_cut,
    restream,
)

__all__ = [
    "Comparator",
    "LifeSpan",
    "PropertyBag",
    "PropertyRecord",
    "vclock_compare",
    "Edge",
    "Vertex",
    "EdgeView",
    "MultiVersionGraph",
    "SnapshotView",
    "VertexView",
    "HashPartitioner",
    "LdgPartitioner",
    "balance",
    "edge_cut",
    "restream",
]
