"""Streaming graph partitioning (section 4.6).

Weaver dynamically colocates vertices with the majority of their
neighbours using streaming partitioning algorithms [58, 48] to cut
communication during traversals.  The paper's evaluation disables this
mechanism, so here it is an extension with its own ablation benchmark
(A2): we implement the two families those citations describe —

* :class:`HashPartitioner` — the baseline: placement by stable hash.
* :class:`LdgPartitioner` — linear deterministic greedy [58]: place each
  arriving vertex with the partition holding most of its already-placed
  neighbours, weighted by a capacity penalty.
* :func:`restream` — restreaming refinement [48]: re-run LDG over the
  stream using the previous pass's full assignment for neighbour counts.

All partitioners consume a stream of ``(vertex, neighbours)`` pairs, so
they can run online as vertices arrive.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Sequence, Tuple

Stream = Iterable[Tuple[str, Sequence[str]]]


def _stable_hash(value: str) -> int:
    """A deterministic hash, stable across processes (unlike ``hash``)."""
    return int.from_bytes(
        hashlib.blake2b(value.encode(), digest_size=8).digest(), "big"
    )


class HashPartitioner:
    """Placement by hash: perfectly balanced, locality-blind."""

    def __init__(self, num_partitions: int):
        if num_partitions <= 0:
            raise ValueError("need at least one partition")
        self.num_partitions = num_partitions

    def assign(self, vertex: str, neighbors: Sequence[str] = ()) -> int:
        return _stable_hash(vertex) % self.num_partitions

    def partition(self, stream: Stream) -> Dict[str, int]:
        return {vertex: self.assign(vertex) for vertex, _ in stream}


class LdgPartitioner:
    """Linear deterministic greedy streaming partitioning.

    Scoring follows Stanton & Kliot: partition ``p`` scores
    ``|neighbors already on p| * (1 - load(p) / capacity)``; ties break
    toward the least-loaded partition, keeping balance tight.
    """

    def __init__(
        self,
        num_partitions: int,
        capacity: float = 0.0,
    ):
        if num_partitions <= 0:
            raise ValueError("need at least one partition")
        self.num_partitions = num_partitions
        self._capacity = capacity  # 0 means "derive from stream length"
        self._loads = [0] * num_partitions
        self._assignment: Dict[str, int] = {}

    @property
    def assignment(self) -> Dict[str, int]:
        return dict(self._assignment)

    @property
    def loads(self) -> List[int]:
        return list(self._loads)

    def assign(
        self,
        vertex: str,
        neighbors: Sequence[str],
        prior: Dict[str, int] = None,
    ) -> int:
        """Place one vertex given its neighbours.

        ``prior`` supplies neighbour placements from a previous pass
        (restreaming); the current pass's own placements always count too.
        """
        placed = prior or {}
        counts = [0] * self.num_partitions
        for nbr in neighbors:
            target = self._assignment.get(nbr)
            if target is None:
                target = placed.get(nbr)
            if target is not None:
                counts[target] += 1
        capacity = self._capacity or (
            max(1.0, (len(self._assignment) + 1) * 1.1 / self.num_partitions)
        )
        best, best_score = 0, float("-inf")
        for p in range(self.num_partitions):
            penalty = 1.0 - self._loads[p] / capacity
            score = counts[p] * penalty
            if score > best_score or (
                score == best_score and self._loads[p] < self._loads[best]
            ):
                best, best_score = p, score
        self._assignment[vertex] = best
        self._loads[best] += 1
        return best

    def partition(
        self, stream: Stream, prior: Dict[str, int] = None
    ) -> Dict[str, int]:
        stream = list(stream)
        if not self._capacity:
            self._capacity = max(1.0, len(stream) * 1.1 / self.num_partitions)
        for vertex, neighbors in stream:
            self.assign(vertex, neighbors, prior)
        return self.assignment


def restream(
    stream: Stream,
    num_partitions: int,
    passes: int = 3,
    capacity: float = 0.0,
) -> Dict[str, int]:
    """Restreaming LDG [48]: repeated passes converge to a lower edge cut.

    Each pass sees the previous pass's complete assignment, so neighbour
    information is no longer limited to vertices earlier in the stream.
    """
    if passes < 1:
        raise ValueError("need at least one pass")
    stream = list(stream)
    assignment: Dict[str, int] = {}
    for _ in range(passes):
        partitioner = LdgPartitioner(num_partitions, capacity)
        assignment = partitioner.partition(stream, prior=assignment)
    return assignment


def edge_cut(
    assignment: Dict[str, int], edges: Iterable[Tuple[str, str]]
) -> Tuple[int, int]:
    """Count cut edges: returns (cut, total) over edges with both ends
    placed."""
    cut = 0
    total = 0
    for src, dst in edges:
        if src in assignment and dst in assignment:
            total += 1
            if assignment[src] != assignment[dst]:
                cut += 1
    return cut, total


def balance(assignment: Dict[str, int], num_partitions: int) -> float:
    """Max partition load over mean load (1.0 is perfect balance)."""
    if not assignment:
        return 1.0
    loads = [0] * num_partitions
    for partition in assignment.values():
        loads[partition] += 1
    mean = len(assignment) / num_partitions
    return max(loads) / mean if mean else 1.0
