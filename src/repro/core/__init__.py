"""Refinable timestamps: the paper's core contribution.

Exports the vector-clock layer (proactive ordering), the timeline oracle
(reactive ordering), the combined façade, and the gatekeeper server.
"""

from .vclock import Ordering, VectorClock, VectorTimestamp
from .oracle import (
    EventDependencyGraph,
    OracleStats,
    ReplicatedOracle,
    TimelineOracle,
)
from .ordering import (
    OrderingCache,
    OrderingStats,
    RefinableOrdering,
    make_oracle,
)
from .gatekeeper import Gatekeeper, GatekeeperStats

__all__ = [
    "Ordering",
    "VectorClock",
    "VectorTimestamp",
    "EventDependencyGraph",
    "OracleStats",
    "ReplicatedOracle",
    "TimelineOracle",
    "OrderingCache",
    "OrderingStats",
    "RefinableOrdering",
    "make_oracle",
    "Gatekeeper",
    "GatekeeperStats",
]
