"""Refinable ordering façade: vector clocks first, oracle when needed.

This module packages the paper's two-stage ordering decision behind one
call.  Shard servers use a :class:`RefinableOrdering` instance to compare
any two transaction timestamps; the comparison is resolved proactively by
the vector clocks when possible and escalated to the timeline oracle only
for concurrent pairs (section 3.1).  The façade also keeps the statistics
that the coordination-overhead experiment (Fig 14) reports: how many
comparisons were settled proactively vs. reactively.

Because oracle decisions are irreversible and monotonic, shard servers may
cache them locally (section 4.2); :class:`OrderingCache` implements that
cache and the ablation benchmark A3 measures the oracle traffic it saves.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .oracle import ReplicatedOracle, TimelineOracle
from .vclock import Ordering, VectorTimestamp

PairKey = Tuple[Tuple[int, int, int], Tuple[int, int, int]]


class OrderingCache:
    """A shard-local cache of oracle decisions.

    Safe because the oracle never revokes a decision.  Entries are keyed on
    the (smaller, larger) event-id pair so both query directions hit.
    """

    def __init__(self) -> None:
        self._decisions: Dict[PairKey, Ordering] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._decisions)

    @staticmethod
    def _key(a: VectorTimestamp, b: VectorTimestamp) -> Tuple[PairKey, bool]:
        if a.id <= b.id:
            return (a.id, b.id), False
        return (b.id, a.id), True

    def get(
        self, a: VectorTimestamp, b: VectorTimestamp
    ) -> Optional[Ordering]:
        key, flipped = self._key(a, b)
        found = self._decisions.get(key)
        if found is None:
            self.misses += 1
            return None
        self.hits += 1
        return found.flipped() if flipped else found

    def put(
        self, a: VectorTimestamp, b: VectorTimestamp, order: Ordering
    ) -> None:
        key, flipped = self._key(a, b)
        self._decisions[key] = order.flipped() if flipped else order

    @staticmethod
    def _dominated(event_id: Tuple[int, int, int],
                   watermark: VectorTimestamp) -> bool:
        """True when the watermark's vector covers the event.

        Every live comparison against such an event is settled by vector
        clocks alone, so its cached decisions can never be consulted again.
        """
        epoch, issuer, counter = event_id
        if epoch != watermark.epoch:
            return epoch < watermark.epoch
        return counter <= watermark.clocks[issuer]

    def evict_below(self, watermark: VectorTimestamp) -> int:
        """Drop cached decisions whose both events the watermark dominates.

        Comparing epochs alone would keep every same-epoch entry alive
        forever; the per-issuer counter check bounds the cache within an
        epoch too.
        """
        victims = [
            key for key in self._decisions
            if self._dominated(key[0], watermark)
            and self._dominated(key[1], watermark)
        ]
        for key in victims:
            del self._decisions[key]
        return len(victims)

    def clear(self) -> None:
        self._decisions.clear()


class OrderingStats:
    """Counts of how comparisons were resolved (and avoided entirely)."""

    def __init__(self) -> None:
        self.proactive = 0   # settled by vector clocks alone
        self.cached = 0      # settled by a cached oracle decision
        self.reactive = 0    # required an oracle round trip
        # Fast-path counters: comparisons that never reached compare() at
        # all.  Snapshot memo hits are visibility checks answered by a
        # per-snapshot dict; heap_compares_saved counts the pairwise
        # comparisons the tournament scheduler reused instead of redoing.
        self.snapshot_memo_hits = 0
        self.heap_compares_saved = 0
        # Geo deadline ordering (Tiga-style): concurrent pairs whose
        # deadlines are separated by more than the clock-skew bound are
        # decided without the oracle (deadline_fastpath); deadline pairs
        # within the bound fall back to the cache/oracle with the
        # deadline total order as the tiebreak (deadline_fallback).
        self.deadline_fastpath = 0
        self.deadline_fallback = 0

    @property
    def total(self) -> int:
        return self.proactive + self.cached + self.reactive

    @property
    def reactive_fraction(self) -> float:
        return self.reactive / self.total if self.total else 0.0

    def reset(self) -> None:
        self.proactive = 0
        self.cached = 0
        self.reactive = 0
        self.snapshot_memo_hits = 0
        self.heap_compares_saved = 0
        self.deadline_fastpath = 0
        self.deadline_fallback = 0


class RefinableOrdering:
    """Order any two timestamps, cheaply when possible.

    One instance per shard server.  ``oracle`` may be a plain
    :class:`TimelineOracle` or a :class:`ReplicatedOracle`; both expose the
    same ``order``/``query_order`` interface.
    """

    def __init__(
        self,
        oracle,
        use_cache: bool = True,
        skew_bound: Optional[float] = None,
    ):
        self._oracle = oracle
        self._cache: Optional[OrderingCache] = (
            OrderingCache() if use_cache else None
        )
        self.stats = OrderingStats()
        # Clock-skew bound of the geo deadline fast path.  None disables
        # it; when set, concurrent deadline-carrying pairs separated by
        # more than the bound order on deadlines alone, and every closer
        # deadline pair is decided with the deadline total order as the
        # preference, so oracle answers can never contradict a fast-path
        # answer (all decisions embed in one total order).
        self.skew_bound = skew_bound

    @property
    def oracle(self):
        return self._oracle

    @property
    def cache(self) -> Optional[OrderingCache]:
        return self._cache

    @staticmethod
    def _deadline_key(ts: VectorTimestamp):
        """Total order on deadline-carrying stamps: deadline first, then
        the unique stamp identity as a deterministic tiebreak."""
        return (ts.deadline,) + ts.id

    def compare(
        self,
        a: VectorTimestamp,
        b: VectorTimestamp,
        prefer: Ordering = Ordering.BEFORE,
    ) -> Ordering:
        """Resolve the order of (a, b), escalating only when required.

        ``prefer`` is forwarded to the oracle and applies only when the
        pair is concurrent *and* no prior commitment exists: it encodes
        arrival order (for transaction pairs) or the node-programs-after-
        writes rule of section 4.1.  When both stamps carry deadlines and
        the fast path is enabled, the deadline total order replaces the
        arrival preference — a requirement, not an optimization, since
        mixing arrival-preference decisions with deadline decisions could
        build contradictory oracle chains.
        """
        vc = a.compare(b)
        if vc is not Ordering.CONCURRENT:
            self.stats.proactive += 1
            return vc
        if (
            self.skew_bound is not None
            and a.deadline is not None
            and b.deadline is not None
        ):
            gap = a.deadline - b.deadline
            if gap > self.skew_bound or -gap > self.skew_bound:
                self.stats.deadline_fastpath += 1
                return Ordering.BEFORE if gap < 0 else Ordering.AFTER
            self.stats.deadline_fallback += 1
            prefer = (
                Ordering.BEFORE
                if self._deadline_key(a) < self._deadline_key(b)
                else Ordering.AFTER
            )
        if self._cache is not None:
            cached = self._cache.get(a, b)
            if cached is not None:
                self.stats.cached += 1
                return cached
        decided = self._oracle.order(a, b, prefer)
        self.stats.reactive += 1
        if self._cache is not None:
            self._cache.put(a, b, decided)
        return decided

    def earliest(self, timestamps, prefer: Ordering = Ordering.BEFORE):
        """Pick the earliest of a non-empty collection of timestamps.

        Used by shard event loops to select the next transaction to apply
        across per-gatekeeper queues (Fig 6).  Concurrent pairs are settled
        (and thereby committed) via :meth:`compare`.
        """
        timestamps = list(timestamps)
        if not timestamps:
            raise ValueError("earliest() of no timestamps")
        best = timestamps[0]
        for candidate in timestamps[1:]:
            if self.compare(candidate, best, prefer) is Ordering.BEFORE:
                best = candidate
        return best


QueueEntry = Optional[Tuple[VectorTimestamp, int]]


class EarliestScheduler:
    """A tournament tree selecting the earliest queue head under
    refinable order.

    Shard event loops pick the next transaction across one priority queue
    per gatekeeper (Fig 6).  Doing that with ``min()`` costs G-1 refinable
    comparisons per pop even though a pop replaces exactly one head; the
    tournament re-plays only the bracket path of queues whose head
    actually changed — ceil(log2 G) comparisons — and reuses every other
    bracket.

    Reuse is safe because every pairwise outcome is *stable*: vector-clock
    comparisons are pure functions, oracle decisions are irreversible and
    monotonic, and a timestamp's arrival number (the tiebreak preference
    for concurrent pairs) never changes once assigned.

    Entries are ``(timestamp, arrival)`` pairs, or ``None`` for an empty
    queue (an empty queue loses every bracket, which lets
    ``flush_all``-style drains share the tree).
    """

    def __init__(self, ordering: "RefinableOrdering", num_queues: int):
        if num_queues < 1:
            raise ValueError("need at least one queue")
        self._ordering = ordering
        self._n = num_queues
        size = 1
        while size < num_queues:
            size <<= 1
        self._size = size
        # _tree[node] = queue index winning that bracket (None = empty);
        # leaves live at [size, 2*size), internal nodes at [1, size).
        self._tree: List[Optional[int]] = [None] * (2 * size)
        self._entries: List[QueueEntry] = [None] * num_queues
        self._keys: List[Optional[Tuple]] = [None] * num_queues
        self._compares = 0

    def select(self, entries: Sequence[QueueEntry]) -> Optional[int]:
        """The queue index holding the earliest head, or None if all empty.

        ``entries[i]`` is ``(head timestamp, arrival order)`` for queue
        ``i``, or ``None`` when that queue is empty.  Only queues whose
        entry changed since the previous call are re-seeded into the
        bracket.
        """
        if len(entries) != self._n:
            raise ValueError(
                f"expected {self._n} queue entries, got {len(entries)}"
            )
        dirty = []
        for i, entry in enumerate(entries):
            key = None if entry is None else (entry[0].id, entry[1])
            if key != self._keys[i]:
                self._keys[i] = key
                self._entries[i] = entry
                dirty.append(i)
        if self._size == 1:
            return 0 if self._entries[0] is not None else None
        if dirty:
            self._replay(dirty)
        live = sum(1 for e in self._entries if e is not None)
        if live > 1:
            naive = live - 1  # what min() over the heads would cost
            if naive > self._compares:
                self._ordering.stats.heap_compares_saved += (
                    naive - self._compares
                )
        self._compares = 0
        return self._tree[1]

    def _replay(self, dirty: List[int]) -> None:
        # All leaves sit at one depth, so climbing level-synchronized
        # recomputes each affected bracket exactly once.
        nodes = {(self._size + i) >> 1 for i in dirty}
        while nodes:
            parents = set()
            for node in nodes:
                left = self._winner_of(2 * node)
                right = self._winner_of(2 * node + 1)
                if left is None:
                    winner = right
                elif right is None:
                    winner = left
                else:
                    winner = left if self._beats(left, right) else right
                self._tree[node] = winner
                if node > 1:
                    parents.add(node >> 1)
            nodes = parents

    def _winner_of(self, node: int) -> Optional[int]:
        if node >= self._size:
            queue = node - self._size
            if queue < self._n and self._entries[queue] is not None:
                return queue
            return None
        return self._tree[node]

    def _beats(self, i: int, j: int) -> bool:
        """True when queue ``i``'s head is ordered before queue ``j``'s.

        Concurrent heads are committed in arrival order (section 3.4's
        oracle preference), exactly as the linear scan this replaces did.
        """
        ts_i, arrival_i = self._entries[i]
        ts_j, arrival_j = self._entries[j]
        prefer = (
            Ordering.BEFORE if arrival_i <= arrival_j else Ordering.AFTER
        )
        self._compares += 1
        result = self._ordering.compare(ts_i, ts_j, prefer=prefer)
        if result is Ordering.BEFORE:
            return True
        if result is Ordering.AFTER:
            return False
        return i < j  # EQUAL cannot cross queues; keep min()'s tiebreak


def make_oracle(chain_length: int = 1):
    """Build a timeline oracle; a chain when ``chain_length`` > 1."""
    if chain_length <= 1:
        return TimelineOracle()
    return ReplicatedOracle(chain_length)
