"""Refinable ordering façade: vector clocks first, oracle when needed.

This module packages the paper's two-stage ordering decision behind one
call.  Shard servers use a :class:`RefinableOrdering` instance to compare
any two transaction timestamps; the comparison is resolved proactively by
the vector clocks when possible and escalated to the timeline oracle only
for concurrent pairs (section 3.1).  The façade also keeps the statistics
that the coordination-overhead experiment (Fig 14) reports: how many
comparisons were settled proactively vs. reactively.

Because oracle decisions are irreversible and monotonic, shard servers may
cache them locally (section 4.2); :class:`OrderingCache` implements that
cache and the ablation benchmark A3 measures the oracle traffic it saves.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .oracle import ReplicatedOracle, TimelineOracle
from .vclock import Ordering, VectorTimestamp

PairKey = Tuple[Tuple[int, int, int], Tuple[int, int, int]]


class OrderingCache:
    """A shard-local cache of oracle decisions.

    Safe because the oracle never revokes a decision.  Entries are keyed on
    the (smaller, larger) event-id pair so both query directions hit.
    """

    def __init__(self) -> None:
        self._decisions: Dict[PairKey, Ordering] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._decisions)

    @staticmethod
    def _key(a: VectorTimestamp, b: VectorTimestamp) -> Tuple[PairKey, bool]:
        if a.id <= b.id:
            return (a.id, b.id), False
        return (b.id, a.id), True

    def get(
        self, a: VectorTimestamp, b: VectorTimestamp
    ) -> Optional[Ordering]:
        key, flipped = self._key(a, b)
        found = self._decisions.get(key)
        if found is None:
            self.misses += 1
            return None
        self.hits += 1
        return found.flipped() if flipped else found

    def put(
        self, a: VectorTimestamp, b: VectorTimestamp, order: Ordering
    ) -> None:
        key, flipped = self._key(a, b)
        self._decisions[key] = order.flipped() if flipped else order

    def evict_below(self, watermark: VectorTimestamp) -> int:
        """Drop cached decisions whose both events predate the watermark."""
        victims = [
            key for key in self._decisions
            if key[0][0] < watermark.epoch and key[1][0] < watermark.epoch
        ]
        for key in victims:
            del self._decisions[key]
        return len(victims)

    def clear(self) -> None:
        self._decisions.clear()


class OrderingStats:
    """Counts of how comparisons were resolved."""

    def __init__(self) -> None:
        self.proactive = 0   # settled by vector clocks alone
        self.cached = 0      # settled by a cached oracle decision
        self.reactive = 0    # required an oracle round trip

    @property
    def total(self) -> int:
        return self.proactive + self.cached + self.reactive

    @property
    def reactive_fraction(self) -> float:
        return self.reactive / self.total if self.total else 0.0

    def reset(self) -> None:
        self.proactive = 0
        self.cached = 0
        self.reactive = 0


class RefinableOrdering:
    """Order any two timestamps, cheaply when possible.

    One instance per shard server.  ``oracle`` may be a plain
    :class:`TimelineOracle` or a :class:`ReplicatedOracle`; both expose the
    same ``order``/``query_order`` interface.
    """

    def __init__(
        self,
        oracle,
        use_cache: bool = True,
    ):
        self._oracle = oracle
        self._cache: Optional[OrderingCache] = (
            OrderingCache() if use_cache else None
        )
        self.stats = OrderingStats()

    @property
    def oracle(self):
        return self._oracle

    @property
    def cache(self) -> Optional[OrderingCache]:
        return self._cache

    def compare(
        self,
        a: VectorTimestamp,
        b: VectorTimestamp,
        prefer: Ordering = Ordering.BEFORE,
    ) -> Ordering:
        """Resolve the order of (a, b), escalating only when required.

        ``prefer`` is forwarded to the oracle and applies only when the
        pair is concurrent *and* no prior commitment exists: it encodes
        arrival order (for transaction pairs) or the node-programs-after-
        writes rule of section 4.1.
        """
        vc = a.compare(b)
        if vc is not Ordering.CONCURRENT:
            self.stats.proactive += 1
            return vc
        if self._cache is not None:
            cached = self._cache.get(a, b)
            if cached is not None:
                self.stats.cached += 1
                return cached
        decided = self._oracle.order(a, b, prefer)
        self.stats.reactive += 1
        if self._cache is not None:
            self._cache.put(a, b, decided)
        return decided

    def earliest(self, timestamps, prefer: Ordering = Ordering.BEFORE):
        """Pick the earliest of a non-empty collection of timestamps.

        Used by shard event loops to select the next transaction to apply
        across per-gatekeeper queues (Fig 6).  Concurrent pairs are settled
        (and thereby committed) via :meth:`compare`.
        """
        timestamps = list(timestamps)
        if not timestamps:
            raise ValueError("earliest() of no timestamps")
        best = timestamps[0]
        for candidate in timestamps[1:]:
            if self.compare(candidate, best, prefer) is Ordering.BEFORE:
                best = candidate
        return best


def make_oracle(chain_length: int = 1):
    """Build a timeline oracle; a chain when ``chain_length`` > 1."""
    if chain_length <= 1:
        return TimelineOracle()
    return ReplicatedOracle(chain_length)
