"""Vector timestamps: the proactive half of refinable timestamps.

Each gatekeeper maintains a vector clock with one counter per gatekeeper
(section 3.3 of the paper).  On every client request the gatekeeper
increments its own counter and snapshots the vector into an immutable
:class:`VectorTimestamp` attached to the transaction.  Gatekeepers announce
their clocks to each other every ``tau`` microseconds, which establishes
happens-before edges between most pairs of timestamps.

Timestamps additionally carry an ``epoch`` (section 4.3): the cluster
manager bumps the epoch on failover, and any timestamp of a lower epoch
happens-before any timestamp of a higher epoch.  This keeps ordering
monotonic when a recovering gatekeeper restarts its counter at zero.

A timestamp also records the issuing gatekeeper, which makes every
timestamp unique (a gatekeeper never reuses a value of its own counter
within an epoch) and therefore usable as a transaction identity, exactly
as the paper's timeline oracle requires.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Optional, Tuple


class Ordering(enum.Enum):
    """Result of comparing two vector timestamps."""

    BEFORE = "before"          # a happens-before b
    AFTER = "after"            # b happens-before a
    CONCURRENT = "concurrent"  # neither dominates: needs the oracle
    EQUAL = "equal"            # same timestamp object (same issuer + clock)

    def flipped(self) -> "Ordering":
        """The ordering of (b, a) given this ordering of (a, b)."""
        if self is Ordering.BEFORE:
            return Ordering.AFTER
        if self is Ordering.AFTER:
            return Ordering.BEFORE
        return self


@dataclass(frozen=True)
class VectorTimestamp:
    """An immutable vector timestamp issued by one gatekeeper.

    Attributes:
        epoch: cluster configuration epoch; bumped by the cluster manager
            on failure detection (section 4.3).
        clocks: one counter per gatekeeper, a snapshot of the issuer's
            vector clock at issue time.
        issuer: index of the gatekeeper that issued this timestamp.
        deadline: optional synchronized-clock future deadline (geo
            deployments only, Tiga-style).  Excluded from identity,
            equality, and hashing: a deadline annotates a timestamp for
            the ordering fast path, it never distinguishes two stamps.
    """

    epoch: int
    clocks: Tuple[int, ...]
    issuer: int
    deadline: Optional[float] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not 0 <= self.issuer < len(self.clocks):
            raise ValueError(
                f"issuer {self.issuer} out of range for "
                f"{len(self.clocks)} gatekeepers"
            )
        # Timestamps are immutable and compared/hashed on every ordering
        # decision, visibility check, and queue pop: precompute the id
        # triple and its hash once instead of rebuilding them per call.
        identity = (self.epoch, self.issuer, self.clocks[self.issuer])
        object.__setattr__(self, "_id", identity)
        object.__setattr__(self, "_hash", hash(identity))

    def __hash__(self) -> int:
        return self._hash

    def __len__(self) -> int:
        return len(self.clocks)

    @classmethod
    def ancient(cls, num_gatekeepers: int) -> "VectorTimestamp":
        """A timestamp ordered before every real one (epoch -1).

        Used when state of unknown age re-enters memory — demand paging
        and shard recovery — so it is visible to every current reader.
        """
        return cls(-1, (0,) * num_gatekeepers, 0)

    @property
    def local_clock(self) -> int:
        """The issuer's own counter value — unique per issuer per epoch."""
        return self.clocks[self.issuer]

    @property
    def id(self) -> Tuple[int, int, int]:
        """A hashable identity: (epoch, issuer, issuer's counter).

        Two timestamps with equal ``id`` are the same timestamp; the paper
        uses the full vector as a transaction identifier and this triple is
        the minimal unique projection of it.
        """
        return self._id

    def compare(self, other: "VectorTimestamp") -> Ordering:
        """Compare under the happens-before partial order.

        A lower epoch always happens-before a higher epoch.  Within an
        epoch, ``a`` happens-before ``b`` iff ``a``'s vector is dominated
        componentwise by ``b``'s (and they differ).  Vectors that do not
        dominate each other are concurrent and need the timeline oracle.

        Same-issuer pairs take a scalar fast path: a gatekeeper's own
        counter strictly increases per issued stamp while its view of
        every peer only grows, so within an epoch one gatekeeper's stamps
        form a domination chain and the issuer's counter alone decides.
        """
        if len(self.clocks) != len(other.clocks):
            raise ValueError(
                "cannot compare timestamps of different cluster sizes: "
                f"{len(self.clocks)} vs {len(other.clocks)}"
            )
        if self.epoch != other.epoch:
            return (
                Ordering.BEFORE if self.epoch < other.epoch else Ordering.AFTER
            )
        if self.issuer == other.issuer:
            mine = self.clocks[self.issuer]
            theirs = other.clocks[other.issuer]
            if mine == theirs:
                return Ordering.EQUAL
            return Ordering.BEFORE if mine < theirs else Ordering.AFTER
        some_less = False
        some_greater = False
        for mine, theirs in zip(self.clocks, other.clocks):
            if mine < theirs:
                if some_greater:
                    return Ordering.CONCURRENT
                some_less = True
            elif mine > theirs:
                if some_less:
                    return Ordering.CONCURRENT
                some_greater = True
        if some_less:
            return Ordering.BEFORE
        if some_greater:
            return Ordering.AFTER
        # Identical vectors issued by different gatekeepers: possible
        # right after an announce; they are concurrent events.
        return Ordering.CONCURRENT

    def happens_before(self, other: "VectorTimestamp") -> bool:
        return self.compare(other) is Ordering.BEFORE

    def concurrent_with(self, other: "VectorTimestamp") -> bool:
        return self.compare(other) is Ordering.CONCURRENT

    def __str__(self) -> str:
        vec = ",".join(str(c) for c in self.clocks)
        return f"<e{self.epoch}:gk{self.issuer}:({vec})>"


class VectorClock:
    """The mutable vector clock owned by one gatekeeper.

    Supports the three operations the protocol needs: ``tick`` (issue a
    timestamp for a new transaction), ``observe`` (fold in a peer's
    announce message), and ``announce`` (snapshot the vector for peers).
    """

    def __init__(self, num_gatekeepers: int, index: int, epoch: int = 0):
        if num_gatekeepers <= 0:
            raise ValueError("need at least one gatekeeper")
        if not 0 <= index < num_gatekeepers:
            raise ValueError(f"index {index} out of range")
        self._clocks = [0] * num_gatekeepers
        self._index = index
        self._epoch = epoch

    @property
    def index(self) -> int:
        return self._index

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def clocks(self) -> Tuple[int, ...]:
        return tuple(self._clocks)

    def tick(self, deadline: Optional[float] = None) -> VectorTimestamp:
        """Increment the local counter and return a fresh timestamp.

        ``deadline`` attaches a synchronized-clock future deadline to the
        stamp (geo deployments); single-region callers omit it.
        """
        self._clocks[self._index] += 1
        return VectorTimestamp(
            self._epoch, tuple(self._clocks), self._index, deadline
        )

    def peek(self) -> VectorTimestamp:
        """Current state as a timestamp, without consuming a counter value.

        Used for read-only watermarks; never attach a peeked timestamp to
        a transaction, since it is not unique.
        """
        return VectorTimestamp(self._epoch, tuple(self._clocks), self._index)

    def observe(self, announced: Iterable[int]) -> None:
        """Fold a peer's announced vector in, componentwise maximum."""
        announced = list(announced)
        if len(announced) != len(self._clocks):
            raise ValueError("announce vector has wrong length")
        for i, value in enumerate(announced):
            if i == self._index:
                # Never let a peer advance our own counter: only local
                # ticks do that, preserving uniqueness of issued stamps.
                continue
            if value > self._clocks[i]:
                self._clocks[i] = value

    def announce(self) -> Tuple[int, ...]:
        """Snapshot to broadcast to peers."""
        return tuple(self._clocks)

    def advance_epoch(self, new_epoch: int) -> None:
        """Move to a new configuration epoch, restarting all counters.

        The cluster manager guarantees via a barrier that every server has
        entered ``new_epoch`` before any timestamp from it is issued, so
        restarting at zero is safe: epoch comparison dominates.
        """
        if new_epoch <= self._epoch:
            raise ValueError(
                f"epoch must move forward: {new_epoch} <= {self._epoch}"
            )
        self._epoch = new_epoch
        self._clocks = [0] * len(self._clocks)
