"""Seed-equivalent reference reachability for the timeline oracle.

:class:`ReferenceEventDependencyGraph` preserves the original, unindexed
``reaches()``: a BFS whose every expansion scans **all** events with an
explicit out-edge and runs a full vector compare per candidate.  It
exists for two reasons:

* the differential test (``tests/test_oracle_differential.py``) checks
  the indexed implementation against it on randomized event DAGs,
  including across ``remove_event``/``collect_below``;
* the ordering microbenchmark and perf guard
  (``benchmarks/test_micro_ordering.py``, ``benchmarks/test_perf_guard.py``)
  use it as the before-side of the before/after measurement.

Both graphs answer every ``reaches`` query identically; only the work
they do differs.
"""

from __future__ import annotations

from collections import deque
from typing import Set

from .oracle import EventDependencyGraph, EventId, TimelineOracle
from .vclock import VectorTimestamp


class ReferenceEventDependencyGraph(EventDependencyGraph):
    """The seed's scan-all BFS, kept verbatim as the oracle's reference.

    Inherits all bookkeeping (the skyline index is maintained but unused
    here, which keeps ``add_order``/``remove_event`` identical) and
    overrides only the reachability search.
    """

    def reaches(self, a: VectorTimestamp, b: VectorTimestamp) -> bool:
        if a.id not in self._events or b.id not in self._events:
            return False
        if a.happens_before(b):
            return True
        seen: Set[EventId] = {a.id}
        frontier = deque([a.id])
        while frontier:
            current = self._events[frontier.popleft()]
            if current.happens_before(b):
                return True
            for succ_id in self._succ[current.id]:
                if succ_id == b.id:
                    return True
                if succ_id not in seen:
                    seen.add(succ_id)
                    frontier.append(succ_id)
            # Implied successors: every event with an explicit out-edge,
            # scanned in full — the O(events) cost the skyline index
            # replaces.
            for other_id in self._has_out:
                if other_id in seen:
                    continue
                if current.happens_before(self._events[other_id]):
                    seen.add(other_id)
                    frontier.append(other_id)
        return False


def reference_oracle() -> TimelineOracle:
    """A timeline oracle running on the unindexed reference graph."""
    return TimelineOracle(graph=ReferenceEventDependencyGraph())
