"""Gatekeeper servers: proactive timestamping and commit (sections 3.3, 4.2).

A gatekeeper does three things:

1. **Stamp**: increment its own component of a vector clock per client
   request and attach the snapshot to the transaction.
2. **Announce**: every ``tau`` seconds broadcast its vector to peers, which
   fold it in componentwise; announces create the happens-before edges
   that let most transaction pairs order proactively.
3. **Commit**: execute the client's buffered writes on the backing store,
   enforcing the timestamp-monotonicity rule of section 4.2 — if another
   gatekeeper already committed a later-stamped write to any vertex this
   transaction touches, and our stamp does not dominate it, the commit
   aborts and the client retries (picking up a fresh, higher stamp).

The gatekeeper is transport-agnostic: the database layer wires announces
through the simulated network (and schedules them every τ), or exchanges
them synchronously in direct mode.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from ..errors import TransactionAborted
from ..store.kvstore import StoreTransaction, TransactionalStore
from .vclock import Ordering, VectorClock, VectorTimestamp

_LAST_UPDATE_PREFIX = "__lastup__:"


class DeadlineStamper:
    """Issues Tiga-style future deadlines from a synchronized clock.

    In a geo deployment every stamp a region issues carries a deadline
    ``now + horizon`` where ``horizon`` is the worst-case one-way latency
    from this region to any other: by the time the deadline arrives, the
    stamped message has reached every region.  Two invariants make the
    deadline order a safe refinement target:

    * **Lamport monotonicity** — deadlines strictly increase along every
      happens-before chain.  Locally each stamper's deadlines strictly
      increase; remotely, announce messages piggyback the announcer's
      latest deadline, which the receiver folds in via :meth:`observe`
      before stamping anything causally after it.
    * **Commit-chain consistency** — a commit's deadline exceeds the
      deadline of every touched vertex's previous update (the ``floor``
      argument, read under OCC from the last-update stamps), so deadline
      order never contradicts same-vertex store commit order.

    One stamper serves one region; it is owned by the deployment and
    survives gatekeeper crash/recovery, so a recovered gatekeeper cannot
    reissue stale deadlines.
    """

    # Minimal separation between consecutive deadlines from one stamper
    # (and above any floor).  Far below the clock-skew bound, so forced
    # separations never fabricate a fast-path decision on their own.
    EPSILON = 1e-9

    def __init__(self, clock_fn: Callable[[], float], horizon: float):
        if horizon < 0:
            raise ValueError("deadline horizon must be non-negative")
        self._clock_fn = clock_fn
        self.horizon = horizon
        self._last = float("-inf")
        self.issued = 0

    @property
    def last(self) -> float:
        """Latest deadline issued or observed (announce piggyback)."""
        return self._last

    def observe(self, deadline: Optional[float]) -> None:
        """Fold in a deadline learned from a peer (Lamport receive)."""
        if deadline is not None and deadline > self._last:
            self._last = deadline

    def next_deadline(self, floor: Optional[float] = None) -> float:
        """A fresh deadline above the clock horizon, the last deadline
        seen, and ``floor`` (the touched vertices' previous deadlines)."""
        deadline = self._clock_fn() + self.horizon
        if deadline <= self._last:
            deadline = self._last + self.EPSILON
        if floor is not None and deadline <= floor:
            deadline = floor + self.EPSILON
        self._last = deadline
        self.issued += 1
        return deadline


class GatekeeperStats:
    """Counters for the coordination-overhead experiment (Fig 14)."""

    def __init__(self) -> None:
        self.timestamps_issued = 0
        self.announces_sent = 0
        self.announces_received = 0
        self.nops_sent = 0
        self.commits = 0
        self.aborts = 0

    def reset(self) -> None:
        self.__init__()


class Gatekeeper:
    """One member of the timeline coordinator's gatekeeper bank."""

    def __init__(
        self,
        index: int,
        num_gatekeepers: int,
        store: Optional[TransactionalStore] = None,
        epoch: int = 0,
    ):
        self.index = index
        self.clock = VectorClock(num_gatekeepers, index, epoch)
        self.store = store
        self.stats = GatekeeperStats()
        # Optional repro.obs.Tracer: traced commits emit
        # gatekeeper.stamp / store.commit / gatekeeper.abort spans.
        self.tracer = None
        # Optional DeadlineStamper (geo deployments): when attached,
        # every stamp this gatekeeper issues carries a future deadline.
        self.deadline_stamper: Optional[DeadlineStamper] = None

    def _emit(self, trace_id, kind: str, **attrs) -> None:
        if self.tracer is not None and trace_id is not None:
            self.tracer.emit(trace_id, kind, node=self.name, **attrs)

    @property
    def name(self) -> str:
        return f"gk{self.index}"

    # -- timestamping ------------------------------------------------------

    def issue_timestamp(
        self, deadline_floor: Optional[float] = None
    ) -> VectorTimestamp:
        """Stamp one transaction or node program.

        ``deadline_floor`` (geo only) is the highest deadline among the
        previous updates of the vertices this stamp will commit to; the
        fresh deadline must clear it so deadline order agrees with
        same-vertex commit order.
        """
        self.stats.timestamps_issued += 1
        if self.deadline_stamper is not None:
            return self.clock.tick(
                self.deadline_stamper.next_deadline(deadline_floor)
            )
        return self.clock.tick()

    def current_watermark(self) -> VectorTimestamp:
        """A non-unique snapshot of the clock (GC watermarks only)."""
        return self.clock.peek()

    # -- announce protocol ---------------------------------------------

    def make_announce(self):
        """Snapshot to broadcast to the other gatekeepers."""
        self.stats.announces_sent += 1
        return self.clock.announce()

    def receive_announce(self, vector: Iterable[int]) -> None:
        """Fold a peer's announce into the local clock."""
        self.stats.announces_received += 1
        self.clock.observe(vector)

    # -- NOP heartbeats (section 4.2) ------------------------------------

    def make_nop(self) -> VectorTimestamp:
        """A NOP transaction keeping shard queues non-empty under light
        load, bounding node-program delay."""
        self.stats.nops_sent += 1
        if self.deadline_stamper is not None:
            # NOPs carry deadlines too: every geo stamp lives in the one
            # total deadline order, or mixed oracle chains through NOPs
            # could contradict fast-path decisions.
            return self.clock.tick(self.deadline_stamper.next_deadline())
        return self.clock.tick()

    # -- commit path (section 4.2) --------------------------------------

    def commit(
        self,
        apply_writes: Callable[[StoreTransaction, VectorTimestamp], None],
        touched_vertices: Iterable[str],
        timestamp: Optional[VectorTimestamp] = None,
        trace_id: Optional[int] = None,
    ) -> VectorTimestamp:
        """Execute a transaction on the backing store.

        ``apply_writes(tx, ts)`` performs the buffered operations against
        a store transaction (validity checks included: e.g. deleting a
        deleted vertex raises there).  ``touched_vertices`` is the set of
        vertex handles the transaction writes; each carries a last-update
        timestamp in the store used for the monotonicity check.

        Raises :class:`TransactionAborted` on OCC conflict or timestamp
        inversion; the client retries, obtaining a fresh higher stamp.
        """
        if self.store is None:
            raise RuntimeError("gatekeeper has no backing store attached")
        touched = list(touched_vertices)
        tx = self.store.begin()
        ts = timestamp
        try:
            # Read the last-update stamps before stamping: in geo mode
            # the fresh stamp's deadline must clear the touched vertices'
            # previous deadlines, and OCC on these reads guarantees a
            # concurrent committer to the same vertex conflicts here.
            lasts = [
                (vertex, tx.get(_LAST_UPDATE_PREFIX + vertex))
                for vertex in touched
            ]
            if ts is None:
                ts = self.issue_timestamp(_deadline_floor(lasts))
            self._emit(trace_id, "gatekeeper.stamp", ts=ts, gk=self.index)
            for vertex, last in lasts:
                if last is not None and ts.compare(last) is Ordering.BEFORE:
                    raise TransactionAborted(
                        f"timestamp inversion on {vertex!r}"
                    )
            apply_writes(tx, ts)
            for vertex in touched:
                tx.put(_LAST_UPDATE_PREFIX + vertex, ts)
            version = tx.commit()
        except Exception:
            # Every failure path — OCC conflict, timestamp inversion, or
            # a validity error raised by apply_writes — must release the
            # store transaction and count as an abort; a commit that
            # raised has already closed it.
            self.stats.aborts += 1
            if tx.is_open:
                tx.abort()
            if ts is not None:
                self._emit(
                    trace_id, "gatekeeper.abort", ts=ts, gk=self.index
                )
            raise
        self.stats.commits += 1
        # The store's commit version is the global serialization anchor
        # (section 4.2); the span carries it so the referee can key the
        # commit record without relying on span delivery order.
        self._emit(
            trace_id, "store.commit", ts=ts, gk=self.index,
            commit_seq=version,
        )
        return ts

    def commit_prepared(
        self,
        store_tx: StoreTransaction,
        touched_vertices: Iterable[str],
        trace_id: Optional[int] = None,
    ) -> VectorTimestamp:
        """Commit an already-populated store transaction.

        The interactive client path: the client applied its buffered
        operations to ``store_tx`` as it built the transaction (getting
        read-your-writes and early validity errors); the gatekeeper now
        stamps it, runs the last-update monotonicity check *through the
        same transaction* (so the check is atomic with the commit), writes
        the new last-update stamps, and commits.
        """
        touched = list(touched_vertices)
        ts = None
        try:
            # Same read-before-stamp order as :meth:`commit`: the stamp's
            # deadline (geo mode) must clear the previous updates of every
            # touched vertex, and these OCC reads make concurrent
            # committers to a shared vertex conflict at commit time.
            lasts = [
                (vertex, store_tx.get(_LAST_UPDATE_PREFIX + vertex))
                for vertex in touched
            ]
            ts = self.issue_timestamp(_deadline_floor(lasts))
            self._emit(trace_id, "gatekeeper.stamp", ts=ts, gk=self.index)
            for vertex, last in lasts:
                if last is not None and ts.compare(last) is Ordering.BEFORE:
                    raise TransactionAborted(
                        f"timestamp inversion on {vertex!r}"
                    )
            for vertex in touched:
                store_tx.put(_LAST_UPDATE_PREFIX + vertex, ts)
            version = store_tx.commit()
        except Exception:
            self.stats.aborts += 1
            if store_tx.is_open:
                store_tx.abort()
            if ts is not None:
                self._emit(
                    trace_id, "gatekeeper.abort", ts=ts, gk=self.index
                )
            raise
        self.stats.commits += 1
        self._emit(
            trace_id, "store.commit", ts=ts, gk=self.index,
            commit_seq=version,
        )
        return ts

    # -- failover (section 4.3) -----------------------------------------

    def advance_epoch(self, new_epoch: int) -> None:
        """Enter a new configuration epoch (clock restarts at zero)."""
        self.clock.advance_epoch(new_epoch)


def _deadline_floor(lasts) -> Optional[float]:
    """Highest deadline among a commit's touched last-update stamps."""
    floor = None
    for _, last in lasts:
        if last is None:
            continue
        deadline = getattr(last, "deadline", None)
        if deadline is not None and (floor is None or deadline > floor):
            floor = deadline
    return floor


def sync_announce_all(gatekeepers) -> None:
    """Synchronously exchange announces among all gatekeepers.

    The direct-mode equivalent of one τ round: after this call every
    gatekeeper's vector dominates every timestamp issued before the call,
    so all earlier stamps order proactively against all later ones.
    """
    snapshots = [(gk.index, gk.make_announce()) for gk in gatekeepers]
    for gk in gatekeepers:
        for index, vector in snapshots:
            if index != gk.index:
                gk.receive_announce(vector)
