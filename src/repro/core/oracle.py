"""The timeline oracle: reactive, fine-grained event ordering (section 3.4).

The oracle keeps a dependency graph whose vertices are *events* (one per
transaction or node program, identified by its unique vector timestamp) and
whose directed edges are happens-before commitments.  It answers two kinds
of requests from shard servers:

* ``query_order(a, b)`` — return a pre-established order, if one exists.
  Pre-established orders include explicit commitments, their transitive
  closure, and edges implied by the vector clocks themselves (the paper's
  example: having committed <0,1> < <1,0>, a query for (<0,1>, <2,0>) is
  answered from <0,1> < <1,0> < <2,0>).
* ``order(a, b, prefer)`` — return the established order or, if none
  exists, commit a new one.  Ordering decisions are irreversible and
  monotonic: once made they hold for every subsequent query from every
  shard.  The oracle refuses any request that would create a cycle.

The production system chain-replicates the oracle for fault tolerance
(Kronos [20]); :class:`ReplicatedOracle` models that: updates enter at the
head and flow down the chain, reads may be served by any replica, and the
chain survives the loss of any proper subset of replicas.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Optional, Set, Tuple

from ..errors import CycleError, OrderingError
from .vclock import Ordering, VectorTimestamp

EventId = Tuple[int, int, int]


class EventDependencyGraph:
    """A DAG of events with reachability that honors vector-clock edges.

    Explicit edges are commitments made by :meth:`add_order`.  In addition,
    for any two registered events ``x`` and ``y`` with ``x`` vector-clock-
    before ``y``, an implicit edge ``x -> y`` exists.  Reachability (and
    therefore cycle detection) runs over the union of both edge sets, so a
    commitment can never contradict either an earlier commitment or the
    vector clocks.
    """

    def __init__(self) -> None:
        self._events: Dict[EventId, VectorTimestamp] = {}
        self._succ: Dict[EventId, Set[EventId]] = {}
        self._pred: Dict[EventId, Set[EventId]] = {}
        # Events with at least one explicit out-edge.  Reachability only
        # needs to expand *implied* (vector-clock) hops into these:
        # consecutive implied hops collapse into one (happens-before is
        # transitive), so an implied hop that is not the final step must
        # land on an event that continues explicitly.
        self._has_out: Set[EventId] = set()

    def __len__(self) -> int:
        return len(self._events)

    def __contains__(self, ts: VectorTimestamp) -> bool:
        return ts.id in self._events

    @property
    def events(self) -> Iterable[VectorTimestamp]:
        return self._events.values()

    def add_event(self, ts: VectorTimestamp) -> bool:
        """Register an event; returns False if it already existed."""
        if ts.id in self._events:
            return False
        self._events[ts.id] = ts
        self._succ[ts.id] = set()
        self._pred[ts.id] = set()
        return True

    def has_edge(self, a: VectorTimestamp, b: VectorTimestamp) -> bool:
        return b.id in self._succ.get(a.id, ())

    def reaches(self, a: VectorTimestamp, b: VectorTimestamp) -> bool:
        """True iff a path a -> ... -> b exists over explicit or implied
        edges."""
        if a.id not in self._events or b.id not in self._events:
            return False
        if a.happens_before(b):
            return True
        seen: Set[EventId] = {a.id}
        frontier = deque([a.id])
        while frontier:
            current = self._events[frontier.popleft()]
            if current.happens_before(b):
                return True
            for succ_id in self._succ[current.id]:
                if succ_id == b.id:
                    return True
                if succ_id not in seen:
                    seen.add(succ_id)
                    frontier.append(succ_id)
            # Implied successors: only events that continue explicitly
            # matter (an implied hop ending the path was handled by the
            # happens_before(b) check above; implied-then-implied
            # collapses into one implied hop by transitivity).
            for other_id in self._has_out:
                if other_id in seen:
                    continue
                if current.happens_before(self._events[other_id]):
                    seen.add(other_id)
                    frontier.append(other_id)
        return False

    def add_order(self, a: VectorTimestamp, b: VectorTimestamp) -> None:
        """Commit a happens-before edge a -> b, refusing cycles."""
        if a.id == b.id:
            raise CycleError(f"cannot order an event before itself: {a}")
        for ts in (a, b):
            if ts.id not in self._events:
                raise OrderingError(f"unknown event: {ts}")
        if self.reaches(b, a):
            raise CycleError(f"ordering {a} before {b} would create a cycle")
        self._succ[a.id].add(b.id)
        self._pred[b.id].add(a.id)
        self._has_out.add(a.id)

    def remove_event(self, ts: VectorTimestamp) -> None:
        """Garbage-collect one event, bridging its edges transitively.

        Removing an interior event must not lose commitments between its
        neighbours, so every (pred, succ) pair is connected directly.
        """
        if ts.id not in self._events:
            return
        preds = self._pred.pop(ts.id)
        succs = self._succ.pop(ts.id)
        del self._events[ts.id]
        self._has_out.discard(ts.id)
        for p in preds:
            self._succ[p].discard(ts.id)
            for s in succs:
                if p != s:
                    self._succ[p].add(s)
                    self._pred[s].add(p)
            if self._succ[p]:
                self._has_out.add(p)
            else:
                self._has_out.discard(p)
        for s in succs:
            self._pred[s].discard(ts.id)


class OracleStats:
    """Message and decision counters, used by the Fig 14 experiment."""

    def __init__(self) -> None:
        self.queries = 0
        self.decisions = 0
        self.events_created = 0
        self.events_collected = 0

    @property
    def messages(self) -> int:
        """Total request messages the oracle served."""
        return self.queries + self.decisions + self.events_created

    def reset(self) -> None:
        self.queries = 0
        self.decisions = 0
        self.events_created = 0
        self.events_collected = 0


class TimelineOracle:
    """The event-ordering state machine (one replica).

    All mutating entry points are deterministic functions of their inputs
    plus current state, which is what lets :class:`ReplicatedOracle` keep
    replicas identical by forwarding the same operations down a chain.
    """

    def __init__(self) -> None:
        self._graph = EventDependencyGraph()
        self.stats = OracleStats()

    @property
    def graph(self) -> EventDependencyGraph:
        return self._graph

    @property
    def num_events(self) -> int:
        return len(self._graph)

    def create_event(self, ts: VectorTimestamp) -> None:
        """Register a transaction as an event (idempotent)."""
        if self._graph.add_event(ts):
            self.stats.events_created += 1

    def query_order(
        self, a: VectorTimestamp, b: VectorTimestamp
    ) -> Optional[Ordering]:
        """Return the pre-established order of (a, b), or None.

        Consults vector clocks, explicit commitments, and their combined
        transitive closure.  Never creates new commitments.
        """
        self.stats.queries += 1
        vc = a.compare(b)
        if vc is not Ordering.CONCURRENT:
            return vc
        self._ensure(a)
        self._ensure(b)
        if self._graph.reaches(a, b):
            return Ordering.BEFORE
        if self._graph.reaches(b, a):
            return Ordering.AFTER
        return None

    def order(
        self,
        a: VectorTimestamp,
        b: VectorTimestamp,
        prefer: Ordering = Ordering.BEFORE,
    ) -> Ordering:
        """Return the order of (a, b), establishing one if none exists.

        ``prefer`` is the order committed when the pair is unordered; shard
        servers pass arrival order for transaction pairs, and order node
        programs *after* concurrent committed writes (section 4.1), so that
        node programs never miss completed transactions.
        """
        existing = self.query_order(a, b)
        if existing is not None:
            return existing
        if prefer is Ordering.BEFORE:
            self._graph.add_order(a, b)
        elif prefer is Ordering.AFTER:
            self._graph.add_order(b, a)
        else:
            raise OrderingError(f"cannot prefer {prefer}")
        self.stats.decisions += 1
        return prefer

    def assign_order(self, a: VectorTimestamp, b: VectorTimestamp) -> None:
        """Explicitly commit a happens-before b (the raw Kronos primitive)."""
        self._ensure(a)
        self._ensure(b)
        self._graph.add_order(a, b)
        self.stats.decisions += 1

    def collect_below(self, watermark: VectorTimestamp) -> int:
        """Drop events strictly happens-before the watermark (section 4.5).

        Only events whose order with every live query is already decided by
        vector clocks can go; edges through them are bridged so surviving
        commitments are preserved.  Returns the number collected.
        """
        victims = [
            ts for ts in list(self._graph.events)
            if ts.happens_before(watermark)
        ]
        for ts in victims:
            self._graph.remove_event(ts)
        self.stats.events_collected += len(victims)
        return len(victims)

    def _ensure(self, ts: VectorTimestamp) -> None:
        self._graph.add_event(ts)


class ReplicatedOracle:
    """A chain-replicated timeline oracle (section 3.4, [62]).

    Updates are applied at the head and propagated down the chain; queries
    may be served by any replica (we round-robin to model read scaling).
    ``fail_replica`` removes a replica; the chain keeps working as long as
    one replica survives, because every replica holds the full state
    machine and operations are deterministic.
    """

    def __init__(self, chain_length: int = 3):
        if chain_length < 1:
            raise ValueError("chain needs at least one replica")
        self._replicas = [TimelineOracle() for _ in range(chain_length)]
        self._next_read = 0
        self.update_messages = 0

    @property
    def chain_length(self) -> int:
        return len(self._replicas)

    @property
    def head(self) -> TimelineOracle:
        return self._replicas[0]

    @property
    def tail(self) -> TimelineOracle:
        return self._replicas[-1]

    def _reader(self) -> TimelineOracle:
        replica = self._replicas[self._next_read % len(self._replicas)]
        self._next_read += 1
        return replica

    def _apply_all(self, method: str, *args) -> object:
        result = None
        for replica in self._replicas:
            result = getattr(replica, method)(*args)
            self.update_messages += 1
        return result

    def create_event(self, ts: VectorTimestamp) -> None:
        self._apply_all("create_event", ts)

    def query_order(
        self, a: VectorTimestamp, b: VectorTimestamp
    ) -> Optional[Ordering]:
        # Queries that might *decide* must not race ahead of the chain;
        # pure queries read any replica.  All replicas are kept identical
        # synchronously here, so any replica is safe.
        return self._reader().query_order(a, b)

    def order(
        self,
        a: VectorTimestamp,
        b: VectorTimestamp,
        prefer: Ordering = Ordering.BEFORE,
    ) -> Ordering:
        return self._apply_all("order", a, b, prefer)  # type: ignore[return-value]

    def assign_order(self, a: VectorTimestamp, b: VectorTimestamp) -> None:
        self._apply_all("assign_order", a, b)

    def collect_below(self, watermark: VectorTimestamp) -> int:
        return self._apply_all("collect_below", watermark)  # type: ignore[return-value]

    def fail_replica(self, index: int = 0) -> None:
        """Remove one replica from the chain (crash model)."""
        if len(self._replicas) == 1:
            raise ValueError("cannot fail the last replica")
        del self._replicas[index]
