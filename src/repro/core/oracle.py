"""The timeline oracle: reactive, fine-grained event ordering (section 3.4).

The oracle keeps a dependency graph whose vertices are *events* (one per
transaction or node program, identified by its unique vector timestamp) and
whose directed edges are happens-before commitments.  It answers two kinds
of requests from shard servers:

* ``query_order(a, b)`` — return a pre-established order, if one exists.
  Pre-established orders include explicit commitments, their transitive
  closure, and edges implied by the vector clocks themselves (the paper's
  example: having committed <0,1> < <1,0>, a query for (<0,1>, <2,0>) is
  answered from <0,1> < <1,0> < <2,0>).
* ``order(a, b, prefer)`` — return the established order or, if none
  exists, commit a new one.  Ordering decisions are irreversible and
  monotonic: once made they hold for every subsequent query from every
  shard.  The oracle refuses any request that would create a cycle.

The production system chain-replicates the oracle for fault tolerance
(Kronos [20]); :class:`ReplicatedOracle` models that: updates enter at the
head and flow down the chain, reads may be served by any replica, and the
chain survives the loss of any proper subset of replicas.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections import deque
from itertools import islice
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..errors import CycleError, OrderingError
from .vclock import Ordering, VectorTimestamp

EventId = Tuple[int, int, int]


class OracleStats:
    """Message, decision, and fast-path counters (Fig 14 reports these).

    One client request increments exactly one of ``queries`` /
    ``decisions`` / ``events_created``, so ``messages`` equals the
    client-visible request count — the quantity Fig 14 plots and the
    τ controller feeds on.  (An ``order`` request that finds the pair
    already established counts as a query, not a decision.)
    """

    def __init__(self) -> None:
        self.queries = 0
        self.decisions = 0
        self.events_created = 0
        self.events_collected = 0
        # Reachability fast-path counters: BFS nodes actually expanded,
        # candidate events skipped by the skyline index without a vector
        # compare, and queries answered by the positive-reachability cache.
        self.bfs_expansions = 0
        self.bfs_pruned = 0
        self.reach_cache_hits = 0
        # Cache churn: entries evicted by the bounded-overflow policy,
        # and full clears forced by event GC (see _cache_reachable /
        # remove_event).  Exported so a latency cliff from cache loss is
        # visible in `repro stats` instead of silent.
        self.reach_cache_evictions = 0
        self.reach_cache_clears = 0

    @property
    def messages(self) -> int:
        """Total request messages the oracle served."""
        return self.queries + self.decisions + self.events_created

    def reset(self) -> None:
        self.queries = 0
        self.decisions = 0
        self.events_created = 0
        self.events_collected = 0
        self.bfs_expansions = 0
        self.bfs_pruned = 0
        self.reach_cache_hits = 0
        self.reach_cache_evictions = 0
        self.reach_cache_clears = 0


class EventDependencyGraph:
    """A DAG of events with reachability that honors vector-clock edges.

    Explicit edges are commitments made by :meth:`add_order`.  In addition,
    for any two registered events ``x`` and ``y`` with ``x`` vector-clock-
    before ``y``, an implicit edge ``x -> y`` exists.  Reachability (and
    therefore cycle detection) runs over the union of both edge sets, so a
    commitment can never contradict either an earlier commitment or the
    vector clocks.

    Two structures keep reachability off the O(events) scan the naive
    union would need:

    * a *skyline index* over the events with explicit out-edges, bucketed
      by (epoch, issuer) and sorted by the issuer's counter.  One
      gatekeeper's stamps within an epoch form a domination chain (each
      later stamp dominates every earlier one), so "the implied successors
      of ``current`` in this bucket" is a *suffix* of the bucket, found by
      binary search instead of a full scan;
    * a *positive-reachability cache*.  The DAG only grows and ordering
      decisions are irreversible, so ``reaches(a, b) == True`` stays true
      forever; only :meth:`remove_event` (GC) invalidates it, because a
      collected event may later be re-registered with no memory of its
      old edges.
    """

    _REACH_CACHE_LIMIT = 1 << 16

    def __init__(self, stats: Optional[OracleStats] = None) -> None:
        self.stats = stats if stats is not None else OracleStats()
        self._events: Dict[EventId, VectorTimestamp] = {}
        self._succ: Dict[EventId, Set[EventId]] = {}
        self._pred: Dict[EventId, Set[EventId]] = {}
        # Events with at least one explicit out-edge.  Reachability only
        # needs to expand *implied* (vector-clock) hops into these:
        # consecutive implied hops collapse into one (happens-before is
        # transitive), so an implied hop that is not the final step must
        # land on an event that continues explicitly.
        self._has_out: Set[EventId] = set()
        # Skyline index over _has_out: (epoch, issuer) -> sorted counters.
        self._out_index: Dict[Tuple[int, int], List[int]] = {}
        self._reach_cache: Dict[Tuple[EventId, EventId], bool] = {}

    def __len__(self) -> int:
        return len(self._events)

    def __contains__(self, ts: VectorTimestamp) -> bool:
        return ts.id in self._events

    @property
    def events(self) -> Iterable[VectorTimestamp]:
        return self._events.values()

    def add_event(self, ts: VectorTimestamp) -> bool:
        """Register an event; returns False if it already existed."""
        if ts.id in self._events:
            return False
        self._events[ts.id] = ts
        self._succ[ts.id] = set()
        self._pred[ts.id] = set()
        return True

    def has_edge(self, a: VectorTimestamp, b: VectorTimestamp) -> bool:
        return b.id in self._succ.get(a.id, ())

    # -- skyline index maintenance ------------------------------------

    def _add_out(self, event_id: EventId) -> None:
        if event_id in self._has_out:
            return
        self._has_out.add(event_id)
        insort(
            self._out_index.setdefault(event_id[:2], []), event_id[2]
        )

    def _drop_out(self, event_id: EventId) -> None:
        if event_id not in self._has_out:
            return
        self._has_out.discard(event_id)
        bucket = self._out_index[event_id[:2]]
        bucket.pop(bisect_left(bucket, event_id[2]))
        if not bucket:
            del self._out_index[event_id[:2]]

    def _implied_out_suffix(
        self, current: VectorTimestamp, bucket_key: Tuple[int, int]
    ) -> int:
        """Index of the first event in ``bucket_key``'s counter list that
        ``current`` happens-before.

        Within a bucket the events form a domination chain, so the
        predicate "current happens-before event" is monotone along the
        sorted counters and the boundary is found by bisection.
        """
        epoch, issuer = bucket_key
        counters = self._out_index[bucket_key]
        # Necessary condition: a dominating vector is at least current's
        # value in the bucket issuer's own component.
        lo = bisect_left(counters, current.clocks[issuer])
        hi = len(counters)
        while lo < hi:
            mid = (lo + hi) // 2
            candidate = self._events[(epoch, issuer, counters[mid])]
            if current.happens_before(candidate):
                hi = mid
            else:
                lo = mid + 1
        return lo

    def reaches(self, a: VectorTimestamp, b: VectorTimestamp) -> bool:
        """True iff a path a -> ... -> b exists over explicit or implied
        edges."""
        if a.id not in self._events or b.id not in self._events:
            return False
        if a.happens_before(b):
            return True
        key = (a.id, b.id)
        if key in self._reach_cache:
            self.stats.reach_cache_hits += 1
            return True
        if self._search(a, b):
            self._cache_reachable(key)
            return True
        return False

    @property
    def reach_cache_size(self) -> int:
        return len(self._reach_cache)

    def _cache_reachable(self, key: Tuple[EventId, EventId]) -> None:
        if len(self._reach_cache) >= self._REACH_CACHE_LIMIT:
            # Evict the oldest quarter (dict preserves insertion order)
            # instead of dropping everything: a full clear forced every
            # hot query to re-run its BFS at once, which showed up as a
            # periodic latency cliff at the cache limit.
            evict = self._REACH_CACHE_LIMIT // 4
            for old_key in list(islice(self._reach_cache, evict)):
                del self._reach_cache[old_key]
            self.stats.reach_cache_evictions += evict
        self._reach_cache[key] = True

    def _search(self, a: VectorTimestamp, b: VectorTimestamp) -> bool:
        stats = self.stats
        events = self._events
        seen: Set[EventId] = {a.id}
        frontier = deque([a.id])
        while frontier:
            current = events[frontier.popleft()]
            stats.bfs_expansions += 1
            if current.happens_before(b):
                return True
            for succ_id in self._succ[current.id]:
                if succ_id == b.id:
                    return True
                if succ_id not in seen:
                    seen.add(succ_id)
                    frontier.append(succ_id)
            # Implied successors: only events that continue explicitly
            # matter (an implied hop ending the path was handled by the
            # happens_before(b) check above; implied-then-implied
            # collapses into one implied hop by transitivity).  Each
            # bucket contributes a bisected suffix, not a full scan.
            current_epoch = current.epoch
            for bucket_key, counters in self._out_index.items():
                if bucket_key[0] < current_epoch:
                    stats.bfs_pruned += len(counters)
                    continue
                if bucket_key[0] > current_epoch:
                    # A higher epoch is implied-after in its entirety.
                    start = 0
                else:
                    start = self._implied_out_suffix(current, bucket_key)
                    stats.bfs_pruned += start
                for counter in counters[start:]:
                    other_id = (bucket_key[0], bucket_key[1], counter)
                    if other_id not in seen:
                        seen.add(other_id)
                        frontier.append(other_id)
        return False

    def add_order(self, a: VectorTimestamp, b: VectorTimestamp) -> None:
        """Commit a happens-before edge a -> b, refusing cycles."""
        if a.id == b.id:
            raise CycleError(f"cannot order an event before itself: {a}")
        for ts in (a, b):
            if ts.id not in self._events:
                raise OrderingError(f"unknown event: {ts}")
        if self.reaches(b, a):
            raise CycleError(f"ordering {a} before {b} would create a cycle")
        self._succ[a.id].add(b.id)
        self._pred[b.id].add(a.id)
        self._add_out(a.id)
        self._cache_reachable((a.id, b.id))

    def remove_event(self, ts: VectorTimestamp) -> None:
        """Garbage-collect one event, bridging its edges transitively.

        Removing an interior event must not lose commitments between its
        neighbours, so every (pred, succ) pair is connected directly.
        """
        if ts.id not in self._events:
            return
        preds = self._pred.pop(ts.id)
        succs = self._succ.pop(ts.id)
        del self._events[ts.id]
        self._drop_out(ts.id)
        for p in preds:
            self._succ[p].discard(ts.id)
            for s in succs:
                if p != s:
                    self._succ[p].add(s)
                    self._pred[s].add(p)
            if self._succ[p]:
                self._add_out(p)
            else:
                self._drop_out(p)
        for s in succs:
            self._pred[s].discard(ts.id)
        # A collected event that re-registers later starts with a clean
        # slate, so positive reachability through it must be forgotten.
        if self._reach_cache:
            self._reach_cache.clear()
            self.stats.reach_cache_clears += 1


class TimelineOracle:
    """The event-ordering state machine (one replica).

    All mutating entry points are deterministic functions of their inputs
    plus current state, which is what lets :class:`ReplicatedOracle` keep
    replicas identical by forwarding the same operations down a chain.
    """

    def __init__(self, graph: Optional[EventDependencyGraph] = None) -> None:
        # The graph and the oracle share one stats object, so the graph's
        # reachability fast-path counters surface through ``oracle.stats``.
        self._graph = graph if graph is not None else EventDependencyGraph()
        self.stats = self._graph.stats
        # Optional repro.obs.Tracer; ordering decisions emit
        # ``oracle.decide`` spans (unattributed — one decision orders two
        # transactions; assemble_chain joins them via the a/b event ids).
        self.tracer = None

    @property
    def graph(self) -> EventDependencyGraph:
        return self._graph

    @property
    def num_events(self) -> int:
        return len(self._graph)

    @property
    def reach_cache_size(self) -> int:
        return self._graph.reach_cache_size

    def create_event(self, ts: VectorTimestamp) -> None:
        """Register a transaction as an event (idempotent)."""
        if self._graph.add_event(ts):
            self.stats.events_created += 1

    def established_order(
        self, a: VectorTimestamp, b: VectorTimestamp
    ) -> Optional[Ordering]:
        """The pre-established order of (a, b), or None — no accounting.

        Consults vector clocks, explicit commitments, and their combined
        transitive closure.  Never creates new commitments and never
        bumps request counters; the counting entry points
        (:meth:`query_order`, :meth:`order`) and the replicated chain
        build on this so that one client request is counted exactly
        once, at exactly one replica.
        """
        vc = a.compare(b)
        if vc is not Ordering.CONCURRENT:
            return vc
        self._ensure(a)
        self._ensure(b)
        if self._graph.reaches(a, b):
            return Ordering.BEFORE
        if self._graph.reaches(b, a):
            return Ordering.AFTER
        return None

    def query_order(
        self, a: VectorTimestamp, b: VectorTimestamp
    ) -> Optional[Ordering]:
        """Return the pre-established order of (a, b), or None.

        One client request, one ``queries`` increment.
        """
        self.stats.queries += 1
        return self.established_order(a, b)

    def order(
        self,
        a: VectorTimestamp,
        b: VectorTimestamp,
        prefer: Ordering = Ordering.BEFORE,
    ) -> Ordering:
        """Return the order of (a, b), establishing one if none exists.

        ``prefer`` is the order committed when the pair is unordered; shard
        servers pass arrival order for transaction pairs, and order node
        programs *after* concurrent committed writes (section 4.1), so that
        node programs never miss completed transactions.

        Counts as one request: a query if the pair was already ordered,
        a decision if this call established the order.  (It used to call
        :meth:`query_order` internally, charging every decision as a
        query *and* a decision — Fig 14's oracle-message counts ran ~2x
        the real request rate.)
        """
        existing = self.established_order(a, b)
        if existing is not None:
            self.stats.queries += 1
            return existing
        if prefer is Ordering.BEFORE:
            first, second = a, b
        elif prefer is Ordering.AFTER:
            first, second = b, a
        else:
            raise OrderingError(f"cannot prefer {prefer}")
        self._graph.add_order(first, second)
        self.stats.decisions += 1
        if self.tracer is not None:
            self.tracer.emit(
                None, "oracle.decide", node="oracle",
                a=first.id, b=second.id,
            )
        return prefer

    def assign_order(self, a: VectorTimestamp, b: VectorTimestamp) -> None:
        """Explicitly commit a happens-before b (the raw Kronos primitive)."""
        self._ensure(a)
        self._ensure(b)
        self._graph.add_order(a, b)
        self.stats.decisions += 1
        if self.tracer is not None:
            self.tracer.emit(
                None, "oracle.decide", node="oracle", a=a.id, b=b.id
            )

    def collect_below(self, watermark: VectorTimestamp) -> int:
        """Drop events strictly happens-before the watermark (section 4.5).

        Only events whose order with every live query is already decided by
        vector clocks can go; edges through them are bridged so surviving
        commitments are preserved.  Returns the number collected.
        """
        victims = [
            ts for ts in list(self._graph.events)
            if ts.happens_before(watermark)
        ]
        for ts in victims:
            self._graph.remove_event(ts)
        self.stats.events_collected += len(victims)
        return len(victims)

    def _ensure(self, ts: VectorTimestamp) -> None:
        self._graph.add_event(ts)


class ReplicatedOracle:
    """A chain-replicated timeline oracle (section 3.4, [62]).

    Updates are applied at the head and propagated down the chain; queries
    may be served by any replica (we round-robin to model read scaling).
    ``fail_replica`` removes a replica; the chain keeps working as long as
    one replica survives, because every replica holds the full state
    machine and operations are deterministic.
    """

    def __init__(self, chain_length: int = 3):
        if chain_length < 1:
            raise ValueError("chain needs at least one replica")
        self._replicas = [TimelineOracle() for _ in range(chain_length)]
        self._next_read = 0
        self.update_messages = 0

    @property
    def chain_length(self) -> int:
        return len(self._replicas)

    @property
    def stats(self) -> OracleStats:
        """Client-visible request accounting.

        Counted at the chain head only: one client request is one
        increment, regardless of chain length.  Intra-chain fan-out is
        ``update_messages``.
        """
        return self.head.stats

    @property
    def tracer(self):
        return self.head.tracer

    @tracer.setter
    def tracer(self, tracer) -> None:
        # Only the head emits decision spans — one span per client
        # decision, not one per replica.
        for replica in self._replicas:
            replica.tracer = None
        self.head.tracer = tracer

    @property
    def head(self) -> TimelineOracle:
        return self._replicas[0]

    @property
    def tail(self) -> TimelineOracle:
        return self._replicas[-1]

    def _reader(self) -> TimelineOracle:
        replica = self._replicas[self._next_read % len(self._replicas)]
        self._next_read += 1
        return replica

    def _apply_all(self, method: str, *args) -> object:
        result = None
        for replica in self._replicas:
            result = getattr(replica, method)(*args)
            self.update_messages += 1
        return result

    def create_event(self, ts: VectorTimestamp) -> None:
        self._apply_all("create_event", ts)

    def query_order(
        self, a: VectorTimestamp, b: VectorTimestamp
    ) -> Optional[Ordering]:
        # Queries that might *decide* must not race ahead of the chain;
        # pure queries read any replica.  All replicas are kept identical
        # synchronously here, so any replica is safe.  Accounting happens
        # at the head (one client request, one increment) while the read
        # itself is served by the round-robin replica's non-counting
        # path, so per-replica read load never inflates client-visible
        # counts.
        self.head.stats.queries += 1
        return self._reader().established_order(a, b)

    def order(
        self,
        a: VectorTimestamp,
        b: VectorTimestamp,
        prefer: Ordering = Ordering.BEFORE,
    ) -> Ordering:
        return self._apply_all("order", a, b, prefer)  # type: ignore[return-value]

    def assign_order(self, a: VectorTimestamp, b: VectorTimestamp) -> None:
        self._apply_all("assign_order", a, b)

    def collect_below(self, watermark: VectorTimestamp) -> int:
        return self._apply_all("collect_below", watermark)  # type: ignore[return-value]

    def fail_replica(self, index: int = 0) -> None:
        """Remove one replica from the chain (crash model)."""
        if len(self._replicas) == 1:
            raise ValueError("cannot fail the last replica")
        tracer = self.head.tracer
        del self._replicas[index]
        if index == 0 and tracer is not None:
            # Decision spans follow the head role, not the dead process.
            self.head.tracer = tracer

    def replica(self, index: int) -> TimelineOracle:
        """A stable read replica for region ``index`` (wraps around)."""
        return self._replicas[index % len(self._replicas)]


class RegionStats:
    """Per-region coordination counters (geo deployments).

    ``local_queries`` are ordering requests a region answered from its
    pinned oracle replica — real coordination traffic that is *invisible*
    to the chain head's accounting (``established_order`` never counts).
    ``escalations`` reached the head.  ``oracle_messages`` (exported per
    region as ``region.<r>.oracle_messages``) is their sum, and the
    quantity a per-region tau controller must be fed; feeding it head
    stats alone undercounts by exactly ``local_queries``.
    """

    def __init__(self) -> None:
        self.local_queries = 0
        self.escalations = 0

    @property
    def oracle_messages(self) -> int:
        return self.local_queries + self.escalations

    def reset(self) -> None:
        self.local_queries = 0
        self.escalations = 0


class RegionOracleClient:
    """A region's window onto the timeline oracle.

    Geo deployments give each region's shards one of these instead of the
    raw oracle: pure ordering queries are served by a region-local chain
    replica (cheap — no cross-region hop), and only requests that must
    *establish* a new order escalate to the chain head.  The client keeps
    the region's own request accounting in :class:`RegionStats`, because
    locally-served reads never touch ``head.stats``.
    """

    def __init__(self, oracle, region: int, stats: Optional[RegionStats] = None):
        self._oracle = oracle
        self.region = region
        if hasattr(oracle, "replica"):
            self._replica = oracle.replica(region)
        else:
            self._replica = oracle
        self.stats = stats if stats is not None else RegionStats()

    @property
    def oracle(self):
        """The underlying (global) oracle."""
        return self._oracle

    def query_order(
        self, a: VectorTimestamp, b: VectorTimestamp
    ) -> Optional[Ordering]:
        established = self._replica.established_order(a, b)
        if established is not None:
            self.stats.local_queries += 1
            return established
        self.stats.escalations += 1
        return self._oracle.query_order(a, b)

    def order(
        self,
        a: VectorTimestamp,
        b: VectorTimestamp,
        prefer: Ordering = Ordering.BEFORE,
    ) -> Ordering:
        established = self._replica.established_order(a, b)
        if established is not None:
            self.stats.local_queries += 1
            return established
        self.stats.escalations += 1
        return self._oracle.order(a, b, prefer)

    def create_event(self, ts: VectorTimestamp) -> None:
        self._oracle.create_event(ts)

    def assign_order(self, a: VectorTimestamp, b: VectorTimestamp) -> None:
        self._oracle.assign_order(a, b)

    def collect_below(self, watermark: VectorTimestamp) -> int:
        return self._oracle.collect_below(watermark)
