"""A Python reproduction of Weaver (Dubey et al., VLDB 2016).

Weaver is a distributed, transactional, multi-version property-graph
database whose core contribution is **refinable timestamps**: vector
clocks order most transactions proactively, and a centralized timeline
oracle refines the order of the few concurrent, conflicting ones.

Quickstart::

    from repro import Weaver, WeaverClient, WeaverConfig

    db = Weaver(WeaverConfig(num_gatekeepers=2, num_shards=2))
    client = WeaverClient(db)

    with client.transaction() as tx:
        alice = tx.create_vertex("alice")
        bob = tx.create_vertex("bob")
        tx.create_edge(alice, bob, "follows")

    assert client.reachable("alice", "bob")
"""

from .errors import (
    ClusterError,
    CycleError,
    GarbageCollectedError,
    NoSuchEdge,
    NoSuchVertex,
    OrderingError,
    ProgramError,
    StoreError,
    TransactionAborted,
    TransactionError,
    WeaverError,
)
from .core import (
    Gatekeeper,
    Ordering,
    RefinableOrdering,
    ReplicatedOracle,
    TimelineOracle,
    VectorClock,
    VectorTimestamp,
)
from .db import Transaction, Weaver, WeaverClient, WeaverConfig
from .programs import NodeProgram, ProgramResult, params

__version__ = "1.0.0"

__all__ = [
    "ClusterError",
    "CycleError",
    "GarbageCollectedError",
    "NoSuchEdge",
    "NoSuchVertex",
    "OrderingError",
    "ProgramError",
    "StoreError",
    "TransactionAborted",
    "TransactionError",
    "WeaverError",
    "Gatekeeper",
    "Ordering",
    "RefinableOrdering",
    "ReplicatedOracle",
    "TimelineOracle",
    "VectorClock",
    "VectorTimestamp",
    "Transaction",
    "Weaver",
    "WeaverClient",
    "WeaverConfig",
    "NodeProgram",
    "ProgramResult",
    "params",
    "__version__",
]
