"""The transactional backing store (HyperDex Warp stand-in).

A multi-versioned key-value store with optimistic multi-key transactions,
plus the vertex-to-shard mapping Weaver keeps in it.
"""

from .versioned import VersionedCell
from .kvstore import StoreTransaction, TransactionalStore
from .distributed import DistributedStore, StoreNode
from .mapping import ShardMapping

__all__ = [
    "VersionedCell",
    "StoreTransaction",
    "TransactionalStore",
    "DistributedStore",
    "StoreNode",
    "ShardMapping",
]
