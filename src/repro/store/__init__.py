"""The transactional backing store (HyperDex Warp stand-in).

A multi-versioned key-value store with optimistic multi-key transactions,
plus the vertex-to-shard mapping Weaver keeps in it.
"""

from .versioned import VersionedCell
from .kvstore import (
    META_COMMIT_VERSION,
    StoreStats,
    StoreTransaction,
    TransactionalStore,
)
from .distributed import DistributedStore, StoreNode
from .durable import DurableStore
from .mapping import ShardMapping

__all__ = [
    "VersionedCell",
    "META_COMMIT_VERSION",
    "StoreStats",
    "StoreTransaction",
    "TransactionalStore",
    "DistributedStore",
    "DurableStore",
    "StoreNode",
    "ShardMapping",
]
