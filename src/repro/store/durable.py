"""A durable, larger-than-RAM backing store over SQLite in WAL mode.

This is the reproduction's answer to HyperDex Warp's *durability* half
(section 3.2): the same :class:`~repro.store.kvstore.TransactionalStore`
contract — multi-versioned cells, first-committer-wins OCC, an integer
commit counter — but with the version chains persisted as
``(key, version, value, tombstone)`` rows in a single SQLite database.

Why SQLite/WAL is the right shape here:

* **Write-ahead logging** gives atomic multi-row commits that survive a
  ``kill -9`` of the owning process (``synchronous=NORMAL`` fsyncs the
  WAL at checkpoint boundaries; a torn process leaves a consistent
  database plus a replayable WAL tail).
* **Single-writer / multi-reader** matches the deployment: the client
  process commits, while shard worker processes open their own
  read-only view of the same file to rebuild their partition after a
  crash — no dict snapshot has to be pickled across the fork anymore.
* **The database is the recovery image.**  ``recover_shard`` becomes
  "reopen the file", which is exactly the paper's story of shards
  re-reading their partition out of Warp.

Reads go through an LRU **page cache** of whole per-key version chains
with a configurable byte budget, so the multi-version graph can exceed
RAM: hot chains are served from memory, cold ones are a ``SELECT`` away,
and the cache evicts least-recently-used chains when the budget is hit.

Compaction (``collect_below``) runs the watermark rules in SQL: drop
every record strictly older than the newest record at-or-below the
watermark for its key, then purge lone tombstones with nothing newer.
Open transactions pin their snapshot via the base class's refcounts, so
callers should compact at ``safe_compact_version()``.

Compaction may also run *opportunistically* on a background thread
(:meth:`DurableStore.enable_background_compaction`): instead of paying
the SQL deletes synchronously inside every garbage-collection tick, a
daemon thread compacts at ``safe_compact_version()`` on its own cadence.
The refcounts make this watermark-safe, and a store-wide reentrant lock
serializes the thread against the owning deployment's reads and commits
(one SQLite connection cannot interleave two transactions).
"""

from __future__ import annotations

import bisect
import pickle
import random
import sqlite3
import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Iterator, List, Optional, Set, Tuple

from ..errors import StoreError, TransactionAborted
from .kvstore import META_COMMIT_VERSION, StoreTransaction, TransactionalStore

#: Default page-cache budget: generous for tests, small enough that the
#: paging benchmark can meaningfully oversubscribe it.
DEFAULT_CACHE_BYTES = 8 * 1024 * 1024

#: Fixed per-record overhead charged to the cache on top of the pickled
#: value size (tuple + list-slot + version int, approximately).
_RECORD_OVERHEAD = 64

_SCHEMA = """
CREATE TABLE IF NOT EXISTS records (
    key       TEXT    NOT NULL,
    version   INTEGER NOT NULL,
    value     BLOB,
    tombstone INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (key, version)
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS meta (
    name  TEXT PRIMARY KEY,
    value INTEGER NOT NULL
);
"""

_COUNTER = "commit_version"


class _Record:
    """One decoded row of a cached version chain."""

    __slots__ = ("version", "exists", "value", "nbytes")

    def __init__(self, version: int, exists: bool, value: Any, nbytes: int):
        self.version = version
        self.exists = exists
        self.value = value
        self.nbytes = nbytes


class DurableStore(TransactionalStore):
    """A SQLite-backed drop-in for :class:`TransactionalStore`.

    ``path`` may be ``":memory:"`` for an ephemeral database (useful in
    tests wanting the durable code paths without touching disk).
    ``cache_bytes`` bounds the page cache; 0 disables caching entirely,
    forcing every read through SQL (the worst-case paging regime).
    """

    def __init__(
        self,
        path: str = ":memory:",
        *,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        read_only: bool = False,
        sleep: Optional[Callable[[float], None]] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(sleep=sleep, rng=rng)
        if cache_bytes < 0:
            raise ValueError("cache_bytes must be >= 0")
        self.path = path
        self.cache_bytes = cache_bytes
        self.read_only = read_only
        self._cache: "OrderedDict[str, List[_Record]]" = OrderedDict()
        self._cache_size = 0
        #: Serializes the background compactor against reads/commits:
        #: one connection, one transaction at a time, coherent cache.
        self._lock = threading.RLock()
        self._compactor: Optional[threading.Thread] = None
        self._compactor_stop = threading.Event()
        self._conn = self._open(path, read_only)
        self._commit_version = self._load_counter()

    # -- connection management -----------------------------------------

    @staticmethod
    def _open(path: str, read_only: bool) -> sqlite3.Connection:
        if read_only and path != ":memory:":
            conn = sqlite3.connect(
                f"file:{path}?mode=ro", uri=True, check_same_thread=False
            )
        else:
            conn = sqlite3.connect(
                path, isolation_level=None, check_same_thread=False
            )
        # WAL survives a kill -9 of the writer: the main database plus
        # the log tail replay to the last committed transaction.
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        if not read_only:
            conn.executescript(_SCHEMA)
        return conn

    def _load_counter(self) -> int:
        try:
            row = self._conn.execute(
                "SELECT value FROM meta WHERE name = ?", (_COUNTER,)
            ).fetchone()
        except sqlite3.OperationalError:
            return 0  # read-only open of a not-yet-created database
        return int(row[0]) if row else 0

    def close(self) -> None:
        """Release the SQLite connection (the database stays on disk)."""
        self.disable_background_compaction()
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None  # type: ignore[assignment]

    # -- background compaction -------------------------------------------

    @property
    def background_compaction_active(self) -> bool:
        """True while the opportunistic compactor thread is running —
        GC ticks skip their synchronous ``collect_below`` under it."""
        return self._compactor is not None and self._compactor.is_alive()

    def enable_background_compaction(self, interval: float = 0.05) -> None:
        """Start the opportunistic compactor: a daemon thread that runs
        ``collect_below(safe_compact_version())`` every ``interval``
        seconds.  Open-transaction refcounts bound the version it may
        touch, so concurrent readers never lose a pinned record."""
        if self.read_only:
            raise StoreError("store opened read-only")
        if interval <= 0:
            raise ValueError("interval must be positive")
        if self.background_compaction_active:
            return
        self._compactor_stop.clear()

        def _run() -> None:
            while not self._compactor_stop.wait(interval):
                with self._lock:
                    if self._conn is None:
                        return
                    try:
                        self.collect_below(self.safe_compact_version())
                    except sqlite3.Error:
                        # Transient contention (e.g. another process
                        # holds the write lock): retry next tick.
                        continue
                    self.stats.compaction_background_runs += 1

        self._compactor = threading.Thread(
            target=_run, name="store-compactor", daemon=True
        )
        self._compactor.start()

    def disable_background_compaction(self) -> None:
        """Stop the compactor thread (idempotent; joins briefly)."""
        thread = self._compactor
        if thread is None:
            return
        self._compactor_stop.set()
        thread.join(timeout=10)
        self._compactor = None

    def __enter__(self) -> "DurableStore":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    # -- page cache ------------------------------------------------------

    def _chain(self, key: str) -> List[_Record]:
        """The full version chain for ``key``, via the page cache."""
        chain = self._cache.get(key)
        if chain is not None:
            self.stats.page_cache_hits += 1
            self._cache.move_to_end(key)
            return chain
        self.stats.page_cache_misses += 1
        chain = [
            _Record(
                version,
                not tombstone,
                None if tombstone else pickle.loads(blob),
                (len(blob) if blob is not None else 0)
                + len(key)
                + _RECORD_OVERHEAD,
            )
            for version, blob, tombstone in self._conn.execute(
                "SELECT version, value, tombstone FROM records"
                " WHERE key = ? ORDER BY version",
                (key,),
            )
        ]
        self._admit(key, chain)
        return chain

    def _admit(self, key: str, chain: List[_Record]) -> None:
        if self.cache_bytes <= 0:
            return
        self._cache[key] = chain
        self._cache.move_to_end(key)
        self._cache_size += sum(r.nbytes for r in chain)
        while self._cache_size > self.cache_bytes and len(self._cache) > 1:
            evicted_key, evicted = self._cache.popitem(last=False)
            if evicted_key == key:  # never evict the chain being admitted
                self._cache[key] = evicted
                break
            self._cache_size -= sum(r.nbytes for r in evicted)
            self.stats.page_cache_evictions += 1
        self.stats.page_cache_bytes = self._cache_size

    def _cache_append(self, key: str, record: _Record) -> None:
        chain = self._cache.get(key)
        if chain is None:
            return
        chain.append(record)
        self._cache_size += record.nbytes
        self.stats.page_cache_bytes = self._cache_size

    def _cache_drop(self, key: str) -> None:
        chain = self._cache.pop(key, None)
        if chain is not None:
            self._cache_size -= sum(r.nbytes for r in chain)
            self.stats.page_cache_bytes = self._cache_size

    # -- read path -------------------------------------------------------

    def _read_cell(
        self, key: str, snapshot: Optional[int]
    ) -> Tuple[bool, Any, int]:
        with self._lock:
            chain = self._chain(key)
            if not chain:
                return False, None, 0
            if snapshot is None:
                index = len(chain) - 1
            else:
                versions = [r.version for r in chain]
                index = bisect.bisect_right(versions, snapshot) - 1
                if index < 0:
                    return False, None, 0
            record = chain[index]
            return record.exists, record.value, record.version

    def _latest_version(self, key: str) -> int:
        """Newest version of ``key`` without disturbing the page cache.

        OCC validation only needs the head version; loading whole cold
        chains for it would thrash the cache under memory pressure.
        """
        with self._lock:
            chain = self._cache.get(key)
            if chain is not None:
                return chain[-1].version if chain else 0
            row = self._conn.execute(
                "SELECT MAX(version) FROM records WHERE key = ?", (key,)
            ).fetchone()
            return int(row[0]) if row and row[0] is not None else 0

    def keys(self, prefix: str = "") -> Iterator[str]:
        # Materialized under the lock: lazy cursor iteration would race
        # the background compactor's deletes.
        with self._lock:
            rows = self._conn.execute(
                "SELECT r.key FROM records r JOIN ("
                "  SELECT key, MAX(version) AS head FROM records GROUP BY key"
                ") h ON r.key = h.key AND r.version = h.head"
                " WHERE r.tombstone = 0 ORDER BY r.key"
            ).fetchall()
        for (key,) in rows:
            if prefix and not key.startswith(prefix):
                continue
            yield key

    # -- snapshot pinning (thread-safe overrides) ------------------------

    def begin(self) -> StoreTransaction:
        with self._lock:
            return super().begin()

    def _release_snapshot(self, snapshot: int) -> None:
        with self._lock:
            super()._release_snapshot(snapshot)

    def safe_compact_version(self) -> int:
        with self._lock:
            return super().safe_compact_version()

    # -- commit path -----------------------------------------------------

    def _commit(
        self,
        snapshot: int,
        reads: Dict[str, int],
        writes: Dict[str, Any],
        deletes: Set[str],
    ) -> int:
        if self.read_only:
            raise StoreError("store opened read-only")
        with self._lock:
            # BEGIN IMMEDIATE takes the database write lock up front, so
            # validation and application are one atomic unit even with
            # other processes holding connections to the same file.
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                for key, seen_version in reads.items():
                    if self._latest_version(key) != seen_version:
                        self.aborts += 1
                        raise TransactionAborted(f"read conflict on {key!r}")
                for key in set(writes) | deletes:
                    if self._latest_version(key) > snapshot:
                        self.aborts += 1
                        raise TransactionAborted(f"write conflict on {key!r}")
                version = self._commit_version + 1
                rows = []
                records: List[Tuple[str, _Record]] = []
                for key, value in writes.items():
                    blob = pickle.dumps(value, pickle.HIGHEST_PROTOCOL)
                    rows.append((key, version, blob, 0))
                    records.append(
                        (
                            key,
                            _Record(
                                version,
                                True,
                                value,
                                len(blob) + len(key) + _RECORD_OVERHEAD,
                            ),
                        )
                    )
                for key in deletes:
                    rows.append((key, version, None, 1))
                    records.append(
                        (
                            key,
                            _Record(
                                version, False, None,
                                len(key) + _RECORD_OVERHEAD,
                            ),
                        )
                    )
                self._conn.executemany(
                    "INSERT INTO records (key, version, value, tombstone)"
                    " VALUES (?, ?, ?, ?)",
                    rows,
                )
                self._conn.execute(
                    "INSERT INTO meta (name, value) VALUES (?, ?)"
                    " ON CONFLICT(name) DO UPDATE SET value = excluded.value",
                    (_COUNTER, version),
                )
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            self._commit_version = version
            for key, record in records:
                self._cache_append(key, record)
            self.commits += 1
            return version

    # -- durability / recovery -------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            state: Dict[str, Any] = {
                META_COMMIT_VERSION: self._commit_version
            }
            for key in self.keys():
                exists, value, _ = self._read_cell(key, None)
                if exists:
                    state[key] = value
            return state

    def restore(self, state: Dict[str, Any]) -> None:
        with self._lock:
            head = self._conn.execute(
                "SELECT COUNT(*) FROM records"
            ).fetchone()[0]
            if head:
                raise StoreError("restore requires an empty store")
            state = dict(state)
            resumed = state.pop(META_COMMIT_VERSION, self._commit_version)
            self._commit_version = max(self._commit_version, int(resumed))
            version = self._commit_version + 1
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                self._conn.executemany(
                    "INSERT INTO records (key, version, value, tombstone)"
                    " VALUES (?, ?, ?, 0)",
                    [
                        (
                            key,
                            version,
                            pickle.dumps(v, pickle.HIGHEST_PROTOCOL),
                        )
                        for key, v in state.items()
                    ],
                )
                self._conn.execute(
                    "INSERT INTO meta (name, value) VALUES (?, ?)"
                    " ON CONFLICT(name) DO UPDATE SET value = excluded.value",
                    (_COUNTER, version),
                )
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            self._commit_version = version

    def collect_below(self, version: int) -> int:
        """Watermark compaction, in SQL.

        Two passes: (1) drop records strictly older than the newest
        record at-or-below the watermark for their key — any read at a
        snapshot >= watermark is answered by that newest record or
        something younger, so nothing visible is lost; (2) purge lone
        tombstones at-or-below the watermark with nothing newer — the
        key reads as "missing" either way.
        """
        if self.read_only:
            raise StoreError("store opened read-only")
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                superseded = self._conn.execute(
                    "DELETE FROM records WHERE version < ("
                    "  SELECT MAX(r2.version) FROM records r2"
                    "  WHERE r2.key = records.key AND r2.version <= ?"
                    ")",
                    (version,),
                ).rowcount
                tombstones = self._conn.execute(
                    "DELETE FROM records WHERE tombstone = 1"
                    " AND version <= ?"
                    " AND NOT EXISTS ("
                    "  SELECT 1 FROM records r2"
                    "  WHERE r2.key = records.key"
                    "  AND r2.version > records.version"
                    ")",
                    (version,),
                ).rowcount
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            # Trim cached chains in tandem so the cache stays coherent
            # (and sheds the same bytes the database just reclaimed).
            for key in list(self._cache):
                chain = self._cache[key]
                versions = [r.version for r in chain]
                keep_from = bisect.bisect_right(versions, version) - 1
                if keep_from > 0:
                    freed = sum(r.nbytes for r in chain[:keep_from])
                    del chain[:keep_from]
                    self._cache_size -= freed
                if (
                    len(chain) == 1
                    and not chain[0].exists
                    and chain[0].version <= version
                ):
                    self._cache_drop(key)
                elif not chain:
                    self._cache_drop(key)
            self.stats.page_cache_bytes = self._cache_size
            self.stats.compactions += 1
            self.stats.records_collected += superseded + tombstones
            self.stats.tombstones_purged += tombstones
            return superseded + tombstones
