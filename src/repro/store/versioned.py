"""Versioned cells: the MVCC storage unit of the backing store.

Every key in the backing store maps to a :class:`VersionedCell`, an
append-only list of (version, value) records plus tombstones.  Reads at a
snapshot version see the newest record at or below it; writers append.
Versions are the store's own commit counter (plain integers) — the backing
store is an independent substrate and knows nothing about Weaver's vector
timestamps, exactly as HyperDex Warp knows nothing about them in the
paper.
"""

from __future__ import annotations

import bisect
from typing import Any, List, Optional, Tuple

_TOMBSTONE = object()


class VersionedCell:
    """An append-only version chain for one key."""

    __slots__ = ("_versions", "_values")

    def __init__(self) -> None:
        self._versions: List[int] = []
        self._values: List[Any] = []

    def __len__(self) -> int:
        return len(self._versions)

    @property
    def latest_version(self) -> int:
        """Version of the newest record, 0 when the cell is empty."""
        return self._versions[-1] if self._versions else 0

    def write(self, version: int, value: Any) -> None:
        """Append a record; versions must be strictly increasing."""
        if self._versions and version <= self._versions[-1]:
            raise ValueError(
                f"version must increase: {version} <= {self._versions[-1]}"
            )
        self._versions.append(version)
        self._values.append(value)

    def delete(self, version: int) -> None:
        """Append a tombstone."""
        self.write(version, _TOMBSTONE)

    def read(self, snapshot: Optional[int] = None) -> Tuple[bool, Any, int]:
        """Read at ``snapshot`` (latest when None).

        Returns ``(exists, value, version)``.  ``version`` is the version
        of the record that answered the read (0 when no record qualifies);
        OCC validation compares it against the cell's latest version at
        commit time.
        """
        if not self._versions:
            return False, None, 0
        if snapshot is None:
            index = len(self._versions) - 1
        else:
            index = bisect.bisect_right(self._versions, snapshot) - 1
            if index < 0:
                return False, None, 0
        value = self._values[index]
        version = self._versions[index]
        if value is _TOMBSTONE:
            return False, None, version
        return True, value, version

    def collect_below(self, version: int) -> int:
        """Drop records superseded before ``version``; keep the newest at
        or below it so reads at >= ``version`` are unaffected.  Returns the
        number of records dropped.

        A lone tombstone at the watermark is dropped too: once every
        record it superseded is gone and nothing was written after it,
        reads at >= ``version`` answer "missing" with or without it, so
        keeping it only leaks memory on create/delete churn (the caller
        drops the then-empty cell entirely).
        """
        keep_from = bisect.bisect_right(self._versions, version) - 1
        if keep_from < 0:
            return 0
        dropped = keep_from
        del self._versions[:keep_from]
        del self._values[:keep_from]
        if (
            len(self._versions) == 1
            and self._values[0] is _TOMBSTONE
            and self._versions[0] <= version
        ):
            del self._versions[0]
            del self._values[0]
            dropped += 1
        return dropped

    def history(self) -> List[Tuple[int, bool, Any]]:
        """Full version chain as (version, exists, value) triples."""
        return [
            (v, val is not _TOMBSTONE, None if val is _TOMBSTONE else val)
            for v, val in zip(self._versions, self._values)
        ]
