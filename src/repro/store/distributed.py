"""A distributed, replicated backing store (the shape of HyperDex Warp).

The single-object :class:`~repro.store.kvstore.TransactionalStore`
provides the *contract* Weaver needs; this module provides the
*deployment shape* the paper's backing store actually has: keys are
partitioned across **store nodes** by consistent hashing, every key is
replicated on ``replication`` consecutive nodes, and multi-key commits
run a Warp-style **linear transaction** — validation and application
flow through the involved key-owners in one canonical order (which is
what makes conflicting transactions serialize without a global lock),
with the message count recorded per commit.

The class subclasses :class:`TransactionalStore`, overriding only the
cell-routing internals, so everything built on the store — gatekeepers,
shard recovery, demand paging — works unchanged on top of it, including
after a store-node failure (any single node can be lost without losing
committed data when ``replication`` >= 2).
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from ..errors import StoreError
from .kvstore import META_COMMIT_VERSION, TransactionalStore
from .versioned import VersionedCell


def _stable_hash(key: str) -> int:
    return int.from_bytes(
        hashlib.blake2b(key.encode(), digest_size=8).digest(), "big"
    )


class StoreNode:
    """One storage server: a slice of the key space (plus replicas)."""

    def __init__(self, index: int):
        self.index = index
        self.cells: Dict[str, VersionedCell] = {}
        self.alive = True
        self.reads = 0
        self.writes = 0

    @property
    def name(self) -> str:
        return f"store{self.index}"

    def cell(self, key: str, create: bool = False) -> Optional[VersionedCell]:
        if create:
            return self.cells.setdefault(key, VersionedCell())
        return self.cells.get(key)


class DistributedStore(TransactionalStore):
    """A partitioned, replicated drop-in for :class:`TransactionalStore`."""

    def __init__(self, num_nodes: int = 4, replication: int = 2):
        if num_nodes < 1:
            raise ValueError("need at least one store node")
        if not 1 <= replication <= num_nodes:
            raise ValueError("replication must be in [1, num_nodes]")
        super().__init__()
        # The base class's _cells dict goes unused; routing replaces it.
        self.nodes = [StoreNode(i) for i in range(num_nodes)]
        self.replication = replication
        self.chain_messages = 0
        self.commit_chains: List[int] = []

    # -- placement ---------------------------------------------------

    def replicas_of(self, key: str) -> List[StoreNode]:
        """The ``replication`` consecutive nodes owning ``key``."""
        first = _stable_hash(key) % len(self.nodes)
        return [
            self.nodes[(first + i) % len(self.nodes)]
            for i in range(self.replication)
        ]

    def _live_replicas(self, key: str) -> List[StoreNode]:
        return [node for node in self.replicas_of(key) if node.alive]

    def _read_replica(self, key: str) -> Optional[StoreNode]:
        live = self._live_replicas(key)
        return live[0] if live else None

    # -- routing internals (override the base class's single dict) -------

    def _read_cell(
        self, key: str, snapshot: Optional[int]
    ) -> Tuple[bool, Any, int]:
        node = self._read_replica(key)
        if node is None:
            raise StoreError(
                f"all replicas of {key!r} are down "
                f"(replication={self.replication})"
            )
        node.reads += 1
        cell = node.cell(key)
        if cell is None:
            return False, None, 0
        return cell.read(snapshot)

    def _commit(
        self,
        snapshot: int,
        reads: Dict[str, int],
        writes: Dict[str, Any],
        deletes: Set[str],
    ) -> int:
        """A Warp-style linear transaction.

        The involved key-owners form a chain in canonical (index) order;
        validation walks forward through the chain, application walks
        back.  Two conflicting transactions meet at their first shared
        owner, where first-committer-wins applies — the same guarantee
        as the base class, now with the distribution accounted.
        """
        involved: Set[int] = set()
        for key in set(reads) | set(writes) | deletes:
            for node in self._live_replicas(key):
                involved.add(node.index)
        chain = sorted(involved)
        # Validation pass (forward through the chain).
        for key, seen_version in reads.items():
            _, _, current = self._latest(key)
            if current != seen_version:
                self.aborts += 1
                from ..errors import TransactionAborted

                raise TransactionAborted(f"read conflict on {key!r}")
        for key in set(writes) | deletes:
            _, _, current = self._latest(key)
            if current > snapshot:
                self.aborts += 1
                from ..errors import TransactionAborted

                raise TransactionAborted(f"write conflict on {key!r}")
        # Application pass (backward), on every live replica.
        self._commit_version += 1
        version = self._commit_version
        for key, value in writes.items():
            for node in self._live_replicas(key):
                node.writes += 1
                node.cell(key, create=True).write(version, value)
        for key in deletes:
            for node in self._live_replicas(key):
                node.writes += 1
                node.cell(key, create=True).delete(version)
        self.commits += 1
        self.chain_messages += 2 * len(chain)
        self.commit_chains.append(len(chain))
        return version

    def _latest(self, key: str) -> Tuple[bool, Any, int]:
        node = self._read_replica(key)
        if node is None:
            raise StoreError(f"all replicas of {key!r} are down")
        cell = node.cell(key)
        if cell is None:
            return False, None, 0
        return cell.read(None)

    # -- whole-store operations ------------------------------------------

    def _all_keys(self) -> Set[str]:
        keys: Set[str] = set()
        for node in self.nodes:
            if node.alive:
                keys.update(node.cells)
        return keys

    def keys(self, prefix: str = "") -> Iterator[str]:
        for key in sorted(self._all_keys()):
            if prefix and not key.startswith(prefix):
                continue
            exists, _, _ = self._read_cell(key, None)
            if exists:
                yield key

    def snapshot(self) -> Dict[str, Any]:
        state: Dict[str, Any] = {META_COMMIT_VERSION: self._commit_version}
        for key in self._all_keys():
            exists, value, _ = self._read_cell(key, None)
            if exists:
                state[key] = value
        return state

    def restore(self, state: Dict[str, Any]) -> None:
        if self._all_keys():
            raise StoreError("restore requires an empty store")
        state = dict(state)
        resumed = state.pop(META_COMMIT_VERSION, self._commit_version)
        self._commit_version = max(self._commit_version, int(resumed))
        self._commit_version += 1
        for key, value in state.items():
            for node in self._live_replicas(key):
                node.cell(key, create=True).write(
                    self._commit_version, value
                )

    def collect_below(self, version: int) -> int:
        reclaimed = 0
        for node in self.nodes:
            empty = []
            for key, cell in node.cells.items():
                freed = cell.collect_below(version)
                reclaimed += freed
                if len(cell) == 0:
                    empty.append(key)
                    if freed:
                        self.stats.tombstones_purged += 1
            for key in empty:
                del node.cells[key]
        self.stats.compactions += 1
        self.stats.records_collected += reclaimed
        return reclaimed

    # -- failure handling -------------------------------------------------

    def fail_node(self, index: int) -> None:
        """Crash one store node; keys remain served by their replicas."""
        if not 0 <= index < len(self.nodes):
            raise StoreError(f"no store node {index}")
        live = sum(1 for node in self.nodes if node.alive)
        if live <= 1:
            raise StoreError("cannot fail the last store node")
        self.nodes[index].alive = False

    def recover_node(self, index: int) -> int:
        """Bring a node back, re-replicating the keys it should own.

        Returns the number of keys copied back onto it.
        """
        node = self.nodes[index]
        node.alive = True
        node.cells.clear()
        copied = 0
        for key in self._all_keys():
            owners = self.replicas_of(key)
            if node not in owners:
                continue
            source = next(
                (n for n in owners if n.alive and n is not node and
                 key in n.cells),
                None,
            )
            if source is None:
                continue
            fresh = VersionedCell()
            for version, exists, value in source.cells[key].history():
                if exists:
                    fresh.write(version, value)
                else:
                    fresh.delete(version)
            node.cells[key] = fresh
            copied += 1
        return copied

    @property
    def mean_chain_length(self) -> float:
        if not self.commit_chains:
            return 0.0
        return sum(self.commit_chains) / len(self.commit_chains)
