"""A transactional, multi-versioned key-value store.

This is the reproduction's stand-in for HyperDex Warp (section 3.2): the
durable system of record for the graph, providing atomic multi-key
transactions with optimistic concurrency control.  Weaver relies on it
for exactly two contracts, both provided here:

* a transaction commits only if none of the data it read was modified by
  a concurrently-committed transaction (abort-on-conflict, the "acyclic
  transactions" guarantee the gatekeepers lean on in section 4.2), and
* committed state survives shard failures (modelled by
  :meth:`TransactionalStore.snapshot` / :meth:`restore`).

The store is strictly a substrate: it orders commits with its own integer
commit counter and knows nothing about vector timestamps.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Iterator, Optional, Set, Tuple

from ..errors import StoreError, TransactionAborted, TransactionError
from .versioned import VersionedCell

#: Reserved snapshot key carrying the commit counter.  Snapshots must
#: round-trip the counter: a recovered store that restarts its counter
#: near 1 reuses pre-crash commit versions, which corrupts everything
#: keyed on them (the checkers' order-keyed digest joins included).
META_COMMIT_VERSION = "__meta__:commit_version"

#: Base delay for the first ``transact`` retry backoff, in seconds.
DEFAULT_BACKOFF_BASE = 1e-4
#: Backoff ceiling, so a long retry chain stays bounded.
DEFAULT_BACKOFF_CAP = 0.05


class StoreStats:
    """Counters of the backing store, exported under ``store.*``.

    One class serves every backend: the in-memory store leaves the
    page-cache fields at zero, so the metric-name surface is identical
    no matter which backend a deployment selects.
    """

    def __init__(self) -> None:
        self.commits = 0
        self.aborts = 0
        #: ``transact`` attempts beyond each call's first try.
        self.retries = 0
        #: ``collect_below`` invocations and what they reclaimed.
        self.compactions = 0
        #: Opportunistic background-compactor passes (durable backend
        #: with ``store_background_compaction`` enabled; else zero).
        self.compaction_background_runs = 0
        self.records_collected = 0
        #: Cells whose only surviving record was a lone tombstone.
        self.tombstones_purged = 0
        #: Durable-backend page cache (zero on the in-memory backend).
        self.page_cache_hits = 0
        self.page_cache_misses = 0
        self.page_cache_evictions = 0
        self.page_cache_bytes = 0


class StoreTransaction:
    """One optimistic transaction against a :class:`TransactionalStore`.

    Reads are served from the snapshot taken at ``begin`` and recorded in
    a read set; writes are buffered locally and become visible only at
    commit.  Validation (first-committer-wins) checks that every key read
    or written is unchanged since the snapshot.
    """

    def __init__(self, store: "TransactionalStore", snapshot: int):
        self._store = store
        self._snapshot = snapshot
        self._reads: Dict[str, int] = {}
        self._writes: Dict[str, Any] = {}
        self._deletes: Set[str] = set()
        self._done = False

    @property
    def snapshot(self) -> int:
        return self._snapshot

    @property
    def read_set(self) -> Set[str]:
        return set(self._reads)

    @property
    def write_set(self) -> Set[str]:
        return set(self._writes) | self._deletes

    @property
    def is_open(self) -> bool:
        """True until the transaction commits or aborts.

        A commit that raises :class:`TransactionAborted` still closes the
        transaction, so cleanup paths must check this before calling
        :meth:`abort` (which raises on a closed transaction).
        """
        return not self._done

    def _check_open(self) -> None:
        if self._done:
            raise TransactionError("transaction already committed/aborted")

    def get(self, key: str, default: Any = None) -> Any:
        """Read ``key`` at the transaction snapshot (own writes win)."""
        self._check_open()
        if key in self._deletes:
            return default
        if key in self._writes:
            return self._writes[key]
        exists, value, version = self._store._read_cell(key, self._snapshot)
        self._reads[key] = version
        return value if exists else default

    def exists(self, key: str) -> bool:
        self._check_open()
        if key in self._deletes:
            return False
        if key in self._writes:
            return True
        exists, _, version = self._store._read_cell(key, self._snapshot)
        self._reads[key] = version
        return exists

    def put(self, key: str, value: Any) -> None:
        self._check_open()
        self._deletes.discard(key)
        self._writes[key] = value

    def delete(self, key: str) -> None:
        self._check_open()
        self._writes.pop(key, None)
        self._deletes.add(key)

    def commit(self) -> int:
        """Validate and apply; returns the commit version.

        Raises :class:`TransactionAborted` when any key in the read or
        write set changed after the snapshot (a concurrent committer won).
        """
        self._check_open()
        self._done = True
        self._store._release_snapshot(self._snapshot)
        return self._store._commit(
            self._snapshot, self._reads, self._writes, self._deletes
        )

    def abort(self) -> None:
        self._check_open()
        self._done = True
        self._store._release_snapshot(self._snapshot)


class TransactionalStore:
    """The shared, durable key-value store."""

    def __init__(
        self,
        *,
        sleep: Optional[Callable[[float], None]] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self._cells: Dict[str, VersionedCell] = {}
        self._commit_version = 0
        self.stats = StoreStats()
        #: snapshot version -> number of open transactions pinned to it;
        #: compaction must not pass the oldest pinned snapshot.
        self._open_snapshots: Dict[int, int] = {}
        self._sleep: Callable[[float], None] = sleep or (lambda _s: None)
        self._rng: random.Random = rng or random.Random(0)

    # ``commits``/``aborts`` pre-date StoreStats; keep them as aliases so
    # existing callers (and subclasses doing ``self.aborts += 1``) work.
    @property
    def commits(self) -> int:
        return self.stats.commits

    @commits.setter
    def commits(self, value: int) -> None:
        self.stats.commits = value

    @property
    def aborts(self) -> int:
        return self.stats.aborts

    @aborts.setter
    def aborts(self, value: int) -> None:
        self.stats.aborts = value

    @property
    def version(self) -> int:
        """The newest committed version."""
        return self._commit_version

    # -- transactional interface -------------------------------------

    def begin(self) -> StoreTransaction:
        snapshot = self._commit_version
        self._open_snapshots[snapshot] = (
            self._open_snapshots.get(snapshot, 0) + 1
        )
        return StoreTransaction(self, snapshot)

    def _release_snapshot(self, snapshot: int) -> None:
        count = self._open_snapshots.get(snapshot, 0)
        if count <= 1:
            self._open_snapshots.pop(snapshot, None)
        else:
            self._open_snapshots[snapshot] = count - 1

    def safe_compact_version(self) -> int:
        """Highest version compaction may use without hurting open readers.

        Open transactions read at their pinned snapshot; compacting past
        the oldest pinned snapshot could drop the record answering one of
        their reads.  With no open transactions the whole history up to
        the current commit version is fair game.
        """
        if self._open_snapshots:
            return min(self._open_snapshots)
        return self._commit_version

    def transact(
        self,
        fn,
        retries: int = 10,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        backoff_cap: float = DEFAULT_BACKOFF_CAP,
    ):
        """Run ``fn(tx)`` with automatic retry on conflict.

        ``fn`` receives a fresh :class:`StoreTransaction`; its return value
        is returned after a successful commit.  Conflicting attempts back
        off with full jitter (uniform in [0, min(cap, base * 2**n)]) so
        colliding writers decorrelate instead of re-colliding in lockstep.
        Any exception — not just :class:`TransactionAborted` — aborts the
        open transaction before propagating.
        """
        last_error: Optional[TransactionAborted] = None
        for attempt in range(retries):
            if attempt:
                self.stats.retries += 1
                ceiling = min(backoff_cap, backoff_base * (2 ** (attempt - 1)))
                self._sleep(self._rng.random() * ceiling)
            tx = self.begin()
            try:
                result = fn(tx)
                tx.commit()
                return result
            except TransactionAborted as exc:
                last_error = exc
            finally:
                if tx.is_open:
                    tx.abort()
        raise last_error if last_error else StoreError("transact failed")

    # -- non-transactional conveniences --------------------------------

    def get(self, key: str, default: Any = None) -> Any:
        exists, value, _ = self._read_cell(key, None)
        return value if exists else default

    def exists(self, key: str) -> bool:
        exists, _, _ = self._read_cell(key, None)
        return exists

    def keys(self, prefix: str = "") -> Iterator[str]:
        """Currently-live keys, optionally filtered by prefix."""
        for key, cell in self._cells.items():
            if prefix and not key.startswith(prefix):
                continue
            exists, _, _ = cell.read(None)
            if exists:
                yield key

    def read_at(self, key: str, version: int) -> Tuple[bool, Any]:
        """Historical read at a specific commit version."""
        exists, value, _ = self._read_cell(key, version)
        return exists, value

    # -- internals -------------------------------------------------------

    def _read_cell(
        self, key: str, snapshot: Optional[int]
    ) -> Tuple[bool, Any, int]:
        cell = self._cells.get(key)
        if cell is None:
            return False, None, 0
        return cell.read(snapshot)

    def _commit(
        self,
        snapshot: int,
        reads: Dict[str, int],
        writes: Dict[str, Any],
        deletes: Set[str],
    ) -> int:
        # First-committer-wins validation: every key read must still be at
        # the version we read, and every key written must not have moved
        # past our snapshot (write-write conflicts abort too).
        for key, seen_version in reads.items():
            cell = self._cells.get(key)
            current = cell.latest_version if cell is not None else 0
            if current != seen_version:
                self.aborts += 1
                raise TransactionAborted(f"read conflict on {key!r}")
        for key in set(writes) | deletes:
            cell = self._cells.get(key)
            if cell is not None and cell.latest_version > snapshot:
                self.aborts += 1
                raise TransactionAborted(f"write conflict on {key!r}")
        self._commit_version += 1
        version = self._commit_version
        for key, value in writes.items():
            self._cells.setdefault(key, VersionedCell()).write(version, value)
        for key in deletes:
            self._cells.setdefault(key, VersionedCell()).delete(version)
        self.commits += 1
        return version

    # -- durability / recovery -------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Materialize the latest committed state (for recovery tests).

        The commit counter rides along under :data:`META_COMMIT_VERSION`:
        a restore that restarted the counter near 1 would reuse pre-crash
        commit versions, corrupting everything keyed on them (the
        checkers' order-keyed digest joins included).
        """
        state: Dict[str, Any] = {META_COMMIT_VERSION: self._commit_version}
        for key, cell in self._cells.items():
            exists, value, _ = cell.read(None)
            if exists:
                state[key] = value
        return state

    def restore(self, state: Dict[str, Any]) -> None:
        """Load a snapshot into an empty store."""
        if self._cells:
            raise StoreError("restore requires an empty store")
        state = dict(state)
        resumed = state.pop(META_COMMIT_VERSION, self._commit_version)
        self._commit_version = max(self._commit_version, int(resumed))
        self._commit_version += 1
        for key, value in state.items():
            self._cells.setdefault(key, VersionedCell()).write(
                self._commit_version, value
            )

    def collect_below(self, version: int) -> int:
        """Garbage-collect versions superseded before ``version``.

        Cells left empty — their only surviving record was a tombstone at
        or below the watermark — are dropped from the key map entirely,
        so create/delete churn no longer grows memory without bound.
        """
        dropped = 0
        empty = []
        for key, cell in self._cells.items():
            reclaimed = cell.collect_below(version)
            dropped += reclaimed
            if len(cell) == 0:
                empty.append(key)
                if reclaimed:
                    self.stats.tombstones_purged += 1
        for key in empty:
            del self._cells[key]
        self.stats.compactions += 1
        self.stats.records_collected += dropped
        return dropped
