"""A transactional, multi-versioned key-value store.

This is the reproduction's stand-in for HyperDex Warp (section 3.2): the
durable system of record for the graph, providing atomic multi-key
transactions with optimistic concurrency control.  Weaver relies on it
for exactly two contracts, both provided here:

* a transaction commits only if none of the data it read was modified by
  a concurrently-committed transaction (abort-on-conflict, the "acyclic
  transactions" guarantee the gatekeepers lean on in section 4.2), and
* committed state survives shard failures (modelled by
  :meth:`TransactionalStore.snapshot` / :meth:`restore`).

The store is strictly a substrate: it orders commits with its own integer
commit counter and knows nothing about vector timestamps.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional, Set, Tuple

from ..errors import StoreError, TransactionAborted, TransactionError
from .versioned import VersionedCell


class StoreTransaction:
    """One optimistic transaction against a :class:`TransactionalStore`.

    Reads are served from the snapshot taken at ``begin`` and recorded in
    a read set; writes are buffered locally and become visible only at
    commit.  Validation (first-committer-wins) checks that every key read
    or written is unchanged since the snapshot.
    """

    def __init__(self, store: "TransactionalStore", snapshot: int):
        self._store = store
        self._snapshot = snapshot
        self._reads: Dict[str, int] = {}
        self._writes: Dict[str, Any] = {}
        self._deletes: Set[str] = set()
        self._done = False

    @property
    def snapshot(self) -> int:
        return self._snapshot

    @property
    def read_set(self) -> Set[str]:
        return set(self._reads)

    @property
    def write_set(self) -> Set[str]:
        return set(self._writes) | self._deletes

    @property
    def is_open(self) -> bool:
        """True until the transaction commits or aborts.

        A commit that raises :class:`TransactionAborted` still closes the
        transaction, so cleanup paths must check this before calling
        :meth:`abort` (which raises on a closed transaction).
        """
        return not self._done

    def _check_open(self) -> None:
        if self._done:
            raise TransactionError("transaction already committed/aborted")

    def get(self, key: str, default: Any = None) -> Any:
        """Read ``key`` at the transaction snapshot (own writes win)."""
        self._check_open()
        if key in self._deletes:
            return default
        if key in self._writes:
            return self._writes[key]
        exists, value, version = self._store._read_cell(key, self._snapshot)
        self._reads[key] = version
        return value if exists else default

    def exists(self, key: str) -> bool:
        self._check_open()
        if key in self._deletes:
            return False
        if key in self._writes:
            return True
        exists, _, version = self._store._read_cell(key, self._snapshot)
        self._reads[key] = version
        return exists

    def put(self, key: str, value: Any) -> None:
        self._check_open()
        self._deletes.discard(key)
        self._writes[key] = value

    def delete(self, key: str) -> None:
        self._check_open()
        self._writes.pop(key, None)
        self._deletes.add(key)

    def commit(self) -> int:
        """Validate and apply; returns the commit version.

        Raises :class:`TransactionAborted` when any key in the read or
        write set changed after the snapshot (a concurrent committer won).
        """
        self._check_open()
        self._done = True
        return self._store._commit(
            self._snapshot, self._reads, self._writes, self._deletes
        )

    def abort(self) -> None:
        self._check_open()
        self._done = True


class TransactionalStore:
    """The shared, durable key-value store."""

    def __init__(self) -> None:
        self._cells: Dict[str, VersionedCell] = {}
        self._commit_version = 0
        self.commits = 0
        self.aborts = 0

    @property
    def version(self) -> int:
        """The newest committed version."""
        return self._commit_version

    # -- transactional interface -------------------------------------

    def begin(self) -> StoreTransaction:
        return StoreTransaction(self, self._commit_version)

    def transact(self, fn, retries: int = 10):
        """Run ``fn(tx)`` with automatic retry on conflict.

        ``fn`` receives a fresh :class:`StoreTransaction`; its return value
        is returned after a successful commit.
        """
        last_error: Optional[TransactionAborted] = None
        for _ in range(retries):
            tx = self.begin()
            try:
                result = fn(tx)
                tx.commit()
                return result
            except TransactionAborted as exc:
                last_error = exc
        raise last_error if last_error else StoreError("transact failed")

    # -- non-transactional conveniences --------------------------------

    def get(self, key: str, default: Any = None) -> Any:
        exists, value, _ = self._read_cell(key, None)
        return value if exists else default

    def exists(self, key: str) -> bool:
        exists, _, _ = self._read_cell(key, None)
        return exists

    def keys(self, prefix: str = "") -> Iterator[str]:
        """Currently-live keys, optionally filtered by prefix."""
        for key, cell in self._cells.items():
            if prefix and not key.startswith(prefix):
                continue
            exists, _, _ = cell.read(None)
            if exists:
                yield key

    def read_at(self, key: str, version: int) -> Tuple[bool, Any]:
        """Historical read at a specific commit version."""
        exists, value, _ = self._read_cell(key, version)
        return exists, value

    # -- internals -------------------------------------------------------

    def _read_cell(
        self, key: str, snapshot: Optional[int]
    ) -> Tuple[bool, Any, int]:
        cell = self._cells.get(key)
        if cell is None:
            return False, None, 0
        return cell.read(snapshot)

    def _commit(
        self,
        snapshot: int,
        reads: Dict[str, int],
        writes: Dict[str, Any],
        deletes: Set[str],
    ) -> int:
        # First-committer-wins validation: every key read must still be at
        # the version we read, and every key written must not have moved
        # past our snapshot (write-write conflicts abort too).
        for key, seen_version in reads.items():
            cell = self._cells.get(key)
            current = cell.latest_version if cell is not None else 0
            if current != seen_version:
                self.aborts += 1
                raise TransactionAborted(f"read conflict on {key!r}")
        for key in set(writes) | deletes:
            cell = self._cells.get(key)
            if cell is not None and cell.latest_version > snapshot:
                self.aborts += 1
                raise TransactionAborted(f"write conflict on {key!r}")
        self._commit_version += 1
        version = self._commit_version
        for key, value in writes.items():
            self._cells.setdefault(key, VersionedCell()).write(version, value)
        for key in deletes:
            self._cells.setdefault(key, VersionedCell()).delete(version)
        self.commits += 1
        return version

    # -- durability / recovery -------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Materialize the latest committed state (for recovery tests)."""
        state: Dict[str, Any] = {}
        for key, cell in self._cells.items():
            exists, value, _ = cell.read(None)
            if exists:
                state[key] = value
        return state

    def restore(self, state: Dict[str, Any]) -> None:
        """Load a snapshot into an empty store."""
        if self._cells:
            raise StoreError("restore requires an empty store")
        self._commit_version += 1
        for key, value in state.items():
            self._cells.setdefault(key, VersionedCell()).write(
                self._commit_version, value
            )

    def collect_below(self, version: int) -> int:
        """Garbage-collect versions superseded before ``version``."""
        return sum(
            cell.collect_below(version) for cell in self._cells.values()
        )
