"""Vertex-to-shard mapping, stored in the backing store.

The backing store's second job in the paper (section 3.2) is directing
transactions on a vertex to the shard server responsible for it.  The
mapping lives under a reserved key prefix so it shares the store's
transactional guarantees: a transaction that creates a vertex installs
its shard assignment atomically with the vertex itself.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from .kvstore import StoreTransaction, TransactionalStore

_PREFIX = "__shardmap__:"


class ShardMapping:
    """Assigns vertices to shards and remembers the assignments."""

    def __init__(self, store: TransactionalStore, num_shards: int):
        if num_shards <= 0:
            raise ValueError("need at least one shard")
        self._store = store
        self._num_shards = num_shards
        self._next = 0  # round-robin cursor for balanced placement

    @property
    def num_shards(self) -> int:
        return self._num_shards

    @staticmethod
    def _key(vertex: str) -> str:
        return _PREFIX + vertex

    def assign(
        self,
        vertex: str,
        tx: Optional[StoreTransaction] = None,
        shard: Optional[int] = None,
    ) -> int:
        """Pick (or honor) a shard for a new vertex and record it.

        Placement is round-robin by default — balanced load, the property
        the evaluation needs; the streaming partitioners in
        :mod:`repro.graph.partition` can compute better placements which
        callers pass via ``shard``.
        """
        if shard is None:
            shard = self._next % self._num_shards
            self._next += 1
        elif not 0 <= shard < self._num_shards:
            raise ValueError(f"shard {shard} out of range")
        if tx is not None:
            tx.put(self._key(vertex), shard)
        else:
            self._store.transact(lambda t: t.put(self._key(vertex), shard))
        return shard

    def lookup(
        self, vertex: str, tx: Optional[StoreTransaction] = None
    ) -> Optional[int]:
        if tx is not None:
            return tx.get(self._key(vertex))
        return self._store.get(self._key(vertex))

    def remove(
        self, vertex: str, tx: Optional[StoreTransaction] = None
    ) -> None:
        if tx is not None:
            tx.delete(self._key(vertex))
        else:
            self._store.transact(lambda t: t.delete(self._key(vertex)))

    def items(self) -> Iterator[Tuple[str, int]]:
        """All live (vertex, shard) assignments."""
        for key in self._store.keys(_PREFIX):
            yield key[len(_PREFIX):], self._store.get(key)

    def load(self) -> Dict[int, int]:
        """Vertices per shard — used by balance tests and partitioning."""
        counts: Dict[int, int] = {i: 0 for i in range(self._num_shards)}
        for _, shard in self.items():
            counts[shard] = counts.get(shard, 0) + 1
        return counts


def placement_from_store(store: TransactionalStore) -> Dict[str, int]:
    """The live vertex-to-shard placement read straight off a store.

    Used by recovering shard workers, which reopen the durable database
    themselves and have no :class:`ShardMapping` (nor its round-robin
    cursor) — they only need to know which vertices are theirs.
    """
    return {
        key[len(_PREFIX):]: store.get(key) for key in store.keys(_PREFIX)
    }
