"""A Blockchain.info-like baseline: relational block explorer.

Section 6.1 calibrates CoinGraph against Blockchain.info, a commercial
block explorer backed by MySQL [57].  The paper measures that it pays
**5-8 ms of join work per Bitcoin transaction in the block**, plus WAN
latency (~13 ms); CoinGraph pays 0.6-0.8 ms per transaction.  The order-
of-magnitude gap in marginal cost per transaction — not the absolute
constants — is the reproduced claim.

This baseline is a small functional relational store (blocks and
transactions tables with an index on block id) whose query executor
charges the per-row join cost the paper measured.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..bench.costmodel import CostParams


class RelationalExplorer:
    """Blocks + transactions tables, queried with an indexed join."""

    def __init__(self, costs: Optional[CostParams] = None):
        self.costs = costs or CostParams()
        # blocks: block id -> header row
        self._blocks: Dict[str, Dict[str, Any]] = {}
        # transactions: tx id -> row; index: block id -> [tx id]
        self._transactions: Dict[str, Dict[str, Any]] = {}
        self._block_index: Dict[str, List[str]] = {}
        self.queries = 0
        self.rows_joined = 0

    # -- loading -----------------------------------------------------------

    def insert_block(self, block_id: str, header: Dict[str, Any]) -> None:
        self._blocks[block_id] = dict(header)
        self._block_index.setdefault(block_id, [])

    def insert_transaction(
        self, tx_id: str, block_id: str, row: Dict[str, Any]
    ) -> None:
        if block_id not in self._blocks:
            raise KeyError(f"unknown block {block_id!r}")
        self._transactions[tx_id] = dict(row)
        self._block_index[block_id].append(tx_id)

    @property
    def num_blocks(self) -> int:
        return len(self._blocks)

    @property
    def num_transactions(self) -> int:
        return len(self._transactions)

    # -- the block query (the Fig 7 workload) ---------------------------

    def render_block(
        self, block_id: str, start: float = 0.0
    ) -> Tuple[Dict[str, Any], float]:
        """SELECT header, then join every transaction row of the block.

        Returns (result, completion time).  Cost: one WAN round trip plus
        the measured per-row join work for each transaction in the block.
        """
        if block_id not in self._blocks:
            raise KeyError(f"unknown block {block_id!r}")
        self.queries += 1
        tx_ids = self._block_index[block_id]
        rows = [
            {"tx": tx_id, "data": dict(self._transactions[tx_id])}
            for tx_id in tx_ids
        ]
        self.rows_joined += len(rows)
        t = start
        t += 2 * self.costs.wan_latency          # request + response
        t += self.costs.sql_row_service * len(rows)  # per-row join work
        result = {
            "block": block_id,
            "header": dict(self._blocks[block_id]),
            "n_tx": len(rows),
            "transactions": rows,
        }
        return result, t
