"""A Titan-like baseline: distributed 2PL + two-phase commit.

Titan v0.4.2 (the paper's comparison system, section 6.2) ensures
serializability by pessimistically locking every object a transaction
touches — reads included — and running two-phase commit across the
involved partitions [51].  That is why its measured throughput is nearly
flat (~2k tx/s) regardless of the read/write mix: the lock-and-2PC cost
dominates and is paid per transaction either way.

This baseline is both *functional* (a working partitioned property-graph
store whose histories are serializable — the lock table serializes
conflicting transactions) and *cost-accounted*: every operation returns
its completion time in simulated seconds, charging

* one client→coordinator round trip,
* lock acquisition (waiting out conflicting holders, one lock-service
  round trip per involved partition),
* two 2PC phases, each a round trip plus partition service time,
* lock release at commit.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..bench.costmodel import CostParams, LockTable, Resource
from ..errors import NoSuchEdge, NoSuchVertex, TransactionAborted
from ..graph.partition import HashPartitioner

Op = Tuple  # ("create_edge", handle, src, dst) etc.


class _TitanVertex:
    __slots__ = ("properties", "edges")

    def __init__(self) -> None:
        self.properties: Dict[str, Any] = {}
        # edge handle -> (dst, properties)
        self.edges: Dict[str, Tuple[str, Dict[str, Any]]] = {}


class TitanStats:
    def __init__(self) -> None:
        self.commits = 0
        self.aborts = 0
        self.reads = 0


class TitanGraph:
    """The baseline database: one object, functional + cost model."""

    def __init__(
        self,
        num_shards: int = 2,
        costs: Optional[CostParams] = None,
    ):
        if num_shards <= 0:
            raise ValueError("need at least one shard")
        self.costs = costs or CostParams()
        self.num_shards = num_shards
        self._graph: Dict[str, _TitanVertex] = {}
        self._partitioner = HashPartitioner(num_shards)
        self.shards = [Resource(f"titan-shard{i}") for i in range(num_shards)]
        # The serial lock/2PC coordination path; its service time is what
        # pins Titan's measured throughput near-flat across read mixes.
        self.coordinator = Resource("titan-coordinator")
        self.locks = LockTable()
        self.stats = TitanStats()

    # -- placement ---------------------------------------------------

    def _shard_of(self, vertex: str) -> Resource:
        return self.shards[self._partitioner.assign(vertex)]

    # -- functional helpers -------------------------------------------

    def _vertex(self, handle: str) -> _TitanVertex:
        vertex = self._graph.get(handle)
        if vertex is None:
            raise NoSuchVertex(handle)
        return vertex

    @staticmethod
    def _touched(operations: Sequence[Op]) -> List[str]:
        touched = []
        for op in operations:
            kind = op[0]
            if kind in ("create_vertex", "delete_vertex",
                        "set_vertex_property"):
                touched.append(op[1])
            elif kind == "create_edge":
                touched.append(op[2])
            elif kind in ("delete_edge", "set_edge_property"):
                touched.append(op[1])
            else:
                raise ValueError(f"unknown operation {kind!r}")
        return touched

    def _apply(self, operations: Sequence[Op]) -> None:
        for op in operations:
            kind = op[0]
            if kind == "create_vertex":
                if op[1] in self._graph:
                    raise TransactionAborted(f"vertex {op[1]!r} exists")
                self._graph[op[1]] = _TitanVertex()
            elif kind == "delete_vertex":
                if op[1] not in self._graph:
                    raise TransactionAborted(f"vertex {op[1]!r} missing")
                del self._graph[op[1]]
            elif kind == "create_edge":
                _, handle, src, dst = op
                vertex = self._vertex(src)
                if dst not in self._graph:
                    raise TransactionAborted(f"destination {dst!r} missing")
                if handle in vertex.edges:
                    raise TransactionAborted(f"edge {handle!r} exists")
                vertex.edges[handle] = (dst, {})
            elif kind == "delete_edge":
                _, src, handle = op
                vertex = self._vertex(src)
                if handle not in vertex.edges:
                    raise TransactionAborted(f"edge {handle!r} missing")
                del vertex.edges[handle]
            elif kind == "set_vertex_property":
                _, handle, key, value = op
                self._vertex(handle).properties[key] = value
            elif kind == "set_edge_property":
                _, src, handle, key, value = op
                vertex = self._vertex(src)
                if handle not in vertex.edges:
                    raise NoSuchEdge(handle)
                vertex.edges[handle][1][key] = value

    # -- the transaction protocol --------------------------------------

    def execute(self, operations: Sequence[Op], start: float) -> float:
        """Run one write transaction; returns its completion time.

        Functional failures (validity violations) raise
        :class:`TransactionAborted` *after* charging the lock and abort
        costs — a real Titan pays for its aborts too.
        """
        touched = self._touched(operations)
        involved = {self._partitioner.assign(v) for v in touched}
        c = self.costs
        # Client -> transaction coordinator (a serial resource).
        t = start + c.rtt
        t = self.coordinator.acquire(t, c.titan_coordinator_service)
        # Lock phase: a lock-service round trip per involved partition,
        # then wait out conflicting holders.
        t += c.rtt * max(1, len(involved)) / 2 + c.lock_service
        grant = self.locks.lock_all(touched, t)
        t = grant
        # 2PC: prepare and commit, each one round trip with partition
        # service; partitions work in parallel, so take the max.
        for _ in range(2):
            phase_end = t
            for shard_index in involved or {0}:
                done = self.shards[shard_index].acquire(
                    t, c.shard_op_service * max(1, len(operations))
                )
                phase_end = max(phase_end, done)
            t = phase_end + c.rtt
        try:
            self._apply(operations)
        except TransactionAborted:
            self.stats.aborts += 1
            self.locks.hold_all_until(touched, t)
            raise
        self.stats.commits += 1
        self.locks.hold_all_until(touched, t)
        return t

    # -- reads (also locked: Titan pays locking for every access) --------

    def _read(self, vertex: str, start: float, work: float) -> float:
        c = self.costs
        t = start + c.rtt
        # Reads lock too, through the same serial coordination path —
        # which is why Titan's throughput barely moves with the read mix.
        t = self.coordinator.acquire(t, c.titan_coordinator_service)
        t += c.lock_service
        t = self.locks.lock(vertex, t)
        done = self._shard_of(vertex).acquire(t, work)
        finish = done + c.rtt
        self.locks.hold_until(vertex, finish)
        self.stats.reads += 1
        return finish

    def get_node(self, handle: str, start: float) -> Tuple[Dict, float]:
        vertex = self._vertex(handle)
        finish = self._read(handle, start, self.costs.vertex_read_service)
        return (
            {
                "handle": handle,
                "properties": dict(vertex.properties),
                "out_degree": len(vertex.edges),
            },
            finish,
        )

    def get_edges(self, handle: str, start: float) -> Tuple[List, float]:
        vertex = self._vertex(handle)
        work = self.costs.vertex_read_service * max(1, len(vertex.edges))
        finish = self._read(handle, start, work)
        edges = [
            {"handle": h, "nbr": dst, "properties": dict(props)}
            for h, (dst, props) in vertex.edges.items()
        ]
        return edges, finish

    def count_edges(self, handle: str, start: float) -> Tuple[int, float]:
        vertex = self._vertex(handle)
        finish = self._read(handle, start, self.costs.vertex_read_service)
        return len(vertex.edges), finish

    # -- bulk load (no cost accounting; benchmark setup only) ------------

    def load(self, edges, vertices=()) -> None:
        for handle in vertices:
            self._graph.setdefault(handle, _TitanVertex())
        for i, (src, dst) in enumerate(edges):
            self._graph.setdefault(src, _TitanVertex())
            self._graph.setdefault(dst, _TitanVertex())
            self._graph[src].edges[f"e{i}"] = (dst, {})

    # -- functional traversal (for correctness cross-checks) -------------

    def reachable(self, src: str, dst: str) -> bool:
        if src not in self._graph:
            return False
        seen = {src}
        frontier = [src]
        while frontier:
            nxt = []
            for handle in frontier:
                if handle == dst:
                    return True
                for other, _ in self._graph[handle].edges.values():
                    if other not in seen and other in self._graph:
                        seen.add(other)
                        nxt.append(other)
            frontier = nxt
        return dst in seen
