"""Baseline systems the paper's evaluation compares against."""

from .titan import TitanGraph, TitanStats
from .graphlab import BfsProgram, GasProgram, GraphLab
from .blockchain_info import RelationalExplorer
from .kineograph import Kineograph

__all__ = [
    "TitanGraph",
    "TitanStats",
    "BfsProgram",
    "GasProgram",
    "GraphLab",
    "RelationalExplorer",
    "Kineograph",
]
