"""A GraphLab/PowerGraph-like baseline: offline GAS graph processing.

The paper compares Weaver's traversal latency against GraphLab v2.2's
synchronous and asynchronous engines (section 6.3, Fig 11).  Both modes
compute the same answers on a static graph; they differ in the
coordination they pay, which is what the cost model charges:

* **sync** — bulk-synchronous supersteps: per round, the active
  vertices' work is spread across machines, then every machine waits at
  a barrier.  Barriers dominate traversals with many shallow rounds.
* **async** — no barriers, but *edge consistency*: a vertex update must
  exclude concurrent updates of its neighbours, modelled with exclusive
  locks on vertex + neighbours, executed on a pool of machine resources.
  Dense neighbourhoods serialize.

Weaver's node programs pay neither cost (MVCC snapshots isolate them),
which is the source of the 4-9x latency gap the figure shows.

A small but real GAS (gather-apply-scatter) API is included; BFS and
reachability are provided as stock programs on top of it.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from ..bench.costmodel import CostParams, LockTable, Resource


class GasProgram:
    """One vertex program in the gather-apply-scatter model.

    ``gather`` folds over a vertex's in-neighbours' values; ``apply``
    computes the vertex's new value; ``scatter`` decides which
    out-neighbours to activate.  Values live in the engine, keyed by
    vertex.
    """

    initial_value: Any = None

    def gather(self, acc: Any, neighbor_value: Any) -> Any:
        raise NotImplementedError

    gather_initial: Any = None

    def apply(self, old_value: Any, gathered: Any) -> Any:
        raise NotImplementedError

    def scatter(self, old_value: Any, new_value: Any) -> bool:
        """True activates the out-neighbours for the next step."""
        raise NotImplementedError


class BfsProgram(GasProgram):
    """Distance propagation: value = best-known distance from the root."""

    INF = float("inf")
    initial_value = INF
    gather_initial = INF

    def gather(self, acc, neighbor_value):
        return min(acc, neighbor_value + 1)

    def apply(self, old_value, gathered):
        return min(old_value, gathered)

    def scatter(self, old_value, new_value):
        return new_value < old_value


class GraphLab:
    """The baseline engine: functional GAS plus cost accounting."""

    def __init__(
        self,
        mode: str = "sync",
        num_machines: int = 4,
        costs: Optional[CostParams] = None,
    ):
        if mode not in ("sync", "async"):
            raise ValueError(f"unknown mode {mode!r}")
        if num_machines <= 0:
            raise ValueError("need at least one machine")
        self.mode = mode
        self.num_machines = num_machines
        self.costs = costs or CostParams()
        self._out: Dict[str, List[str]] = {}
        self._in: Dict[str, List[str]] = {}
        self.machines = [Resource(f"gl{i}") for i in range(num_machines)]
        self.locks = LockTable()
        self.supersteps = 0
        self.updates = 0

    # -- graph loading (offline system: load once, then query) ----------

    def load(self, edges: Iterable[Tuple[str, str]]) -> None:
        for src, dst in edges:
            self._out.setdefault(src, []).append(dst)
            self._out.setdefault(dst, [])
            self._in.setdefault(dst, []).append(src)
            self._in.setdefault(src, [])

    @property
    def num_vertices(self) -> int:
        return len(self._out)

    def out_neighbors(self, vertex: str) -> List[str]:
        return self._out.get(vertex, [])

    # -- GAS execution ---------------------------------------------------

    def run(
        self,
        program: GasProgram,
        initial_active: Dict[str, Any],
        start: float = 0.0,
        max_supersteps: int = 10_000,
    ) -> Tuple[Dict[str, Any], float]:
        """Run to convergence; returns (values, completion time).

        ``initial_active`` seeds both the value table overrides and the
        active set.  Both engines produce the same fixpoint; only the
        charged time differs.
        """
        values: Dict[str, Any] = {
            v: program.initial_value for v in self._out
        }
        values.update(initial_active)
        active: Set[str] = set(initial_active)
        # Last value each vertex scattered; seeds scatter their seeded
        # value on first activation (otherwise a BFS root with distance 0
        # would never signal its neighbours).
        scattered: Dict[str, Any] = {}
        # Job launch: coordinate every machine before computing.
        t = start + self.costs.graphlab_job_startup + self.costs.rtt
        steps = 0
        while active and steps < max_supersteps:
            steps += 1
            if self.mode == "sync":
                t = self._charge_sync_round(len(active), t)
            next_active: Set[str] = set()
            # Deterministic order keeps runs reproducible.
            for vertex in sorted(active):
                if self.mode == "async":
                    t_vertex = self._charge_async_update(vertex, t)
                self.updates += 1
                gathered = program.gather_initial
                for nbr in self._in.get(vertex, ()):
                    gathered = program.gather(gathered, values[nbr])
                old = values[vertex]
                new = program.apply(old, gathered)
                values[vertex] = new
                last = scattered.get(vertex, program.initial_value)
                if program.scatter(last, new):
                    scattered[vertex] = new
                    next_active.update(self._out.get(vertex, ()))
                if self.mode == "async":
                    t = max(t, t_vertex)
            active = next_active
        self.supersteps += steps
        return values, t

    def _charge_sync_round(self, active_count: int, t: float) -> float:
        """One bulk-synchronous superstep: parallel work, then barrier."""
        work = active_count * self.costs.vertex_read_service
        compute = work / self.num_machines
        return t + compute + self.costs.barrier_cost + self.costs.rtt

    def _charge_async_update(self, vertex: str, t: float) -> float:
        """One async update: lock self + neighbours (edge consistency),
        run on the least-loaded machine."""
        scope = [vertex] + self._out.get(vertex, []) + self._in.get(vertex, [])
        grant = self.locks.lock_all(scope, t)
        machine = min(self.machines, key=lambda m: m.free_at)
        # Each update pays its compute plus the lock-manager round:
        # edge-consistency locking is per-update overhead in async mode.
        done = machine.acquire(
            grant, self.costs.vertex_read_service + self.costs.lock_service
        )
        self.locks.hold_all_until(scope, done)
        return done

    # -- stock queries (the Fig 11 workload) ------------------------------

    def bfs_distances(
        self, src: str, start: float = 0.0
    ) -> Tuple[Dict[str, float], float]:
        values, t = self.run(BfsProgram(), {src: 0.0}, start)
        return values, t

    def reachability(
        self, src: str, dst: str, start: float = 0.0
    ) -> Tuple[bool, float]:
        """Is dst reachable from src?  (Runs distance propagation to the
        full fixpoint, as an offline engine must — it cannot stop early
        without a global termination check.)"""
        if src not in self._out:
            return False, start
        values, t = self.bfs_distances(src, start)
        return values.get(dst, BfsProgram.INF) < BfsProgram.INF, t

    # -- functional-only reference (for correctness cross-checks) --------

    def reachable_reference(self, src: str, dst: str) -> bool:
        if src not in self._out:
            return False
        seen = {src}
        frontier = deque([src])
        while frontier:
            vertex = frontier.popleft()
            if vertex == dst:
                return True
            for nbr in self._out.get(vertex, ()):
                if nbr not in seen:
                    seen.add(nbr)
                    frontier.append(nbr)
        return dst in seen
