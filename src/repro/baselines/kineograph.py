"""A Kineograph-like baseline: epoch-based snapshot graph store.

Kineograph [15] (discussed in the paper's related work) decouples
updates from queries: incoming updates are buffered and applied in bulk
at the end of fixed **epochs** (10 seconds in the original system), and
queries always execute against the last *completed* snapshot.  Queries
are therefore cheap and never block on writers — but they read stale
data, up to a full epoch old, and a client cannot read its own writes
until the epoch turns.

The paper contrasts this with refinable timestamps, which give
low-latency updates *and* queries on the latest consistent version.
The freshness ablation (A7) quantifies the difference.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

Op = Tuple  # same op tuples as the Titan baseline


class _Snapshot:
    __slots__ = ("epoch", "vertices")

    def __init__(self, epoch: int, vertices: Dict[str, dict]):
        self.epoch = epoch
        self.vertices = vertices


class Kineograph:
    """Epoch-snapshot store: buffered updates, stale consistent reads."""

    def __init__(self, epoch_interval: float = 10.0):
        if epoch_interval <= 0:
            raise ValueError("epoch interval must be positive")
        self.epoch_interval = epoch_interval
        self._live: Dict[str, dict] = {}
        self._buffer: List[Tuple[float, Op]] = []
        self._snapshot = _Snapshot(0, {})
        self._epoch = 0
        self._last_epoch_at = 0.0
        self.updates_received = 0
        self.queries_served = 0

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def snapshot_epoch(self) -> int:
        return self._snapshot.epoch

    # -- updates (buffered until the epoch turns) -----------------------

    def update(self, op: Op, now: float) -> None:
        """Accept one graph update; it becomes visible at the next epoch
        boundary after ``now``."""
        self._maybe_advance(now)
        self._buffer.append((now, op))
        self.updates_received += 1

    def _apply(self, op: Op) -> None:
        kind = op[0]
        if kind == "create_vertex":
            self._live.setdefault(op[1], {"props": {}, "edges": {}})
        elif kind == "delete_vertex":
            self._live.pop(op[1], None)
        elif kind == "create_edge":
            _, handle, src, dst = op
            if src in self._live:
                self._live[src]["edges"][handle] = dst
        elif kind == "delete_edge":
            _, src, handle = op
            if src in self._live:
                self._live[src]["edges"].pop(handle, None)
        elif kind == "set_vertex_property":
            _, handle, key, value = op
            if handle in self._live:
                self._live[handle]["props"][key] = value
        else:
            raise ValueError(f"unknown op {kind!r}")

    def _maybe_advance(self, now: float) -> None:
        while now - self._last_epoch_at >= self.epoch_interval:
            self._last_epoch_at += self.epoch_interval
            self._advance_epoch(self._last_epoch_at)

    def _advance_epoch(self, boundary: float) -> None:
        """Apply all updates received before the boundary; publish a new
        consistent snapshot."""
        ready = [op for ts, op in self._buffer if ts < boundary]
        self._buffer = [
            (ts, op) for ts, op in self._buffer if ts >= boundary
        ]
        for op in ready:
            self._apply(op)
        self._epoch += 1
        self._snapshot = _Snapshot(
            self._epoch,
            {
                h: {
                    "props": dict(rec["props"]),
                    "edges": dict(rec["edges"]),
                }
                for h, rec in self._live.items()
            },
        )

    def force_epoch(self, now: float) -> None:
        """Advance to ``now`` (testing hook; the timer does this live)."""
        self._maybe_advance(now)

    # -- queries (on the last completed snapshot) -----------------------

    def get_node(self, handle: str, now: float) -> Optional[Dict[str, Any]]:
        self._maybe_advance(now)
        self.queries_served += 1
        record = self._snapshot.vertices.get(handle)
        if record is None:
            return None
        return {
            "handle": handle,
            "properties": dict(record["props"]),
            "out_degree": len(record["edges"]),
        }

    def reachable(self, src: str, dst: str, now: float) -> bool:
        self._maybe_advance(now)
        self.queries_served += 1
        vertices = self._snapshot.vertices
        if src not in vertices:
            return False
        seen = {src}
        frontier = [src]
        while frontier:
            nxt = []
            for handle in frontier:
                if handle == dst:
                    return True
                for nbr in vertices[handle]["edges"].values():
                    if nbr not in seen and nbr in vertices:
                        seen.add(nbr)
                        nxt.append(nbr)
            frontier = nxt
        return dst in seen

    def visibility_lag(self, update_time: float) -> float:
        """When an update at ``update_time`` becomes query-visible: the
        next epoch boundary strictly after it."""
        boundaries_passed = int(update_time / self.epoch_interval) + 1
        return boundaries_passed * self.epoch_interval - update_time
