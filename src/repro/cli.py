"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info`` — version and deployment defaults;
* ``demo`` — a one-minute tour of the API (transactions, traversals,
  historical queries, failover);
* ``bench --figure fig7`` — regenerate one of the paper's figures (or
  ``all``) and print its table;
* ``tao --ops N`` — replay the Table 1 workload against a live
  deployment and report the protocol statistics;
* ``stats`` — run a short mixed workload and report the ordering
  fast-path counters (memo hits, pruned BFS work, scheduler savings);
* ``chaos --seed N`` — a seeded fault-injection run (message drops,
  duplicates, delays, a partition, server crashes) checked end-to-end
  for strict serializability.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__
from .bench.report import format_table

FIGURES = (
    "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
)


def _cmd_info(args) -> int:
    from .db.config import WeaverConfig

    config = WeaverConfig()
    rows = [
        ("version", __version__),
        ("paper", "Weaver (Dubey et al., PVLDB 9(11), 2016)"),
        ("default gatekeepers", config.num_gatekeepers),
        ("default shards", config.num_shards),
        ("default announce cadence", config.announce_every),
        ("oracle chain length", config.oracle_chain_length),
    ]
    print(format_table("repro: Weaver reproduction", ["key", "value"], rows))
    return 0


def _cmd_demo(args) -> int:
    from .db import Weaver, WeaverClient, WeaverConfig

    db = Weaver(WeaverConfig(num_gatekeepers=2, num_shards=2))
    client = WeaverClient(db)
    with client.transaction() as tx:
        for name in ("alice", "bob", "carol"):
            tx.create_vertex(name)
        tx.create_edge("alice", "bob", "ab")
        tx.create_edge("bob", "carol", "bc")
    print("graph loaded:", client.traverse("alice"))
    print("alice -> carol:", client.find_path("alice", "carol"))
    point = db.checkpoint()
    client.delete_edge("bob", "bc")
    print("after unfollow:", client.find_path("alice", "carol"))
    print("at the checkpoint:",
          client.find_path("alice", "carol", at=point))
    db.fail_shard(0)
    print("after shard failover:", client.traverse("alice"))
    print("ordering decisions:", db.ordering_stats())
    return 0


def _cmd_tao(args) -> int:
    from .db import Weaver, WeaverClient, WeaverConfig
    from .workloads import graphs
    from .workloads.runner import run_tao
    from .workloads.tao import TaoWorkload

    db = Weaver(
        WeaverConfig(
            num_gatekeepers=3, num_shards=4, announce_every=args.announce
        )
    )
    client = WeaverClient(db)
    edges = graphs.social_graph(args.vertices, 5, seed=args.seed)
    handles = graphs.load_into_weaver(client, edges)
    pool = [(k.split("->", 1)[0], h) for k, h in handles.items()]
    workload = TaoWorkload(
        graphs.vertices_of(edges),
        edge_pool=pool,
        read_fraction=args.read_fraction,
        seed=args.seed,
    )
    report = run_tao(client, workload, args.ops)
    rows = [
        ("operations", report.operations),
        ("failures", report.failures),
        ("reactive fraction", f"{report.reactive_fraction:.5f}"),
    ] + sorted(report.counts.items())
    print(format_table("TAO workload replay", ["metric", "value"], rows))
    return 0


def _cmd_stats(args) -> int:
    """Short mixed workload, then the ordering fast-path counters."""
    from .db import Weaver, WeaverClient, WeaverConfig
    from .workloads import graphs
    from .workloads.runner import run_tao
    from .workloads.tao import TaoWorkload

    # A sparse announce cadence leaves concurrent stamps for the oracle
    # to refine, so the reactive-path counters move too.
    db = Weaver(
        WeaverConfig(
            num_gatekeepers=3, num_shards=4, announce_every=args.announce
        )
    )
    client = WeaverClient(db)
    edges = graphs.social_graph(args.vertices, 5, seed=args.seed)
    handles = graphs.load_into_weaver(client, edges)
    pool = [(k.split("->", 1)[0], h) for k, h in handles.items()]
    workload = TaoWorkload(
        graphs.vertices_of(edges),
        edge_pool=pool,
        read_fraction=0.9,
        seed=args.seed,
    )
    run_tao(client, workload, args.ops)
    for start, _ in edges[:: max(1, len(edges) // 8)]:
        client.traverse(start)

    if getattr(args, "json", False):
        import json

        print(json.dumps(db.metrics.snapshot(), indent=2, sort_keys=True))
        return 0

    ordering = db.ordering_stats()
    resolved = sum(ordering.values()) or 1
    fastpath = db.fastpath_stats()
    rows = (
        [(k, v) for k, v in sorted(ordering.items())]
        + [("reactive fraction", f"{ordering['reactive'] / resolved:.5f}")]
        + [(k, v) for k, v in sorted(fastpath.items())]
    )
    print(format_table(
        "Ordering fast-path counters", ["counter", "value"], rows
    ))
    return 0


def _cmd_simulate(args) -> int:
    """Run the event-driven deployment with a failure drill."""
    from .db import operations as ops
    from .db.config import WeaverConfig
    from .programs import GetNode
    from .sim.clock import MSEC, USEC
    from .sim.deployment import SimulatedWeaver

    sw = SimulatedWeaver(
        WeaverConfig(num_gatekeepers=args.gatekeepers, num_shards=args.shards),
        tau=args.tau * USEC,
        nop_period=200 * USEC,
        heartbeat_period=5 * MSEC,
    )
    for i in range(args.writes):
        sw.submit_transaction(
            [ops.CreateVertex(f"v{i}")], new_vertices=(f"v{i}",)
        )
        sw.run(300 * USEC)
    sw.run(5 * MSEC)
    print(f"[t={sw.simulator.now * 1000:.1f} ms] committed "
          f"{sw.committed} transactions")
    sw.crash_shard(0)
    print(f"[t={sw.simulator.now * 1000:.1f} ms] shard0 crashed "
          f"(silently — heartbeats just stop)")
    sw.run(60 * MSEC)
    print(f"[t={sw.simulator.now * 1000:.1f} ms] detector recovered it; "
          f"epoch is now {sw.manager.epoch}")
    box = {}
    sw.submit_program(
        GetNode(), "v0", None, callback=lambda r: box.update(r=r)
    )
    sw.run_until_quiet()
    found = bool(box.get("r") and box["r"].results)
    print(f"[t={sw.simulator.now * 1000:.1f} ms] post-recovery read of "
          f"v0: {'ok' if found else 'MISSING'}")
    print(
        f"messages: {sw.announce_messages()} announces, "
        f"{sw.nop_messages()} heartbeats, "
        f"{sw.oracle_messages()} oracle"
    )
    return 0 if found else 1


def _cmd_chaos(args) -> int:
    """Seeded fault-injection run with the strict-serializability check."""
    from .sim.clock import MSEC
    from .workloads.chaos import run_chaos

    report = run_chaos(
        seed=args.seed,
        duration=args.duration * MSEC,
        num_vertices=args.vertices,
        skew=args.skew,
    )
    fault_rows = sorted(report.faults.items()) or [("(none fired)", 0)]
    rows = [
        ("seed", report.seed),
        ("horizon (ms)", round(report.duration * 1000, 1)),
        ("committed", report.committed),
        ("aborted", report.aborted),
        ("reads completed", report.reads_completed),
        ("reads lost to crashes", report.reads_lost),
        ("recoveries", report.recoveries),
        ("stragglers dropped", report.stragglers_dropped),
        ("duplicates discarded", report.duplicates_discarded),
    ] + [(f"fault: {kind}", count) for kind, count in fault_rows] + [
        ("history digest", report.digest[:16]),
        ("violations", len(report.violations)),
    ]
    print(format_table(
        "Chaos run (seeded, reproducible)", ["metric", "value"], rows
    ))
    if report.violations:
        for violation in report.violations:
            print(f"  VIOLATION {violation}")
        return 1
    print("strict serializability: OK "
          "(re-run with the same --seed for the identical history)")
    return 0


def _cmd_soak(args) -> int:
    """Long-running chaos soak with the online checker always on."""
    from .sim.clock import MSEC
    from .workloads.chaos import run_soak

    report = run_soak(
        seed=args.seed,
        transport=args.transport,
        wall_seconds=args.duration if args.chunks is None else None,
        chunks=args.chunks,
        chunk_horizon=args.chunk * MSEC,
        num_vertices=args.vertices,
        skew=args.skew,
        parity=not args.no_parity,
        offline_check=not args.no_offline,
        store=args.store,
        store_cache_bytes=args.store_cache,
    )
    rows = [
        ("seed", report.seed),
        ("transport", report.transport),
        ("store", report.store),
        ("chunks", report.chunks),
        ("wall time (s)", round(report.wall_seconds, 2)),
        ("committed", report.committed),
        ("aborted", report.aborted),
        ("reads completed", report.reads_completed),
        ("throughput (tx/s)", round(report.throughput, 1)),
        ("recoveries", report.recoveries),
        ("watermarks", report.watermarks),
        ("window peak", report.window_peak),
        ("window final", report.window_final),
        ("records pruned", report.pruned),
        ("parity checks", report.parity_checks),
        ("parity failures", report.parity_failures),
        ("online digest", report.digest[:16]),
        ("violations (online)", len(report.online_violations)),
        ("violations (offline)", len(report.offline_violations)),
    ]
    print(format_table(
        "Soak run (online referee attached)", ["metric", "value"], rows
    ))
    for violation in report.online_violations:
        print(f"  VIOLATION (online) {violation}")
    for violation in report.offline_violations:
        print(f"  VIOLATION (offline) {violation}")
    if not report.ok:
        if report.parity_failures:
            print("  PARITY FAILURE: online digest diverged from the "
                  "offline history")
        return 1
    print("strict serializability: OK (checked online, on every prefix)")
    return 0


def _cmd_geo(args) -> int:
    """Geo sweep: deadline fast path vs oracle-only baseline per tau."""
    import json
    import pathlib

    from .sim.clock import MSEC, USEC
    from .workloads.geo import geo_sweep

    taus = [t * USEC for t in args.taus] if args.taus else None
    result = geo_sweep(
        seed=args.seed,
        taus=taus,
        num_regions=args.regions,
        duration=args.duration * MSEC,
    )
    rows = []
    for point in result["points"]:
        fast, base = point["fastpath"], point["baseline"]
        rows.append((
            f"{point['tau'] * 1e6:g}",
            base["oracle_calls"],
            fast["oracle_calls"],
            f"{point['oracle_reduction']:.1f}x",
            fast["deadline_fastpath"],
            round(base["tx_p99"] * 1000, 3),
            round(fast["tx_p99"] * 1000, 3),
        ))
    print(format_table(
        f"Geo sweep: {args.regions} regions, seed {result['seed']} "
        "(oracle calls, baseline vs deadline fast path)",
        ["tau (us)", "oracle base", "oracle fast", "reduction",
         "fastpath wins", "p99 base (ms)", "p99 fast (ms)"],
        rows,
    ))
    violations = sum(
        point[mode]["violations"]
        for point in result["points"]
        for mode in ("fastpath", "baseline")
    )
    if args.output:
        out = pathlib.Path(args.output)
        out.write_text(json.dumps(result, indent=2) + "\n")
        print(f"wrote {out}")
    if violations or not result["all_consistent"]:
        print(f"  VIOLATION: {violations} referee violations; "
              f"all_consistent={result['all_consistent']}")
        return 1
    print("strict serializability: OK on every point, both modes "
          "(referee + digest parity)")
    return 0


def _cmd_trace(args) -> int:
    """Deterministically re-create a chaos run and print one trace.

    Chaos runs are bit-for-bit reproducible from the seed, so the span
    stream of any past run can be regenerated on demand — no trace
    storage needed.  Without a trace id, ``--list`` shows what's in the
    ring buffer.
    """
    from .obs import assemble_chain
    from .sim.clock import MSEC
    from .workloads.chaos import run_chaos

    report = run_chaos(seed=args.seed, duration=args.duration * MSEC)
    tracer = report.tracer
    if args.list or args.trace_id is None:
        ids = tracer.trace_ids()
        if args.kind:
            # Filter on the assembled chain, not the raw spans, so kinds
            # joined in by id-matching (oracle.decide) are findable too.
            ids = [
                tid for tid in ids
                if any(
                    s.kind == args.kind
                    for s in assemble_chain(tracer, tid)
                )
            ]
        print(f"# seed={args.seed} traces buffered: {len(ids)}")
        for tid in ids:
            kinds = [s.kind for s in tracer.spans(trace_id=tid)]
            print(f"  {tid}: {' -> '.join(kinds)}")
        return 0
    chain = assemble_chain(tracer, args.trace_id)
    if not chain:
        print(f"trace {args.trace_id} not found (try --list)")
        return 1
    print(f"# trace {args.trace_id} (seed={args.seed}): {len(chain)} spans")
    for span in chain:
        attrs = ", ".join(
            f"{k}={v}" for k, v in span.attrs if k not in ("writes", "reads")
        )
        print(
            f"  t={span.at * 1000:9.4f}ms  {span.kind:<18} "
            f"{span.node:<8} {attrs}"
        )
    return 0


def _cmd_bench(args) -> int:
    if args.transport == "process":
        return _bench_process_transport(args)
    from .bench import harness

    wanted = FIGURES if args.figure == "all" else (args.figure,)
    for figure in wanted:
        _run_figure(harness, figure)
    return 0


def _bench_process_transport(args) -> int:
    """Fig 13-style shard scaling over the real multiprocess transport,
    twin-checked against the deterministic simulator."""
    from .bench.transport_bench import scaling_experiment

    result = scaling_experiment(
        num_vertices=args.vertices, num_queries=args.queries
    )
    print(format_table(
        "Process transport: traversal throughput vs worker count",
        ["workers", "queries/s", "pipelined", "bytes sent"],
        [
            (
                p["shards"],
                round(p["throughput_qps"], 1),
                p["transport"]["requests_pipelined"],
                p["transport"]["bytes_sent"],
            )
            for p in result["points"]
        ],
    ))
    last = result["shard_counts"][-1]
    print(f"cpu_count: {result['cpu_count']} "
          f"(scaling needs real parallel cores)")
    print(f"scaling 1→{last}: {result['scaling']:.2f}x")
    print(f"results_equal vs simulated twin: {result['results_equal']}")
    return 0 if result["results_equal"] else 1


def _run_figure(harness, figure: str) -> None:
    if figure == "fig7":
        result = harness.experiment_fig7(functional_scale=0.01)
        print(format_table(
            "Fig 7: block query latency",
            ["block", "txs", "CoinGraph (s)", "BC.info (s)", "speedup"],
            [(h, n, round(cg, 4), round(bc, 3), round(sp, 1))
             for h, n, cg, bc, sp in result.rows()],
        ))
    elif figure == "fig8":
        result = harness.experiment_fig8()
        print(format_table(
            "Fig 8: block render throughput",
            ["block", "queries/s", "vertex reads/s"],
            [(b, round(t, 1), round(r)) for b, t, r in result.rows()],
        ))
    elif figure == "fig9":
        for fraction, cw, ct in ((0.998, 50, 60), (0.75, 45, 50)):
            run = harness.experiment_fig9(
                fraction, cw, ct, total_ops=6000,
                num_vertices=200, functional_ops=200,
            )
            print(format_table(
                f"Fig 9: throughput at {fraction:.1%} reads",
                ["system", "tx/s"],
                [("Weaver", round(run.weaver_throughput)),
                 ("Titan", round(run.titan_throughput))],
            ))
            print(f"speedup: {run.speedup:.1f}x; "
                  f"reactive: {run.reactive_fraction:.5f}")
    elif figure == "fig10":
        runs = harness.experiment_fig10(total_ops=4000)
        rows = []
        for fraction, run in sorted(runs.items(), reverse=True):
            rows.append(
                (
                    f"Weaver ({fraction:.1%} reads)",
                    round(run.weaver_latencies.median * 1000, 2),
                    round(run.weaver_latencies.quantile(99) * 1000, 2),
                )
            )
            rows.append(
                (
                    f"Titan ({fraction:.1%} reads)",
                    round(run.titan_latencies.median * 1000, 2),
                    round(run.titan_latencies.quantile(99) * 1000, 2),
                )
            )
        print(format_table(
            "Fig 10: transaction latency",
            ["system (workload)", "p50 (ms)", "p99 (ms)"],
            rows,
        ))
    elif figure == "fig11":
        result = harness.experiment_fig11()
        print(format_table(
            "Fig 11: traversal latency",
            ["system", "mean (ms)"],
            [("Weaver", round(result.weaver.mean * 1000, 3)),
             ("GraphLab async",
              round(result.graphlab_async.mean * 1000, 3)),
             ("GraphLab sync",
              round(result.graphlab_sync.mean * 1000, 3))],
        ))
    elif figure == "fig12":
        result = harness.experiment_fig12()
        print(format_table(
            "Fig 12: gatekeeper scaling",
            ["gatekeepers", "tx/s"],
            [(n, round(t)) for n, t in result.rows()],
        ))
    elif figure == "fig13":
        result = harness.experiment_fig13()
        print(format_table(
            "Fig 13: shard scaling",
            ["shards", "tx/s"],
            [(n, round(t)) for n, t in result.rows()],
        ))
    elif figure == "fig14":
        result = harness.experiment_fig14()
        print(format_table(
            "Fig 14: coordination overhead vs tau",
            ["tau (s)", "announce/query", "oracle/query"],
            [(f"{tau:g}", round(a, 4), round(o, 4))
             for tau, a, o in result.rows()],
        ))
    else:
        raise ValueError(f"unknown figure {figure!r}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Weaver (VLDB 2016) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="version and defaults").set_defaults(
        func=_cmd_info
    )
    sub.add_parser("demo", help="a quick API tour").set_defaults(
        func=_cmd_demo
    )

    tao = sub.add_parser("tao", help="replay the Table 1 workload")
    tao.add_argument("--ops", type=int, default=500)
    tao.add_argument("--vertices", type=int, default=200)
    tao.add_argument("--read-fraction", type=float, default=0.998)
    tao.add_argument("--announce", type=int, default=4)
    tao.add_argument("--seed", type=int, default=42)
    tao.set_defaults(func=_cmd_tao)

    stats = sub.add_parser(
        "stats", help="ordering fast-path counters after a mixed workload"
    )
    stats.add_argument("--ops", type=int, default=400)
    stats.add_argument("--vertices", type=int, default=150)
    stats.add_argument("--announce", type=int, default=40)
    stats.add_argument("--seed", type=int, default=42)
    stats.add_argument(
        "--json", action="store_true",
        help="emit the full metrics-registry snapshot as JSON",
    )
    stats.set_defaults(func=_cmd_stats)

    trace = sub.add_parser(
        "trace",
        help="re-run a seeded chaos run and print one trace's span chain",
    )
    trace.add_argument("trace_id", type=int, nargs="?", default=None,
                       help="trace id to reconstruct (omit with --list)")
    trace.add_argument("--seed", type=int, default=1)
    trace.add_argument("--duration", type=float, default=20,
                       help="chaos-phase horizon in milliseconds")
    trace.add_argument("--list", action="store_true",
                       help="list buffered trace ids instead")
    trace.add_argument("--kind", default=None,
                       help="with --list, only traces containing this "
                            "span kind")
    trace.set_defaults(func=_cmd_trace)

    chaos = sub.add_parser(
        "chaos",
        help="seeded fault injection + strict-serializability check",
    )
    chaos.add_argument("--seed", type=int, default=1)
    chaos.add_argument("--duration", type=float, default=60,
                       help="chaos-phase horizon in milliseconds")
    chaos.add_argument("--vertices", type=int, default=12)
    chaos.add_argument("--skew", type=float, default=0.8,
                       help="Zipf skew of write/read targets")
    chaos.set_defaults(func=_cmd_chaos)

    soak = sub.add_parser(
        "soak",
        help="long-running chaos soak, online checker always on",
    )
    soak.add_argument("--seed", type=int, default=1)
    soak.add_argument("--duration", type=float, default=8.0,
                      help="wall-clock run time in seconds")
    soak.add_argument("--chunks", type=int, default=None,
                      help="run exactly N chunks instead of --duration")
    soak.add_argument("--transport", choices=("sim", "process"),
                      default="sim")
    soak.add_argument("--store", choices=("memory", "sqlite"),
                      default="memory",
                      help="backing store: in-memory version chains or "
                           "the durable SQLite/WAL backend (temporary "
                           "database, removed after the run)")
    soak.add_argument("--store-cache", type=int, default=None,
                      help="sqlite page-cache budget in bytes (small "
                           "values soak the larger-than-RAM paths)")
    soak.add_argument("--chunk", type=float, default=30,
                      help="sim chunk horizon in milliseconds")
    soak.add_argument("--vertices", type=int, default=12)
    soak.add_argument("--skew", type=float, default=0.8,
                      help="Zipf skew of write/read targets")
    soak.add_argument("--no-parity", action="store_true",
                      help="skip the offline History twin (faster, "
                           "less memory on very long runs)")
    soak.add_argument("--no-offline", action="store_true",
                      help="skip the end-of-run offline HistoryChecker "
                           "sweep — it is quadratic in history size, so "
                           "long soaks should rely on the online verdict")
    soak.set_defaults(func=_cmd_soak)

    geo = sub.add_parser(
        "geo",
        help="geo-distributed sweep: deadline fast path vs oracle-only",
    )
    geo.add_argument("--seed", type=int, default=7)
    geo.add_argument("--regions", type=int, default=3,
                     help="regions = gatekeepers = shards (2 or 3)")
    geo.add_argument("--duration", type=float, default=40.0,
                     help="simulated horizon per run, milliseconds")
    geo.add_argument("--taus", type=float, nargs="*", default=None,
                     metavar="USEC",
                     help="tau values in microseconds "
                          "(default: 50 200 800)")
    geo.add_argument("--output", default=None,
                     help="write the JSON-ready sweep here "
                          "(e.g. BENCH_geo.json)")
    geo.set_defaults(func=_cmd_geo)

    bench = sub.add_parser("bench", help="regenerate a paper figure")
    bench.add_argument(
        "--figure", choices=FIGURES + ("all",), default="fig7"
    )
    bench.add_argument(
        "--transport", choices=("sim", "process"), default="sim",
        help="process: shard-scaling over real worker processes, "
             "twin-checked against the simulator (ignores --figure)",
    )
    bench.add_argument("--vertices", type=int, default=200,
                       help="graph size for --transport=process")
    bench.add_argument("--queries", type=int, default=20,
                       help="timed traversals for --transport=process")
    bench.set_defaults(func=_cmd_bench)

    simulate = sub.add_parser(
        "simulate",
        help="event-driven deployment with a live failure drill",
    )
    simulate.add_argument("--gatekeepers", type=int, default=2)
    simulate.add_argument("--shards", type=int, default=2)
    simulate.add_argument("--tau", type=float, default=200,
                          help="announce period in microseconds")
    simulate.add_argument("--writes", type=int, default=20)
    simulate.set_defaults(func=_cmd_simulate)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a closed reader (e.g. `repro info | head`).
        import os

        try:
            os.close(sys.stdout.fileno())
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
