"""Memoization of node-program results at vertices (section 4.6).

Weaver lets applications memoize node-program results and reuse them in
later executions, provided the application can detect that the graph
changed underneath the cached value.  This module implements that
contract:

* :class:`ProgramCache` stores results keyed by (program, start vertex,
  params key);
* every cached entry records the set of vertices the program read and a
  per-vertex *change counter* captured at caching time;
* the database bumps a vertex's change counter on every write to it, so a
  lookup revalidates by comparing counters — any structural change along
  the cached read set invalidates the entry, which is exactly the
  invalidate-on-change discipline the paper describes for cached paths.

The paper's evaluation disables this mechanism; ablation benchmark A1
measures what it buys and what invalidation costs.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Hashable, Iterable, Optional, Tuple

CacheKey = Tuple[str, str, Hashable]


class ChangeTracker:
    """Monotone per-vertex write counters, bumped by the database."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}

    def bump(self, vertex: str) -> None:
        self._counters[vertex] = self._counters.get(vertex, 0) + 1

    def bump_all(self, vertices: Iterable[str]) -> None:
        for vertex in vertices:
            self.bump(vertex)

    def version(self, vertex: str) -> int:
        return self._counters.get(vertex, 0)

    def snapshot(self, vertices: Iterable[str]) -> Dict[str, int]:
        return {v: self.version(v) for v in vertices}

    def unchanged(self, observed: Dict[str, int]) -> bool:
        return all(
            self.version(vertex) == counter
            for vertex, counter in observed.items()
        )

    def reset(self) -> None:
        """Forget all counters (epoch change: cached evidence recorded
        against the old epoch's applies must not validate new reads)."""
        self._counters.clear()


class CacheEntry:
    """One memoized result plus its validity evidence."""

    __slots__ = ("value", "observed", "reads")

    def __init__(self, value: Any, observed: Dict[str, int]):
        self.value = value
        self.observed = observed
        self.reads = len(observed)


class ProgramCache:
    """An LRU cache of node-program results with change-based validity."""

    def __init__(self, tracker: ChangeTracker, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._tracker = tracker
        self._capacity = capacity
        self._entries: "OrderedDict[CacheKey, CacheEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def key(program_name: str, start: str, params_key: Hashable) -> CacheKey:
        return (program_name, start, params_key)

    def get(self, key: CacheKey) -> Optional[Any]:
        """The cached value, or None when absent or stale.

        Stale entries (any vertex in the read set changed since caching)
        are discarded on discovery — the application-driven invalidation
        of section 4.6.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if not self._tracker.unchanged(entry.observed):
            del self._entries[key]
            self.invalidations += 1
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry.value

    def put(self, key: CacheKey, value: Any, read_set: Iterable[str]) -> None:
        """Memoize ``value``, remembering the current change counters of
        every vertex the program read."""
        self._entries[key] = CacheEntry(
            value, self._tracker.snapshot(read_set)
        )
        self._entries.move_to_end(key)
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)

    def invalidate(self, key: CacheKey) -> None:
        """Drop one entry whose validity was refuted externally (the
        shard-resident path revalidates remote read-set fragments with
        peer counter checks the local tracker cannot see)."""
        if self._entries.pop(key, None) is not None:
            self.invalidations += 1

    def clear(self) -> None:
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
