"""Heavier analysis node programs (section 2.3's "wide array of graph
algorithms").

These complement the stock library with the algorithm families the
paper names — label propagation, connected components, graph search —
plus triangle counting and weighted shortest paths, all expressed in
the same scatter-gather node-program model and all running on one
consistent snapshot.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Dict, Optional

from .framework import NodeProgram, ProgramResult


class KHopNeighborhood(NodeProgram):
    """Collect every vertex within ``params.k`` hops, with its depth."""

    name = "k_hop_neighborhood"

    def init_state(self):
        return SimpleNamespace(depth=None)

    def run(self, node, params, ctx):
        depth = getattr(params, "depth", 0)
        state = node.prog_state
        if state.depth is not None and state.depth <= depth:
            return ()
        state.depth = depth
        ctx.emit((node.handle, depth))
        if depth >= params.k:
            return ()
        next_params = SimpleNamespace(k=params.k, depth=depth + 1)
        return [(edge.nbr, next_params) for edge in node.neighbors]


class LabelPropagation(NodeProgram):
    """Synchronous-ish label propagation for community detection.

    Every vertex starts labeled with itself; on each visit it adopts the
    smallest label seen from its in-propagating neighbours and, if its
    label improved, pushes it onward.  On a static snapshot this
    converges to the minimum label per weakly-propagated region (for
    out-edge propagation: per reachable-closure from minima), which is
    exactly the connected-component labeling the paper groups under
    "label propagation" workloads.
    """

    name = "label_propagation"

    def init_state(self):
        return SimpleNamespace(label=None)

    def run(self, node, params, ctx):
        state = node.prog_state
        incoming = getattr(params, "label", node.handle)
        own = state.label if state.label is not None else node.handle
        best = min(own, incoming)
        if state.label is not None and best >= state.label:
            return ()
        state.label = best
        ctx.emit((node.handle, best))
        next_params = SimpleNamespace(label=best)
        return [(edge.nbr, next_params) for edge in node.neighbors]

    @staticmethod
    def final_labels(result: ProgramResult) -> Dict[str, str]:
        """The last emitted label per vertex (its converged value)."""
        labels: Dict[str, str] = {}
        for handle, label in result.results:
            labels[handle] = label
        return labels


class ComponentSize(NodeProgram):
    """Size of the reachable set from the start vertex (connected
    component under out-edge reachability)."""

    name = "component_size"

    def init_state(self):
        return SimpleNamespace(visited=False)

    def run(self, node, params, ctx):
        if node.prog_state.visited:
            return ()
        node.prog_state.visited = True
        ctx.emit(node.handle)
        return [(edge.nbr, None) for edge in node.neighbors]

    @staticmethod
    def size(result: ProgramResult) -> int:
        return len(result.results)


class TriangleCount(NodeProgram):
    """Count directed triangles through the start vertex.

    Phase "center": record the neighbour set and fan out.  Phase
    "probe": each neighbour reports edges back into the set; a triangle
    a -> b -> c -> a contributes via b's edge to c when probed from a.
    """

    name = "triangle_count"

    def run(self, node, params, ctx):
        phase = getattr(params, "phase", "center")
        if phase == "center":
            members = frozenset(e.nbr for e in node.neighbors)
            probe = SimpleNamespace(
                phase="probe", members=members, center=node.handle
            )
            return [(nbr, probe) for nbr in members]
        hits = sum(
            1
            for e in node.neighbors
            if e.nbr in params.members and e.nbr != node.handle
        )
        ctx.emit(hits)
        return ()

    @staticmethod
    def total(result: ProgramResult) -> int:
        """Directed 2-paths closing back into the neighbour set."""
        return sum(result.results)


class WeightedShortestPath(NodeProgram):
    """Dijkstra as a node program, using an edge property as weight.

    The executor's FIFO frontier does not order by distance, so the
    program re-relaxes: a vertex propagates whenever its best-known
    distance improves.  Converges on any snapshot with non-negative
    weights; emits (target, distance) every time the target improves —
    the last emission is the answer.
    """

    name = "weighted_shortest_path"

    def __init__(self, weight_prop: str = "weight"):
        self.weight_prop = weight_prop

    def init_state(self):
        return SimpleNamespace(dist=None)

    def run(self, node, params, ctx):
        dist = getattr(params, "dist", 0.0)
        state = node.prog_state
        if state.dist is not None and state.dist <= dist:
            return ()
        state.dist = dist
        if node.handle == params.target:
            ctx.emit((node.handle, dist))
            return ()
        hops = []
        for edge in node.neighbors:
            weight = edge.get_property(self.weight_prop, 1.0)
            hops.append(
                (
                    edge.nbr,
                    SimpleNamespace(target=params.target, dist=dist + weight),
                )
            )
        return hops

    @staticmethod
    def distance(result: ProgramResult) -> Optional[float]:
        if not result.results:
            return None
        return min(dist for _, dist in result.results)


class PushPageRank(NodeProgram):
    """Residual-pushing PageRank over out-edges.

    The classic push formulation (Andersen-Chung-Lang style) fits the
    node-program model naturally: each vertex accumulates ``rank`` and
    forwards ``damping * residual / out_degree`` to its neighbours,
    revisiting them until residuals fall under ``epsilon``.  Run from a
    seed vertex it computes personalized PageRank; final scores live in
    the per-vertex program state (``result.states``).
    """

    name = "push_pagerank"

    def __init__(self, damping: float = 0.85, epsilon: float = 1e-4):
        if not 0 < damping < 1:
            raise ValueError("damping must be in (0, 1)")
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.damping = damping
        self.epsilon = epsilon

    def init_state(self):
        return SimpleNamespace(rank=0.0, residual=0.0)

    def run(self, node, params, ctx):
        state = node.prog_state
        state.residual += getattr(params, "mass", 0.0)
        if state.residual < self.epsilon:
            return ()
        mass = state.residual
        state.residual = 0.0
        state.rank += (1 - self.damping) * mass
        neighbors = node.neighbors
        if not neighbors:
            state.rank += self.damping * mass  # dangling: keep the mass
            return ()
        share = self.damping * mass / len(neighbors)
        push = SimpleNamespace(mass=share)
        return [(edge.nbr, push) for edge in neighbors]

    @staticmethod
    def scores(result: ProgramResult) -> Dict[str, float]:
        return {
            handle: state.rank
            for handle, state in result.states.items()
            if state.rank > 0
        }


class DegreeHistogram(NodeProgram):
    """Out-degree histogram over the k-hop neighbourhood of the start."""

    name = "degree_histogram"

    def init_state(self):
        return SimpleNamespace(visited=False)

    def run(self, node, params, ctx):
        if node.prog_state.visited:
            return ()
        node.prog_state.visited = True
        ctx.emit(node.out_degree())
        depth = getattr(params, "depth", 0)
        k = getattr(params, "k", None)
        if k is not None and depth >= k:
            return ()
        next_params = SimpleNamespace(k=k, depth=depth + 1)
        return [(edge.nbr, next_params) for edge in node.neighbors]

    @staticmethod
    def histogram(result: ProgramResult) -> Dict[int, int]:
        hist: Dict[int, int] = {}
        for degree in result.results:
            hist[degree] = hist.get(degree, 0) + 1
        return hist
