"""Per-query program state and the garbage-collection watermark.

Node programs are stateful (section 2.3): a traversal stores a visited
bit per vertex, a shortest-path query stores distances.  That state lives
outside the graph, keyed by query id, and is garbage collected when the
query finishes on all servers (section 4.5).  The watermark registry
tracks the timestamps of all in-flight programs; its minimum is the
boundary below which multi-version state may be reclaimed.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..core.vclock import Ordering, VectorTimestamp
from ..graph.properties import Comparator, vclock_compare


class ProgramContext:
    """Everything one running node program accumulates.

    * ``states`` — per-vertex ``prog_state`` objects, created lazily and
      persisted across repeated visits of the same vertex;
    * ``results`` — values the program emitted;
    * ``halted`` — set by :meth:`halt` for early termination (e.g. a
      reachability query that found its target).
    """

    def __init__(self, query_id: int, ts: VectorTimestamp):
        self.query_id = query_id
        self.ts = ts
        self.states: Dict[str, Any] = {}
        self.results: List[Any] = []
        self.halted = False
        self.vertices_visited = 0
        self.hops = 0
        # Scatter-gather rounds driven (0 on the sequential shim path).
        self.rounds = 0
        # Every vertex handle the program touched (visible or not): the
        # cache's read set for change-based invalidation (section 4.6).
        self.read_set: set = set()

    def state_for(self, handle: str, factory: Callable[[], Any]) -> Any:
        if handle not in self.states:
            self.states[handle] = factory()
        return self.states[handle]

    def emit(self, value: Any) -> None:
        self.results.append(value)

    def halt(self) -> None:
        self.halted = True


class WatermarkRegistry:
    """Tracks in-flight program timestamps for GC (section 4.5).

    ``start``/``finish`` bracket each program; :meth:`watermark` returns a
    timestamp below which no active program can read — the minimum of the
    active set under the supplied comparator, or ``fallback`` when the
    system is idle.
    """

    def __init__(self, cmp: Comparator = vclock_compare):
        self._active: Dict[int, VectorTimestamp] = {}
        self._cmp = cmp
        self.completed = 0

    def __len__(self) -> int:
        return len(self._active)

    def start(self, query_id: int, ts: VectorTimestamp) -> None:
        self._active[query_id] = ts

    def finish(self, query_id: int) -> None:
        self._active.pop(query_id, None)
        self.completed += 1

    def watermark(
        self, fallback: Optional[VectorTimestamp] = None
    ) -> Optional[VectorTimestamp]:
        """The oldest active program timestamp (or ``fallback`` if idle).

        State strictly older than this is invisible to every current and
        future query — future queries get still-newer timestamps — so it
        may be reclaimed.
        """
        if not self._active:
            return fallback
        oldest = None
        for ts in self._active.values():
            if oldest is None:
                oldest = ts
            elif self._cmp(ts, oldest) is Ordering.BEFORE:
                oldest = ts
        return oldest
