"""Stock node programs: the queries the paper's evaluation runs.

Includes the vertex-local TAO operations (get_node, get_edges,
count_edges — Table 1 and Fig 12), traversal queries (BFS / reachability —
Figs 1, 11), local clustering coefficient (Fig 13), and the CoinGraph
block-render program (Figs 7, 8), plus generic path discovery used by the
network-topology example.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Any, Optional

from .framework import NodeProgram


class GetNode(NodeProgram):
    """Read one vertex: its properties and out-degree (TAO get_node)."""

    name = "get_node"

    def run(self, node, params, ctx):
        ctx.emit(
            {
                "handle": node.handle,
                "properties": node.properties(),
                "out_degree": node.out_degree(),
            }
        )
        return ()


class GetEdges(NodeProgram):
    """Read a vertex's out-edges, optionally filtered by a property key
    (TAO get_edges / assoc_get)."""

    name = "get_edges"

    def run(self, node, params, ctx):
        wanted: Optional[str] = getattr(params, "edge_prop", None)
        edges = []
        for edge in node.neighbors:
            if wanted is not None and not edge.check(wanted):
                continue
            edges.append(
                {
                    "handle": edge.handle,
                    "nbr": edge.nbr,
                    "properties": edge.properties(),
                }
            )
        ctx.emit(edges)
        return ()


class CountEdges(NodeProgram):
    """Count a vertex's out-edges (TAO assoc_count)."""

    name = "count_edges"

    def run(self, node, params, ctx):
        wanted: Optional[str] = getattr(params, "edge_prop", None)
        if wanted is None:
            ctx.emit(node.out_degree())
        else:
            ctx.emit(sum(1 for e in node.neighbors if e.check(wanted)))
        return ()


class Bfs(NodeProgram):
    """The paper's Fig 3 program: BFS over edges carrying a property.

    Emits each visited vertex handle in visit order.  ``params`` may carry
    ``edge_prop`` (only traverse matching edges) and ``max_depth``.
    """

    name = "bfs"
    # Revisits are no-ops (visited bit), so same-round duplicate hops
    # with identical params can be dropped before resolution.
    dedup_hops = True

    def init_state(self):
        return SimpleNamespace(visited=False)

    def run(self, node, params, ctx):
        if node.prog_state.visited:
            return ()
        node.prog_state.visited = True
        ctx.emit(node.handle)
        depth = getattr(params, "depth", 0)
        max_depth = getattr(params, "max_depth", None)
        if max_depth is not None and depth >= max_depth:
            return ()
        edge_prop = getattr(params, "edge_prop", None)
        hops = []
        next_params = SimpleNamespace(
            edge_prop=edge_prop, depth=depth + 1, max_depth=max_depth
        )
        for edge in node.neighbors:
            if edge_prop is not None and not edge.check(edge_prop):
                continue
            hops.append((edge.nbr, next_params))
        return hops


class Reachability(NodeProgram):
    """Is ``params.target`` reachable?  Emits True and halts on success;
    an empty result set means unreachable (Fig 11's workload)."""

    name = "reachability"
    dedup_hops = True

    def init_state(self):
        return SimpleNamespace(visited=False)

    def run(self, node, params, ctx):
        if node.handle == params.target:
            ctx.emit(True)
            ctx.halt()
            return ()
        if node.prog_state.visited:
            return ()
        node.prog_state.visited = True
        return [(edge.nbr, params) for edge in node.neighbors]


class ShortestPath(NodeProgram):
    """Unweighted shortest path length via BFS ordering.

    Emits the distance when the target is first reached (which, in BFS
    visit order, is minimal).
    """

    name = "shortest_path"
    dedup_hops = True

    def init_state(self):
        return SimpleNamespace(dist=None)

    def run(self, node, params, ctx):
        dist = getattr(params, "dist", 0)
        if node.prog_state.dist is not None:
            return ()
        node.prog_state.dist = dist
        if node.handle == params.target:
            ctx.emit(dist)
            ctx.halt()
            return ()
        next_params = SimpleNamespace(target=params.target, dist=dist + 1)
        return [(edge.nbr, next_params) for edge in node.neighbors]


class PathDiscovery(NodeProgram):
    """Find one path to ``params.target``; emits the vertex list.

    The network-controller motivating example (Fig 1): under transactions
    the returned path always existed at the snapshot, never a chimera of
    pre- and post-update states.
    """

    name = "path_discovery"
    # Duplicate (vertex, params) hops imply identical inbound paths;
    # dropping them cannot change which path is discovered first.
    dedup_hops = True

    def init_state(self):
        return SimpleNamespace(visited=False)

    def run(self, node, params, ctx):
        path = list(getattr(params, "path", ())) + [node.handle]
        if node.handle == params.target:
            ctx.emit(path)
            ctx.halt()
            return ()
        if node.prog_state.visited:
            return ()
        node.prog_state.visited = True
        edge_prop = getattr(params, "edge_prop", None)
        hops = []
        for edge in node.neighbors:
            if edge_prop is not None and not edge.check(edge_prop):
                continue
            hops.append(
                (
                    edge.nbr,
                    SimpleNamespace(
                        target=params.target,
                        path=tuple(path),
                        edge_prop=edge_prop,
                    ),
                )
            )
        return hops


class ClusteringCoefficient(NodeProgram):
    """Local clustering coefficient (the Fig 13 shard-scaling workload).

    Fans out one hop from the centre to each neighbour, which reports how
    many of its own out-edges stay inside the neighbour set; the query
    "returns to the original vertex" in aggregate form via
    :meth:`aggregate`.
    """

    name = "clustering_coefficient"

    def run(self, node, params, ctx):
        phase = getattr(params, "phase", "center")
        if phase == "center":
            neighbors = frozenset(e.nbr for e in node.neighbors)
            ctx.emit(("k", len(neighbors)))
            if len(neighbors) < 2:
                return ()
            fan_params = SimpleNamespace(phase="count", members=neighbors)
            return [(nbr, fan_params) for nbr in neighbors]
        count = sum(1 for e in node.neighbors if e.nbr in params.members)
        ctx.emit(("links", count))
        return ()

    @staticmethod
    def aggregate(result) -> float:
        """Combine emissions into the coefficient links / (k * (k - 1))."""
        k = 0
        links = 0
        for kind, value in result.results:
            if kind == "k":
                k = value
            else:
                links += value
        if k < 2:
            return 0.0
        return links / (k * (k - 1))


class BlockRender(NodeProgram):
    """CoinGraph's block query (Figs 7, 8): from a block vertex, read
    every Bitcoin transaction vertex the block's edges point to."""

    name = "block_render"

    def run(self, node, params, ctx):
        phase = getattr(params, "phase", "block")
        if phase == "block":
            ctx.emit(
                {
                    "block": node.handle,
                    "header": node.properties(),
                    "n_tx": node.out_degree(),
                }
            )
            tx_params = SimpleNamespace(phase="tx")
            return [(e.nbr, tx_params) for e in node.neighbors]
        ctx.emit({"tx": node.handle, "data": node.properties()})
        return ()


class CollectReachable(NodeProgram):
    """Emit every vertex reachable from the start (connected-component
    style exploration; used by taint-tracking-like analyses)."""

    name = "collect_reachable"
    dedup_hops = True

    def init_state(self):
        return SimpleNamespace(visited=False)

    def run(self, node, params, ctx):
        if node.prog_state.visited:
            return ()
        node.prog_state.visited = True
        ctx.emit(node.handle)
        return [(edge.nbr, params) for edge in node.neighbors]


def params(**kwargs: Any) -> SimpleNamespace:
    """Convenience constructor for program parameters."""
    return SimpleNamespace(**kwargs)


def _build_registry() -> dict:
    """Name → class for every configuration-free stock program.

    The shard-resident path ships a program *by name* and the worker
    instantiates it locally, so only classes whose instances carry no
    constructor state are eligible — a ``WeightedShortestPath`` built
    with a custom ``weight_prop`` would silently lose its configuration.
    Classes defining their own ``__init__`` are therefore excluded, and
    the client falls back to image-pull execution for them.
    """
    from . import analytics

    registry = {}
    for module in (globals(), vars(analytics)):
        for value in list(module.values()):
            if (
                isinstance(value, type)
                and issubclass(value, NodeProgram)
                and value is not NodeProgram
                and value.__init__ is object.__init__
            ):
                registry[value.name] = value
    return registry


#: Programs eligible for shard-resident execution (ship-by-name).
PROGRAM_REGISTRY = _build_registry()


def resident_eligible(program: NodeProgram) -> bool:
    """True when ``program`` can be reconstructed at a shard from its
    name alone: a stock class with no instance configuration."""
    return (
        type(program) is PROGRAM_REGISTRY.get(program.name)
        and not vars(program)
    )
