"""The node-program execution engine (sections 2.3, 4.1).

A node program is a vertex-level computation in the scatter-gather style:
it receives a read-only :class:`~repro.graph.mvgraph.VertexView` (bound to
the program's snapshot timestamp) plus parameters from the previous hop,
reads the vertex's edges and attributes, may mutate its per-query
``prog_state``, emit results, and returns the list of (vertex, params)
pairs to visit next.  A vertex may be visited any number of times; the
application directs all propagation.

The executor is routing-agnostic: it pulls vertices through a resolver
supplied by the database layer, which is where shard routing and the
wait-for-preceding-transactions logic live.  This keeps the engine
testable against a bare in-memory graph.  Two resolver shapes are
supported:

* a plain callable ``resolve(handle) -> Optional[VertexView]`` drives the
  seed per-vertex loop (bare-graph tests, reference comparisons);
* an object additionally exposing ``resolve_many(handles) -> dict``
  (e.g. :class:`~repro.programs.routing.ShardSnapshotResolver`) switches
  the executor to **round-based scatter-gather**: the frontier is
  processed one BFS round at a time and each round's next-hops resolve as
  one batch, which is what lets the routing layer group them by owning
  shard and reuse one snapshot (and its comparison memo) per shard for
  the whole traversal — the paper's shard-to-shard batch propagation.

Both paths visit vertices in the same order and produce identical
results: a round is exactly the contiguous run of same-depth entries the
sequential deque would pop.
"""

from __future__ import annotations

from collections import deque
from types import SimpleNamespace
from typing import Any, Callable, Dict, Hashable, Iterable, List, Optional, Tuple

from ..core.vclock import VectorTimestamp
from ..errors import ProgramError
from ..graph.mvgraph import VertexView
from .state import ProgramContext

NextHops = Iterable[Tuple[str, Any]]
Resolver = Callable[[str], Optional[VertexView]]


class NodeProgram:
    """Base class for node programs.

    Subclasses override :meth:`run` and usually :meth:`init_state`.  The
    paper's BFS example (Fig 3) maps directly::

        class Bfs(NodeProgram):
            def init_state(self):
                return SimpleNamespace(visited=False)

            def run(self, node, params, ctx):
                nxt = []
                if not node.prog_state.visited:
                    for edge in node.neighbors:
                        if edge.check(params.edge_prop):
                            nxt.append((edge.nbr, params))
                    node.prog_state.visited = True
                return nxt
    """

    #: Stable name used for caching and reporting.
    name = "node_program"

    #: Declares that revisiting a vertex with *identical params* in the
    #: same round is a no-op (visited-bit traversals), so the executor may
    #: drop same-round duplicate hops before resolving them.  Off by
    #: default: the framework promises "a vertex may be visited any
    #: number of times", and programs that emit per visit rely on it.
    dedup_hops = False

    def init_state(self) -> Any:
        """A fresh per-vertex ``prog_state`` (default: None)."""
        return None

    def run(
        self, node: VertexView, params: Any, ctx: ProgramContext
    ) -> NextHops:
        raise NotImplementedError

    def on_missing(self, handle: str, params: Any, ctx: ProgramContext) -> None:
        """Hook invoked when a next-hop vertex is invisible at the
        snapshot (deleted concurrently, or a dangling edge); default is
        to skip it silently, which is what traversals want."""


class ProgramStats:
    """Counters for the scatter-gather execution pipeline.

    Absorbed into the metrics registry under ``program.*`` (see
    ``repro.obs.collect``).  The headline pair is ``snapshots_created``
    vs ``snapshot_reuse_hits``: per query the batched path constructs
    O(shards) snapshot views where the seed path constructed O(vertices
    visited), and every resolution served by an already-built view counts
    as one reuse hit.
    """

    def __init__(self) -> None:
        self.executions = 0            # programs driven to completion
        self.sequential_executions = 0  # via the per-vertex compat shim
        self.batch_rounds = 0          # scatter-gather rounds processed
        self.shard_batches = 0         # (shard, round) batch resolutions
        self.vertices_resolved = 0     # resolutions through the batch path
        self.snapshots_created = 0     # snapshot views built
        self.snapshot_reuse_hits = 0   # resolutions on a reused view
        self.dedup_hits = 0            # same-round duplicate hops dropped
        self.round_messages_saved = 0  # per-vertex msgs a batch replaced
        self.readiness_fastpath_hits = 0  # storms skipped: already ready
        self.readiness_storms = 0      # announce+NOP storms performed

    def reset(self) -> None:
        self.__init__()


class ProgramResult:
    """Outcome of one node-program execution."""

    def __init__(self, ctx: ProgramContext):
        self.query_id = ctx.query_id
        self.timestamp = ctx.ts
        self.results = ctx.results
        self.states = ctx.states
        self.vertices_visited = ctx.vertices_visited
        self.hops = ctx.hops
        self.halted = ctx.halted
        self.read_set = ctx.read_set
        self.rounds = ctx.rounds

    @property
    def value(self) -> Any:
        """The single emitted value, for programs that emit exactly one."""
        if len(self.results) != 1:
            raise ProgramError(
                f"expected exactly one result, got {len(self.results)}"
            )
        return self.results[0]


def _params_key(params: Any) -> Optional[Hashable]:
    """A value-equality key for hop params, or None when they defy
    hashing.

    Params are compared by *content*, not identity: BFS-style programs
    mint a fresh namespace per parent, and the whole point of same-round
    dedup is collapsing hops to one vertex from different parents at the
    same depth.
    """
    if isinstance(params, SimpleNamespace):
        # Attribute names are unique, so the sort never compares values.
        items = tuple(sorted(vars(params).items()))
        try:
            hash(items)
        except TypeError:
            return None
        return (True, items)
    try:
        hash(params)
    except TypeError:
        return None
    return (False, params)


def _hop_key(handle: str, params: Any) -> Optional[Hashable]:
    """A value-equality key for one hop, or None when params defy
    hashing (kept for direct use in tests; the executor's dedup pass
    memoizes the params part by object identity)."""
    pkey = _params_key(params)
    if pkey is None:
        return None
    return (handle, pkey)


def run_entry(
    program: NodeProgram,
    handle: str,
    params: Any,
    node: Optional[VertexView],
    ctx: ProgramContext,
) -> List[Tuple[str, Any]]:
    """Process one frontier entry — the per-entry semantics shared by
    every execution path (sequential, round-batched, shard-resident).

    Adds ``handle`` to the read set, dispatches invisible vertices to
    ``on_missing``, binds per-vertex state, runs the program, and
    returns the validated next-hop list (empty for missing vertices).
    """
    ctx.read_set.add(handle)
    if node is None:
        program.on_missing(handle, params, ctx)
        return []
    node.prog_state = ctx.state_for(handle, program.init_state)
    ctx.vertices_visited += 1
    hops = program.run(node, params, ctx)
    if hops is None:
        return []
    out: List[Tuple[str, Any]] = []
    for hop in hops:
        if (
            not isinstance(hop, tuple)
            or len(hop) != 2
            or not isinstance(hop[0], str)
        ):
            raise ProgramError(
                f"{program.name} returned a bad next-hop: {hop!r}"
            )
        out.append(hop)
    return out


def dedup_round(
    entries: List[Any],
    stats: Optional[ProgramStats] = None,
    hop_of: Optional[Callable[[Any], Tuple[str, Any]]] = None,
) -> List[Any]:
    """Drop same-round repeats of one (vertex, params) hop.

    ``entries`` are (handle, params) pairs by default; ``hop_of``
    extracts the pair from richer records (the shard-resident engine
    dedups keyed ``(order_key, handle, params)`` triples).  First
    occurrence wins; hops whose params resist value-hashing pass
    through untouched.  ``stats.dedup_hits`` counts the drops.
    """
    seen: set = set()
    kept: List[Any] = []
    # Params content keys memoized by object identity: one program run
    # emits many hops sharing one params object, and the ids stay
    # unique for the pass because ``entries`` keeps every object alive.
    # Distinct contents are interned to small ints so the seen-set
    # hashes (handle, int) pairs, not nested tuples.
    param_key_ids: Dict[int, Optional[int]] = {}
    interned: Dict[Hashable, int] = {}
    missing = param_key_ids.get
    dropped = 0
    for entry in entries:
        handle, params = entry if hop_of is None else hop_of(entry)
        pid = id(params)
        kid = missing(pid, -1)
        if kid == -1:
            pkey = _params_key(params)
            if pkey is None:
                kid = None
            else:
                kid = interned.setdefault(pkey, len(interned))
            param_key_ids[pid] = kid
        if kid is None:
            kept.append(entry)
            continue
        key = (handle, kid)
        if key in seen:
            dropped += 1
        else:
            seen.add(key)
            kept.append(entry)
    if stats is not None:
        stats.dedup_hits += dropped
    return kept


class ProgramExecutor:
    """Breadth-first driver of a node program across the graph."""

    def __init__(self, max_visits: int = 10_000_000):
        self._max_visits = max_visits
        self.stats = ProgramStats()

    def execute(
        self,
        program: NodeProgram,
        start: Iterable[Tuple[str, Any]],
        resolve: Resolver,
        ts: VectorTimestamp,
        query_id: int = 0,
    ) -> ProgramResult:
        """Run ``program`` from the ``start`` frontier to completion.

        ``resolve(handle)`` returns the vertex view at the program's
        snapshot, or None when the vertex is invisible there; a resolver
        exposing ``resolve_many`` gets the frontier one round at a time.
        Propagation ends when the frontier drains, the program halts, or
        the visit budget (a runaway guard) is exhausted.
        """
        ctx = ProgramContext(query_id, ts)
        resolve_many = getattr(resolve, "resolve_many", None)
        if resolve_many is None:
            result = self._execute_sequential(program, start, resolve, ctx)
        else:
            result = self._execute_rounds(program, start, resolve_many, ctx)
        self.stats.executions += 1
        return result

    # -- round-based scatter-gather (sections 2.3, 4.1) -------------------

    def _execute_rounds(
        self,
        program: NodeProgram,
        start: Iterable[Tuple[str, Any]],
        resolve_many,
        ctx: ProgramContext,
    ) -> ProgramResult:
        frontier: List[Tuple[str, Any]] = list(start)
        visits = 0
        max_visits = self._max_visits
        dedup = program.dedup_hops
        while frontier and not ctx.halted:
            if dedup:
                frontier = self._dedup_round(frontier)
            ctx.rounds += 1
            self.stats.batch_rounds += 1
            views = resolve_many([handle for handle, _ in frontier])
            views_get = views.get
            next_frontier: List[Tuple[str, Any]] = []
            round_hops = 0
            for handle, params in frontier:
                if visits >= max_visits:
                    raise ProgramError(
                        f"visit budget exhausted ({max_visits})"
                    )
                visits += 1
                node = views_get(handle)
                hops = run_entry(program, handle, params, node, ctx)
                if node is None:
                    # Missing vertices do not observe a mid-round halt:
                    # the sequential twin's ``continue`` skips its halt
                    # check too, and equivalence is exact.
                    continue
                round_hops += len(hops)
                next_frontier.extend(hops)
                if ctx.halted:
                    break
            ctx.hops += round_hops
            frontier = next_frontier
        return ProgramResult(ctx)

    def _dedup_round(
        self, frontier: List[Tuple[str, Any]]
    ) -> List[Tuple[str, Any]]:
        """Drop same-round repeats of one (vertex, params) hop.

        Only for programs declaring ``dedup_hops``; hops whose params
        resist value-hashing pass through untouched.
        """
        return dedup_round(frontier, self.stats)

    # -- the seed per-vertex loop (compatibility shim) --------------------

    def _execute_sequential(
        self,
        program: NodeProgram,
        start: Iterable[Tuple[str, Any]],
        resolve: Resolver,
        ctx: ProgramContext,
    ) -> ProgramResult:
        self.stats.sequential_executions += 1
        frontier = deque(start)
        visits = 0
        while frontier and not ctx.halted:
            handle, params = frontier.popleft()
            if visits >= self._max_visits:
                raise ProgramError(
                    f"visit budget exhausted ({self._max_visits})"
                )
            visits += 1
            node = resolve(handle)
            hops = run_entry(program, handle, params, node, ctx)
            ctx.hops += len(hops)
            frontier.extend(hops)
        return ProgramResult(ctx)
