"""The node-program execution engine (sections 2.3, 4.1).

A node program is a vertex-level computation in the scatter-gather style:
it receives a read-only :class:`~repro.graph.mvgraph.VertexView` (bound to
the program's snapshot timestamp) plus parameters from the previous hop,
reads the vertex's edges and attributes, may mutate its per-query
``prog_state``, emit results, and returns the list of (vertex, params)
pairs to visit next.  A vertex may be visited any number of times; the
application directs all propagation.

The executor is routing-agnostic: it pulls vertices through a ``resolve``
callable supplied by the database layer, which is where shard routing and
the wait-for-preceding-transactions logic live.  This keeps the engine
testable against a bare in-memory graph.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Iterable, Optional, Tuple

from ..core.vclock import VectorTimestamp
from ..errors import ProgramError
from ..graph.mvgraph import VertexView
from .state import ProgramContext

NextHops = Iterable[Tuple[str, Any]]
Resolver = Callable[[str], Optional[VertexView]]


class NodeProgram:
    """Base class for node programs.

    Subclasses override :meth:`run` and usually :meth:`init_state`.  The
    paper's BFS example (Fig 3) maps directly::

        class Bfs(NodeProgram):
            def init_state(self):
                return SimpleNamespace(visited=False)

            def run(self, node, params, ctx):
                nxt = []
                if not node.prog_state.visited:
                    for edge in node.neighbors:
                        if edge.check(params.edge_prop):
                            nxt.append((edge.nbr, params))
                    node.prog_state.visited = True
                return nxt
    """

    #: Stable name used for caching and reporting.
    name = "node_program"

    def init_state(self) -> Any:
        """A fresh per-vertex ``prog_state`` (default: None)."""
        return None

    def run(
        self, node: VertexView, params: Any, ctx: ProgramContext
    ) -> NextHops:
        raise NotImplementedError

    def on_missing(self, handle: str, params: Any, ctx: ProgramContext) -> None:
        """Hook invoked when a next-hop vertex is invisible at the
        snapshot (deleted concurrently, or a dangling edge); default is
        to skip it silently, which is what traversals want."""


class ProgramResult:
    """Outcome of one node-program execution."""

    def __init__(self, ctx: ProgramContext):
        self.query_id = ctx.query_id
        self.timestamp = ctx.ts
        self.results = ctx.results
        self.states = ctx.states
        self.vertices_visited = ctx.vertices_visited
        self.hops = ctx.hops
        self.halted = ctx.halted
        self.read_set = ctx.read_set

    @property
    def value(self) -> Any:
        """The single emitted value, for programs that emit exactly one."""
        if len(self.results) != 1:
            raise ProgramError(
                f"expected exactly one result, got {len(self.results)}"
            )
        return self.results[0]


class ProgramExecutor:
    """Breadth-first driver of a node program across the graph."""

    def __init__(self, max_visits: int = 10_000_000):
        self._max_visits = max_visits

    def execute(
        self,
        program: NodeProgram,
        start: Iterable[Tuple[str, Any]],
        resolve: Resolver,
        ts: VectorTimestamp,
        query_id: int = 0,
    ) -> ProgramResult:
        """Run ``program`` from the ``start`` frontier to completion.

        ``resolve(handle)`` returns the vertex view at the program's
        snapshot, or None when the vertex is invisible there.  Propagation
        ends when the frontier drains, the program halts, or the visit
        budget (a runaway guard) is exhausted.
        """
        ctx = ProgramContext(query_id, ts)
        frontier = deque(start)
        visits = 0
        while frontier and not ctx.halted:
            handle, params = frontier.popleft()
            if visits >= self._max_visits:
                raise ProgramError(
                    f"visit budget exhausted ({self._max_visits})"
                )
            visits += 1
            ctx.read_set.add(handle)
            node = resolve(handle)
            if node is None:
                program.on_missing(handle, params, ctx)
                continue
            node.prog_state = ctx.state_for(handle, program.init_state)
            ctx.vertices_visited += 1
            hops = program.run(node, params, ctx)
            if hops is None:
                continue
            for hop in hops:
                if (
                    not isinstance(hop, tuple)
                    or len(hop) != 2
                    or not isinstance(hop[0], str)
                ):
                    raise ProgramError(
                        f"{program.name} returned a bad next-hop: {hop!r}"
                    )
                ctx.hops += 1
                frontier.append(hop)
        return ProgramResult(ctx)
