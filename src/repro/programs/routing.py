"""Shard-routed batch resolution with per-(query, shard) snapshot reuse.

The seed resolvers constructed a brand-new
:class:`~repro.graph.mvgraph.SnapshotView` — and therefore a brand-new
per-snapshot comparison memo — for every vertex resolved, discarding
exactly the visibility-check reuse the memo exists for.
:class:`ShardSnapshotResolver` is the batched replacement both the direct
database and the simulated deployment hand to the program executor: it
groups each scatter-gather round's frontier by owning shard, resolves
every shard's batch against **one long-lived snapshot view per (query,
shard)**, and keeps the per-(shard, round) batch sizes that the
simulator's cost model charges as messages (one per batch, not one per
vertex — the paper's shard-to-shard batch propagation, section 4.1).

The resolver is also a plain callable, so it drops into the executor's
single-vertex compatibility path (and any other ``resolve(handle)``
consumer) while still reusing its views.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..core.vclock import VectorTimestamp
from ..graph.mvgraph import SnapshotView, VertexView
from .framework import ProgramStats


class ShardSnapshotResolver:
    """Resolve program vertices against reusable per-shard snapshots.

    ``shard_of(handle)`` maps a vertex to its owning shard index (None
    for unknown vertices); ``shards`` is the live shard-server list (held
    by reference — deployments replace entries on recovery).  With
    ``page_in`` set, evicted vertices are paged back before the
    visibility check (direct mode's demand paging).
    """

    def __init__(
        self,
        ts: VectorTimestamp,
        shard_of: Callable[[str], Optional[int]],
        shards: Sequence,
        stats: Optional[ProgramStats] = None,
        page_in: bool = False,
    ):
        self._ts = ts
        self._shard_of = shard_of
        self._shards = shards
        self._stats = stats
        self._page_in = page_in
        self._views: Dict[int, SnapshotView] = {}
        # Per-query vertex-view cache: the snapshot is fixed, so a
        # handle's visibility (and its view, with its visible-edge
        # cache) never changes across rounds — cross-round revisits are
        # served locally, with no repeat shard request.
        self._vertices: Dict[str, Optional[VertexView]] = {}
        #: One entry per scatter-gather round: {shard_index: batch size}.
        #: The simulator charges one inter-shard message per entry item.
        self.shard_rounds: List[Dict[int, int]] = []

    @property
    def timestamp(self) -> VectorTimestamp:
        return self._ts

    @property
    def snapshots_created(self) -> int:
        """Snapshot views this query built — O(shards), not O(vertices)."""
        return len(self._views)

    def _view_for(self, shard_index: int) -> SnapshotView:
        view = self._views.get(shard_index)
        if view is None:
            shard = self._shards[shard_index]
            view = shard.graph.at(self._ts, memo_stats=shard.ordering.stats)
            self._views[shard_index] = view
            if self._stats is not None:
                self._stats.snapshots_created += 1
        return view

    def _resolve_on(self, shard_index: int, handle: str):
        shard = self._shards[shard_index]
        shard.stats.vertices_read += 1
        if self._page_in:
            shard.ensure_paged(handle)
        view = self._view_for(shard_index)
        node = view.try_vertex(handle)
        self._vertices[handle] = node
        return node

    # -- batch API (one scatter-gather round) ---------------------------

    def resolve_many(
        self, handles: Iterable[str]
    ) -> Dict[str, Optional[VertexView]]:
        """Resolve one round's frontier, grouped by owning shard.

        Duplicate handles resolve once; cross-round revisits come from
        the per-query vertex cache without a shard request; unknown
        vertices map to None.
        """
        out: Dict[str, Optional[VertexView]] = {}
        per_shard: Dict[int, List[str]] = {}
        cache = self._vertices
        cache_hits = 0
        for handle in handles:
            if handle in out:
                continue
            if handle in cache:
                out[handle] = cache[handle]
                cache_hits += 1
                continue
            out[handle] = None
            shard_index = self._shard_of(handle)
            if shard_index is not None:
                per_shard.setdefault(shard_index, []).append(handle)
        round_counts: Dict[int, int] = {}
        for shard_index in sorted(per_shard):
            batch = per_shard[shard_index]
            fresh = shard_index not in self._views
            for handle in batch:
                out[handle] = self._resolve_on(shard_index, handle)
            round_counts[shard_index] = len(batch)
            if self._stats is not None:
                self._stats.shard_batches += 1
                self._stats.vertices_resolved += len(batch)
                # Every resolution after the view's first rides the memo.
                self._stats.snapshot_reuse_hits += len(batch) - (
                    1 if fresh else 0
                )
                # One message per (shard, round) replaces one per vertex.
                self._stats.round_messages_saved += len(batch) - 1
        if round_counts:
            self.shard_rounds.append(round_counts)
        if cache_hits and self._stats is not None:
            self._stats.vertices_resolved += cache_hits
            self._stats.snapshot_reuse_hits += cache_hits
            # A cached revisit needs no shard message at all.
            self._stats.round_messages_saved += cache_hits
        return out

    # -- single-vertex compatibility ------------------------------------

    def __call__(self, handle: str) -> Optional[VertexView]:
        if handle in self._vertices:
            if self._stats is not None:
                self._stats.vertices_resolved += 1
                self._stats.snapshot_reuse_hits += 1
            return self._vertices[handle]
        shard_index = self._shard_of(handle)
        if shard_index is None:
            return None
        fresh = shard_index not in self._views
        node = self._resolve_on(shard_index, handle)
        if self._stats is not None:
            self._stats.vertices_resolved += 1
            if not fresh:
                self._stats.snapshot_reuse_hits += 1
        return node
