"""Node programs: the read-only graph-analysis query layer."""

from .framework import NodeProgram, ProgramExecutor, ProgramResult, ProgramStats
from .routing import ShardSnapshotResolver
from .state import ProgramContext, WatermarkRegistry
from .caching import ChangeTracker, ProgramCache
from .analytics import (
    ComponentSize,
    DegreeHistogram,
    KHopNeighborhood,
    LabelPropagation,
    PushPageRank,
    TriangleCount,
    WeightedShortestPath,
)
from .library import (
    Bfs,
    BlockRender,
    ClusteringCoefficient,
    CollectReachable,
    CountEdges,
    GetEdges,
    GetNode,
    PathDiscovery,
    Reachability,
    ShortestPath,
    params,
)

__all__ = [
    "ComponentSize",
    "DegreeHistogram",
    "KHopNeighborhood",
    "LabelPropagation",
    "PushPageRank",
    "TriangleCount",
    "WeightedShortestPath",
    "NodeProgram",
    "ProgramExecutor",
    "ProgramResult",
    "ProgramStats",
    "ShardSnapshotResolver",
    "ProgramContext",
    "WatermarkRegistry",
    "ChangeTracker",
    "ProgramCache",
    "Bfs",
    "BlockRender",
    "ClusteringCoefficient",
    "CollectReachable",
    "CountEdges",
    "GetEdges",
    "GetNode",
    "PathDiscovery",
    "Reachability",
    "ShortestPath",
    "params",
]
