"""An event-driven Weaver deployment on the discrete-event simulator.

The direct-mode :class:`~repro.db.database.Weaver` executes the protocol
synchronously (announce rounds stand in for the τ timer).  This module
runs the *same server objects* — gatekeepers, shard servers, the
timeline oracle, the backing store — asynchronously over the simulated
network:

* announce timers fire every ``tau`` simulated seconds per gatekeeper,
  and announce messages pay network latency like everything else;
* NOP heartbeat timers fire every ``nop_period`` per gatekeeper
  (section 4.2's 10 µs default), keeping shard queues non-empty;
* transactions travel client -> gatekeeper -> (store commit) -> shards
  on FIFO channels with sequence numbers;
* node programs wait at the shards until every queue head is ordered
  after them — the wait is real simulated time, bounded by τ plus the
  NOP period, which the tests verify;
* heartbeats flow to the cluster manager, whose failure detector runs
  on simulated time.

This is the substrate for protocol-fidelity experiments: the Fig 14
tradeoff emerges here from actual timers rather than from a modelling
shortcut.
"""

from __future__ import annotations

import itertools
from dataclasses import replace as dc_replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..cluster.builder import build_cluster
from ..cluster.messages import AnnounceMessage, Heartbeat, QueuedTransaction
from ..cluster.transport import SimTransport
from ..core.gatekeeper import DeadlineStamper
from ..core.vclock import VectorTimestamp
from ..db.config import WeaverConfig
from ..db.operations import Operation, touched_vertices
from ..errors import TransactionAborted
from ..programs.framework import NodeProgram, ProgramResult
from ..programs.routing import ShardSnapshotResolver
from .clock import USEC
from .faults import FaultInjector, FaultPlan, GATEKEEPER
from .network import Network, RegionTopology
from .simulator import Server, Simulator

DEFAULT_TAU = 100 * USEC
DEFAULT_NOP_PERIOD = 10 * USEC  # the paper's default (section 4.2)
DEFAULT_HEARTBEAT = 0.1
# Clock-skew bound of the deadline fast path.  The simulator's clock is
# perfectly synchronized, so any positive bound is sound; 5 µs models a
# PTP-disciplined fleet and keeps the fast path honest about skew.
DEFAULT_SKEW_BOUND = 5 * USEC


class TauController:
    """Dynamic adjustment of the announce period (section 3.5).

    The paper observes that τ "can be adjusted dynamically based on the
    system workload": a quiescent system need not announce at all, a
    busy one should announce often enough to keep the oracle off the
    critical path, but not so often that announce processing dominates.

    This controller implements that feedback loop on the quantity Fig 14
    plots — coordination messages of each kind per window.  When oracle
    traffic rivals announce traffic, τ shrinks (announce more, order
    proactively); when announces exceed oracle traffic by more than
    ``balance_ratio``, τ grows (the oracle is nearly idle; stop paying
    for announces).  Adjustments are multiplicative within ``bounds``,
    seeking Fig 14's crossover region.
    """

    def __init__(
        self,
        initial_tau: float,
        bounds: Tuple[float, float] = (10 * USEC, 10e-3),
        balance_ratio: float = 8.0,
        factor: float = 2.0,
    ):
        low, high = bounds
        if not 0 < low <= initial_tau <= high:
            raise ValueError("initial tau outside bounds")
        if factor <= 1.0:
            raise ValueError("adjustment factor must exceed 1")
        if balance_ratio < 1.0:
            raise ValueError("balance ratio must be at least 1")
        self.tau = initial_tau
        self.bounds = bounds
        self.balance_ratio = balance_ratio
        self.factor = factor
        self.adjustments: List[Tuple[float, int]] = []

    def observe(
        self, oracle_messages: int, announce_messages: int, committed: int
    ) -> float:
        """Feed one window's counters; returns the (possibly new) τ.

        Idle windows (``committed == 0``) neither adjust τ nor record an
        adjustment sample: a quiescent system's all-zero windows used to
        pad ``adjustments`` and skew the Fig 14 harness's trajectory
        summaries toward whatever τ the system idled at.
        """
        low, high = self.bounds
        if committed <= 0:
            return self.tau
        if oracle_messages > max(1, announce_messages):
            # Reactive ordering rivals the proactive machinery:
            # announce more often.
            self.tau = max(low, self.tau / self.factor)
        elif announce_messages > self.balance_ratio * max(
            1, oracle_messages
        ):
            # Announce chatter dwarfs the oracle's load: back off.
            self.tau = min(high, self.tau * self.factor)
        self.adjustments.append((self.tau, oracle_messages))
        return self.tau


class SimulatedWeaver:
    """The full protocol running on simulated time."""

    def __init__(
        self,
        config: Optional[WeaverConfig] = None,
        tau: float = DEFAULT_TAU,
        nop_period: float = DEFAULT_NOP_PERIOD,
        heartbeat_period: float = DEFAULT_HEARTBEAT,
        latency: float = 100 * USEC,
        gc_period: float = 0.01,
        tau_controller: Optional[TauController] = None,
        adapt_window: float = 2e-3,
        costs=None,
        run_timers_for: float = 0.0,
        fault_plan: Optional[FaultPlan] = None,
        topology: Optional[RegionTopology] = None,
        skew_bound: Optional[float] = None,
        region_tau_controllers: Optional[List[TauController]] = None,
        rng=None,
    ):
        self.config = config or WeaverConfig()
        self.tau = tau_controller.tau if tau_controller is not None else tau
        self.nop_period = nop_period
        self.heartbeat_period = heartbeat_period
        self.gc_period = gc_period
        self.tau_controller = tau_controller
        self.adapt_window = adapt_window
        self.simulator = Simulator()
        self.fault_plan = fault_plan
        num_regions = self.config.num_regions
        if topology is None and num_regions > 1:
            # Uniform geo topology: every region edge pays the global
            # latency, so the deployment shape is geo but the timing is
            # the single-region one.
            topology = RegionTopology(
                [[latency] * num_regions for _ in range(num_regions)]
            )
        if topology is not None and topology.num_regions != num_regions:
            raise ValueError(
                f"topology has {topology.num_regions} regions but "
                f"config.num_regions is {num_regions}"
            )
        self.topology = topology
        injector = (
            FaultInjector(fault_plan) if fault_plan is not None else None
        )
        self.network = Network(
            self.simulator, latency=latency, fault_injector=injector,
            topology=topology, rng=rng,
        )
        # The deterministic twin of the process deployment: same parts
        # from the same builder, with the message contract routed over
        # the simulated network instead of sockets.
        self.transport = SimTransport(self.network)
        parts = build_cluster(
            config,
            heartbeat_timeout=2.5 * heartbeat_period,
            tracer_clock=lambda: self.simulator.now,
            network=self.network,
            transport_stats=self.transport.stats,
            extra=self._sim_metrics,
            use_store_nodes=False,
        )
        self.parts = parts
        self.config = parts.config
        self.store = parts.store
        self.mapping = parts.mapping
        self.oracle = parts.oracle
        self.gatekeepers = parts.gatekeepers
        self.shards = parts.shards
        self.manager = parts.manager
        self.executor = parts.executor
        # Geo deployment (config.num_regions > 1): place every server in
        # its region, give each region one deadline stamper (it survives
        # gatekeeper recovery) and optionally one tau controller, and arm
        # the shard orderings' deadline fast path.
        self._geo = self.config.num_regions > 1
        self.skew_bound = (
            skew_bound
            if skew_bound is not None
            else (DEFAULT_SKEW_BOUND if self._geo else None)
        )
        self._deadline_stampers: List[DeadlineStamper] = []
        self._region_controllers = region_tau_controllers or []
        self._region_tau: List[float] = []
        self._region_committed: List[int] = []
        self._region_window_base: List[Tuple[int, int, int]] = []
        if self._geo:
            for name, region in parts.region_of.items():
                self.topology.assign(name, region)
            self._deadline_stampers = [
                DeadlineStamper(
                    lambda: self.simulator.now, self.topology.reach(r)
                )
                for r in range(self.config.num_regions)
            ]
            for gk in self.gatekeepers:
                gk.deadline_stamper = self._deadline_stampers[
                    parts.region_of[gk.name]
                ]
            for shard in self.shards:
                shard.ordering.skew_bound = self.skew_bound
            if self._region_controllers:
                if len(self._region_controllers) != self.config.num_regions:
                    raise ValueError(
                        "need one tau controller per region"
                    )
                self._region_tau = [
                    c.tau for c in self._region_controllers
                ]
            else:
                self._region_tau = [self.tau] * self.config.num_regions
            self._region_committed = [0] * self.config.num_regions
            self._region_window_base = [
                (0, 0, 0) for _ in range(self.config.num_regions)
            ]
        # Optional service-time accounting: with a CostParams attached,
        # gatekeepers and shards become serially-busy resources and the
        # deployment yields protocol-level *performance*, not just
        # protocol-level behaviour.
        self.costs = costs
        self._gk_servers = [
            Server(self.simulator, gk.name) for gk in self.gatekeepers
        ]
        self._shard_servers = [
            Server(self.simulator, s.name) for s in self.shards
        ]
        # Observability: spans are stamped with simulated time, and the
        # latency histograms filled from the trace timings are the data
        # source for the Fig 10/11 latency CDFs.
        self.metrics = parts.metrics
        self.tracer = parts.tracer
        # Delivery callbacks, keyed by stable server *names* (handlers
        # re-fetch by index, so recovery replacements are reached without
        # re-registration).
        self.transport.register("manager", self._on_manager_message)
        for gk in self.gatekeepers:
            self.transport.register(
                gk.name, self._make_gk_handler(gk.index)
            )
        for shard in self.shards:
            self.transport.register(
                shard.name, self._make_shard_handler(shard.index)
            )
        self.latency_tx = self.metrics.histogram("latency.tx_commit")
        self.latency_program = self.metrics.histogram("latency.program")
        self._seqnos: Dict[Tuple[int, int], int] = {}
        # Global send rank for shard-bound messages: the oracle tiebreak
        # for concurrent pairs.  Send order extends store commit order
        # (forwarding is synchronous with commit), so the preference
        # stays commit-order-faithful under injected message delays.
        self._send_rank = itertools.count()
        self._handle_counter = itertools.count()
        self._query_counter = itertools.count(1)
        self._gk_rr = itertools.count()
        # Waiting node programs: (ts, frontier, program, query_id, cb).
        self._pending_programs: List[Tuple] = []
        # Submitted but not yet completed (includes in-flight
        # submissions that have not reached a gatekeeper yet).
        self._programs_outstanding = 0
        self.committed = 0
        self.aborted = 0
        self.program_latencies: List[float] = []
        self._crashed: set = set()
        # Per-shard epoch floor: a recovered shard reloaded everything
        # committed before its recovery, so straggler deliveries stamped
        # in earlier epochs must be dropped, not replayed.
        self._min_epoch: Dict[int, int] = {}
        self.recoveries = 0
        self.stragglers_dropped = 0
        # Observer re-attached to replacement shards on recovery.
        self._apply_observer: Optional[Callable] = None
        self._timers_started = False
        self.start_timers()
        if run_timers_for:
            self.simulator.run(until=run_timers_for)

    # -- delivery callbacks (the transport contract) ----------------------

    def _make_gk_handler(self, index: int):
        def handle(src: str, kind: str, payload: Any) -> None:
            if kind == "announce":
                announce, epoch, deadline = payload
                self._deliver_announce(
                    index, epoch, announce.vector, deadline
                )
            elif kind == "tx-submit":
                self._gatekeeper_commit(index, *payload)
            elif kind == "prog-submit":
                payload()  # the stamp-and-queue thunk, run at the server

        return handle

    def _make_shard_handler(self, index: int):
        def handle(src: str, kind: str, payload: Any) -> None:
            gk_index, qtx = payload
            self._deliver(index, gk_index, qtx)

        return handle

    def _on_manager_message(self, src: str, kind: str, payload: Any) -> None:
        if kind == "heartbeat":
            self._manager_heartbeat(payload.server)

    # -- timers -------------------------------------------------------------

    def start_timers(self) -> None:
        if self._timers_started:
            return
        self._timers_started = True
        # Stagger per-gatekeeper timers: real servers' clocks are not
        # phase-aligned, and alignment would make every NOP round a set
        # of mutually concurrent stamps no τ could ever order.  Geo
        # deployments stagger announce phases *within* each region over
        # that region's own τ (regions announce independently).
        count = len(self.gatekeepers)
        if self._geo:
            members: Dict[int, List[int]] = {}
            for gk in self.gatekeepers:
                members.setdefault(
                    self.topology.region_of(gk.name), []
                ).append(gk.index)
            announce_phase = {}
            for region, indices in members.items():
                for pos, gk_index in enumerate(sorted(indices)):
                    announce_phase[gk_index] = (
                        self._region_tau[region]
                        * (pos + 1) / len(indices)
                    )
        for gk in self.gatekeepers:
            phase = (gk.index + 1) / count
            self.simulator.schedule(
                announce_phase[gk.index] if self._geo
                else self.tau * phase,
                self._announce_tick, gk.index,
            )
            self.simulator.schedule(
                self.nop_period * phase, self._nop_tick, gk.index
            )
            self.simulator.schedule(
                self.heartbeat_period, self._heartbeat_tick, gk.name
            )
        for shard in self.shards:
            self.simulator.schedule(
                self.heartbeat_period, self._heartbeat_tick, shard.name
            )
        self.simulator.schedule(self.gc_period, self._gc_tick)
        self.simulator.schedule(
            3 * self.heartbeat_period, self._detector_tick
        )
        if self.fault_plan is not None:
            for crash in self.fault_plan.crashes:
                target = (
                    self.crash_gatekeeper
                    if crash.kind == GATEKEEPER
                    else self.crash_shard
                )
                self.simulator.schedule_at(crash.at, target, crash.index)
        if self.tau_controller is not None:
            self._window_base = (0, 0, 0)
            self.simulator.schedule(self.adapt_window, self._adapt_tick)
        if self._region_controllers:
            self.simulator.schedule(
                self.adapt_window, self._region_adapt_tick
            )

    def _adapt_tick(self) -> None:
        """One feedback-control window of the adaptive τ (section 3.5)."""
        oracle_now = self.oracle_messages()
        announce_now = self.announce_messages()
        committed_now = self.committed
        base_oracle, base_announce, base_committed = self._window_base
        self.tau = self.tau_controller.observe(
            oracle_now - base_oracle,
            announce_now - base_announce,
            committed_now - base_committed,
        )
        self._window_base = (oracle_now, announce_now, committed_now)
        self.simulator.schedule(self.adapt_window, self._adapt_tick)

    def _region_adapt_tick(self) -> None:
        """Per-region τ feedback, on per-region counters.

        Each region's controller sees only that region's coordination
        traffic: oracle requests its shards issued (through the region
        oracle client, local reads included) and announces its
        gatekeepers sent, against its gatekeepers' commits.
        """
        for region, controller in enumerate(self._region_controllers):
            oracle_now = self.parts.region_stats[region].oracle_messages
            announce_now = self.network.stats.region_count(
                region, "announce"
            )
            committed_now = self._region_committed[region]
            base_o, base_a, base_c = self._region_window_base[region]
            self._region_tau[region] = controller.observe(
                oracle_now - base_o,
                announce_now - base_a,
                committed_now - base_c,
            )
            self._region_window_base[region] = (
                oracle_now, announce_now, committed_now
            )
        self.simulator.schedule(self.adapt_window, self._region_adapt_tick)

    def _tau_for(self, gk_index: int) -> float:
        if self._geo:
            region = self.topology.region_of(
                self.gatekeepers[gk_index].name
            )
            return self._region_tau[region]
        return self.tau

    def _announce_tick(self, gk_index: int) -> None:
        gk = self.gatekeepers[gk_index]
        if gk.name in self._crashed:
            return  # dead servers announce nothing; timer lapses
        vector = gk.make_announce()
        epoch = gk.clock.epoch
        announce = AnnounceMessage(gk_index, vector)
        # Geo: piggyback the announcer's latest deadline, the Lamport
        # carrier that keeps deadlines increasing along happens-before
        # edges (every vector-clock edge is announce-mediated here).
        deadline = (
            gk.deadline_stamper.last
            if gk.deadline_stamper is not None
            else None
        )
        for peer in self.gatekeepers:
            if peer.index == gk_index or peer.name in self._crashed:
                continue
            self.transport.send(
                gk.name, peer.name, "announce", (announce, epoch, deadline)
            )
        self.simulator.schedule(
            self._tau_for(gk_index), self._announce_tick, gk_index
        )

    def _deliver_announce(
        self, peer_index: int, epoch: int, vector, deadline=None
    ) -> None:
        """Fold an announce at its destination, re-fetched by index.

        The receiver may have been replaced while the message was in
        flight; announces are epoch-tagged so a pre-failover straggler is
        dropped instead of folded into the replacement's restarted clock
        (which would corrupt it — epochs restart the counters at zero).
        """
        peer = self.gatekeepers[peer_index]
        if peer.name in self._crashed:
            return
        if peer.clock.epoch != epoch:
            return  # cross-epoch straggler
        peer.receive_announce(vector)
        if peer.deadline_stamper is not None:
            peer.deadline_stamper.observe(deadline)

    def _nop_tick(self, gk_index: int) -> None:
        gk = self.gatekeepers[gk_index]
        if gk.name in self._crashed:
            return
        nop_ts = gk.make_nop()
        for shard in self.shards:
            self._send_to_shard(gk_index, shard.index, nop_ts, (), "nop")
        self.simulator.schedule(self.nop_period, self._nop_tick, gk_index)

    def _heartbeat_tick(self, name: str) -> None:
        if name in self._crashed:
            return  # the silence is what the detector listens for
        self.transport.send(
            name, "manager", "heartbeat",
            Heartbeat(name, self.manager.epoch, self.simulator.now),
        )
        self.simulator.schedule(
            self.heartbeat_period, self._heartbeat_tick, name
        )

    def _manager_heartbeat(self, name: str) -> None:
        if name in self._crashed:
            return  # the sender died with this beat in flight
        self.manager.heartbeat(name, self.simulator.now)

    def _detector_tick(self) -> None:
        """The cluster manager's failure detector (section 4.3)."""
        for name in self.manager.detect_failures(self.simulator.now):
            if name in self._crashed:
                self._recover(name)
        self.simulator.schedule(
            3 * self.heartbeat_period, self._detector_tick
        )

    def _gc_tick(self) -> None:
        """Section 4.5 garbage collection, on a timer.

        The watermark is the oldest in-flight program, or — when idle — a
        clock snapshot; events and versions strictly below it can never
        be read again.  Without this, the oracle's event DAG would grow
        with every concurrent heartbeat pair for the run's lifetime.
        """
        if self._pending_programs:
            watermark = self._pending_programs[0][0]
        else:
            watermark = self.gatekeepers[0].current_watermark()
        # Announce the watermark on the trace stream *before* collecting:
        # the online checker is a synchronous sink, so it settles and
        # prunes its windows while the decisions below the watermark are
        # still queryable (they vanish in collect_below right after).
        self.tracer.emit(None, "gc.watermark", node="gc", ts=watermark)
        # Oracle GC only: it uses pure vector-clock comparison, so the
        # (non-unique) peeked watermark cannot mint new oracle decisions.
        # Graph GC goes through refinable comparison and needs a real
        # stamped watermark; callers run it explicitly when they care.
        self.oracle.collect_below(watermark)
        # Store compaction rides the same timer, on the store's own
        # commit counter (bounded by the oldest open store snapshot) —
        # unless the opportunistic background compactor owns it.
        if not getattr(self.store, "background_compaction_active", False):
            self.store.collect_below(self.store.safe_compact_version())
        self.simulator.schedule(self.gc_period, self._gc_tick)

    # -- channels -------------------------------------------------------

    def _send_to_shard(
        self,
        gk_index: int,
        shard_index: int,
        ts: VectorTimestamp,
        operations: Tuple[Operation, ...],
        kind: str,
        trace_id: Optional[int] = None,
    ) -> None:
        channel = (gk_index, shard_index)
        seqno = self._seqnos.get(channel, 0)
        self._seqnos[channel] = seqno + 1
        qtx = QueuedTransaction(
            ts, operations, seqno, next(self._send_rank), trace_id
        )
        gk_name = self.gatekeepers[gk_index].name
        shard = self.shards[shard_index]
        self.transport.send(gk_name, shard.name, kind, (gk_index, qtx))

    # -- failure injection (section 4.3, live) ---------------------------

    def crash_gatekeeper(self, index: int) -> None:
        """Silently kill one gatekeeper; its heartbeats stop, the
        detector notices, and recovery runs — all on simulated time."""
        self._crashed.add(self.gatekeepers[index].name)

    def crash_shard(self, index: int) -> None:
        self._crashed.add(self.shards[index].name)

    def _recovery_stamp(self) -> VectorTimestamp:
        """The timestamp recovery reloads and reconciliations carry.

        In geo mode its deadline is pinned to *now*: every stamp issued
        after the barrier carries a deadline at least one region reach
        in the future, so the deadline fast path deterministically
        orders recovered state before every post-recovery query — the
        same guarantee ``prefer=BEFORE`` gives the oracle path.
        """
        ts = self.manager.gatekeepers[0].issue_timestamp()
        if self._geo:
            ts = dc_replace(ts, deadline=self.simulator.now)
        return ts

    def _recover(self, name: str) -> None:
        if name.startswith("gk"):
            index = int(name[2:])
            replacement = self.manager.recover_gatekeeper(
                index, recovery_ts_factory=self._recovery_stamp
            )
            replacement.tracer = self.tracer
            if self._geo:
                # The region's stamper outlives the crashed gatekeeper,
                # so the replacement continues above every deadline the
                # region ever issued or observed.
                replacement.deadline_stamper = self._deadline_stampers[
                    self.topology.region_of(name)
                ]
            self.gatekeepers[index] = replacement
        else:
            index = int(name[5:])
            replacement = self.manager.recover_shard(
                index, recovery_ts_factory=self._recovery_stamp
            )
            replacement.on_apply = self._apply_observer
            replacement.tracer = self.tracer
            if self._geo:
                replacement.ordering.skew_bound = self.skew_bound
            self.shards[index] = replacement
        # Old-epoch messages still in flight (a partitioned channel can
        # hold one past the barrier) must not apply after the barrier
        # flush — they would land out of decided order.  Every shard
        # drops them; the manager just reconciled their committed
        # effects from the backing store.
        for i in range(len(self.shards)):
            self._min_epoch[i] = self.manager.epoch
        # Channel sequence numbers keep counting across the barrier —
        # each (gatekeeper, shard) stream stays FIFO and monotone, and
        # shards re-baseline their expected numbers after the epoch
        # switch — so the sender side is left untouched.
        self._crashed.discard(name)
        self.recoveries += 1
        # In-flight node programs die with the epoch: their snapshots
        # predate the recovery timestamp and would miss reloaded state.
        # Re-execute them with fresh stamps (section 4.3), as the client
        # library would on resubmission.
        self._restamp_pending_programs()
        self.manager.heartbeat(name, self.simulator.now)
        self.simulator.schedule(
            self.heartbeat_period, self._heartbeat_tick, name
        )
        if name.startswith("gk"):
            self.simulator.schedule(self.tau, self._announce_tick, index)
            self.simulator.schedule(
                self.nop_period, self._nop_tick, index
            )

    def _deliver(
        self, shard_index: int, gk_index: int, qtx: QueuedTransaction
    ) -> None:
        shard = self.shards[shard_index]
        if shard.name in self._crashed:
            return  # messages to a dead server vanish
        if qtx.ts.epoch < self._min_epoch.get(shard_index, 0):
            # Pre-barrier straggler: its committed effects are already
            # in the reloaded (replacement) or reconciled (survivor)
            # state; applying it now would violate decided order.
            self.stragglers_dropped += 1
            return
        shard.enqueue(gk_index, qtx)
        shard.apply_available(
            stop_before=self._earliest_pending_program_ts()
        )
        self._check_pending_programs()

    def set_apply_observer(self, observer: Optional[Callable]) -> None:
        """Install ``observer(shard_index, qtx)`` on every shard, called
        for each non-NOP transaction applied; survives shard recovery."""
        self._apply_observer = observer
        for shard in self.shards:
            shard.on_apply = observer

    def _earliest_pending_program_ts(self) -> Optional[VectorTimestamp]:
        if not self._pending_programs:
            return None
        # Conservative: stop applying before ANY pending program; the
        # readiness check per program refines this.
        return self._pending_programs[0][0]

    # -- client operations ---------------------------------------------

    def new_handle(self, prefix: str = "v") -> str:
        return f"{prefix}{next(self._handle_counter)}"

    def submit_transaction(
        self,
        operations: List[Operation],
        callback: Optional[Callable[[bool, Any], None]] = None,
        new_vertices: Tuple[str, ...] = (),
    ) -> int:
        """Submit buffered operations from a client at current sim time.

        Returns the trace id assigned to this submission, under which
        every hop's spans (stamp, store commit, shard enqueue/apply,
        ordering decisions) can be reassembled.
        """
        gk_index = next(self._gk_rr) % len(self.gatekeepers)
        gk = self.gatekeepers[gk_index]
        trace_id = self.tracer.next_trace_id()
        self.tracer.emit(
            trace_id, "client.submit", node="client", gk=gk_index
        )
        self.transport.send(
            "client",
            gk.name,
            "tx-submit",
            (
                tuple(operations),
                tuple(new_vertices),
                callback,
                trace_id,
                self.simulator.now,
            ),
        )
        return trace_id

    def _gatekeeper_commit(
        self,
        gk_index: int,
        operations: Tuple[Operation, ...],
        new_vertices: Tuple[str, ...],
        callback,
        trace_id: Optional[int] = None,
        submitted: float = 0.0,
        charged: bool = False,
    ) -> None:
        gk = self.gatekeepers[gk_index]
        if self.costs is not None and not charged:
            # Queue for the gatekeeper's service time (stamping + the
            # backing-store commit round), then run the commit.
            done = self._gk_servers[gk_index].occupy(
                self.costs.gatekeeper_service
                + self.costs.store_commit_service
            )
            self.simulator.schedule_at(
                done,
                self._gatekeeper_commit,
                gk_index, operations, new_vertices, callback,
                trace_id, submitted, True,
            )
            return
        if gk.name in self._crashed:
            # The request dies with the server; the client re-submits
            # with a fresh stamp after recovery (section 4.3).
            self.aborted += 1
            if callback is not None:
                callback(False, None)
            return
        store_tx = self.store.begin()
        try:
            for vertex in new_vertices:
                self.mapping.assign(vertex, tx=store_tx)
            for op in operations:
                op.apply_store(store_tx, None)
            ts = gk.commit_prepared(
                store_tx, touched_vertices(operations), trace_id=trace_id
            )
        except TransactionAborted as exc:
            self.aborted += 1
            # commit_prepared aborts the store tx itself; belt-and-braces
            # for aborts raised before it was reached.
            if store_tx.is_open:
                store_tx.abort()
            if callback is not None:
                callback(False, exc)
            return
        self.committed += 1
        if self._geo:
            self._region_committed[
                self.topology.region_of(gk.name)
            ] += 1
        per_shard: Dict[int, List[Operation]] = {}
        for op in operations:
            (owner,) = op.touched()
            shard = self.mapping.lookup(owner)
            per_shard.setdefault(shard, []).append(op)
        for shard_index, ops_list in per_shard.items():
            self._send_to_shard(
                gk_index, shard_index, ts, tuple(ops_list), "tx",
                trace_id=trace_id,
            )
        # Tiga commit rule: a deadline-stamped transaction is not acked
        # to the client until its deadline passes, so the deadline order
        # can never contradict client-observed real time — the ack delay
        # is the latency cost the geo benchmark measures against the
        # oracle round trips it saves.
        deadline = getattr(ts, "deadline", None)
        if deadline is not None and deadline > self.simulator.now:
            self.simulator.schedule_at(
                deadline, self._ack_commit, ts, callback, submitted
            )
        else:
            self._ack_commit(ts, callback, submitted)

    def _ack_commit(self, ts, callback, submitted: float) -> None:
        self.latency_tx.observe(self.simulator.now - submitted)
        if callback is not None:
            callback(True, ts)

    def submit_program(
        self,
        program: NodeProgram,
        start: str,
        params: Any = None,
        callback: Optional[Callable[[ProgramResult], None]] = None,
    ) -> int:
        """Submit a node program; executes once every shard is ready.

        Returns the trace id assigned to the submission.
        """
        gk_index = next(self._gk_rr) % len(self.gatekeepers)
        gk_name = self.gatekeepers[gk_index].name
        self._programs_outstanding += 1
        trace_id = self.tracer.next_trace_id()
        self.tracer.emit(
            trace_id, "program.submit", node="client",
            program=program.name, gk=gk_index,
        )
        user_callback = callback

        def callback(result) -> None:  # noqa: F811 — completion wrapper
            self._programs_outstanding -= 1
            if user_callback is not None:
                user_callback(result)

        def stamp_and_queue(charged: bool = False) -> None:
            # Re-fetch by index: the gatekeeper bound at submit time may
            # have crashed (and been replaced) while this message was in
            # flight; stamping from the stale object would issue a
            # dead-epoch timestamp.
            gk = self.gatekeepers[gk_index]
            if gk.name in self._crashed:
                # The request dies with the server (section 4.3); the
                # completion wrapper must still run or the program leaks
                # as forever-outstanding.
                callback(None)
                return
            if self.costs is not None and not charged:
                done = self._gk_servers[gk_index].occupy(
                    self.costs.gatekeeper_service
                )
                self.simulator.schedule_at(done, stamp_and_queue, True)
                return
            ts = gk.issue_timestamp()
            query_id = next(self._query_counter)
            self.tracer.emit(
                trace_id, "program.stamp", node=gk.name,
                ts=ts, query_id=query_id,
            )
            self._pending_programs.append(
                (ts, [(start, params)], program, query_id,
                 callback, self.simulator.now, trace_id)
            )
            self._check_pending_programs()

        self.transport.send("client", gk_name, "prog-submit", stamp_and_queue)
        return trace_id

    def _restamp_pending_programs(self) -> None:
        live = [
            gk for gk in self.gatekeepers if gk.name not in self._crashed
        ]
        if not live:
            return
        restamped = []
        for entry in self._pending_programs:
            ts, frontier, program, query_id, callback, submitted, tid = entry
            fresh = live[query_id % len(live)].issue_timestamp()
            restamped.append(
                (fresh, frontier, program, query_id, callback, submitted,
                 tid)
            )
        self._pending_programs = restamped

    def _check_pending_programs(self) -> None:
        still_waiting = []
        for entry in self._pending_programs:
            ts, frontier, program, query_id, callback, submitted, tid = entry
            if all(shard.advance_to(ts) for shard in self.shards):
                resolver = self._resolver(ts)
                result = self.executor.execute(
                    program, frontier, resolver, ts, query_id
                )
                completion = self._charge_program_reads(result, resolver)
                if completion <= self.simulator.now:
                    self._finish_program(result, submitted, callback, tid)
                else:
                    self.simulator.schedule_at(
                        completion,
                        self._finish_program,
                        result, submitted, callback, tid,
                    )
            else:
                still_waiting.append(entry)
        self._pending_programs = still_waiting

    def _charge_program_reads(self, result, resolver=None) -> float:
        """Occupy the shards a program read; returns its completion time
        (now, when no cost model is attached).

        With a batching resolver (one that recorded ``shard_rounds``),
        inter-shard communication is charged per (shard, round): each
        batch pays one message-handling cost plus per-vertex read service
        — the paper's shard-to-shard batch propagation, instead of one
        message per vertex.  Without round data (the seed per-vertex
        path), fall back to charging each read-set vertex individually.
        """
        if self.costs is None:
            return self.simulator.now
        completion = self.simulator.now
        shard_rounds = getattr(resolver, "shard_rounds", None)
        if shard_rounds:
            for round_counts in shard_rounds:
                for shard_index, count in round_counts.items():
                    done = self._shard_servers[shard_index].occupy(
                        self.costs.shard_op_service
                        + count * self.costs.vertex_read_service
                    )
                    completion = max(completion, done)
            return completion
        per_shard: Dict[int, int] = {}
        for handle in result.read_set:
            shard_index = self.mapping.lookup(handle)
            if shard_index is not None:
                per_shard[shard_index] = per_shard.get(shard_index, 0) + 1
        for shard_index, count in per_shard.items():
            done = self._shard_servers[shard_index].occupy(
                count * self.costs.vertex_read_service
            )
            completion = max(completion, done)
        return completion

    def _finish_program(
        self, result, submitted: float, callback, trace_id=None
    ) -> None:
        latency = self.simulator.now - submitted
        self.program_latencies.append(latency)
        self.latency_program.observe(latency)
        if trace_id is not None:
            self.tracer.emit(
                trace_id, "program.complete", node="client",
            )
        if callback is not None:
            callback(result)

    def _resolver(self, ts: VectorTimestamp) -> ShardSnapshotResolver:
        return ShardSnapshotResolver(
            ts,
            self.mapping.lookup,
            self.shards,
            stats=self.executor.stats,
        )

    # -- driving -------------------------------------------------------

    def run(self, duration: float) -> None:
        """Advance simulated time by ``duration`` seconds."""
        self.simulator.run(until=self.simulator.now + duration)

    def run_until_quiet(self, max_extra: float = 1.0) -> None:
        """Run until every submitted program has completed (bounded by
        ``max_extra`` simulated seconds)."""
        deadline = self.simulator.now + max_extra
        step = max(self.nop_period, self.tau)
        while (
            self._programs_outstanding > 0
            and self.simulator.now < deadline
        ):
            self.simulator.run(until=self.simulator.now + step)

    # -- introspection --------------------------------------------------

    def _sim_metrics(self) -> Dict[str, float]:
        return {
            "sim.committed": self.committed,
            "sim.aborted": self.aborted,
            "sim.recoveries": self.recoveries,
            "sim.stragglers_dropped": self.stragglers_dropped,
            "sim.tau": self.tau,
        }

    def announce_messages(self) -> int:
        return self.network.stats.count("announce")

    def nop_messages(self) -> int:
        return self.network.stats.count("nop")

    def oracle_messages(self) -> int:
        """Client-visible oracle request count, *all* regions included.

        The chain head counts one increment per request it serves — but
        a geo deployment's region clients answer established-order reads
        from their local replicas without ever touching the head, so the
        head total alone undercounts coordination traffic by exactly the
        regions' ``local_queries``.  The τ controller fed head-only
        stats under-measures oracle pressure and pushes τ the wrong way
        (see the regression test); aggregate before observe().
        """
        total = self.oracle.stats.messages
        for rstats in self.parts.region_stats:
            total += rstats.local_queries
        return total
