"""Closed-loop clients for the event-driven deployment.

Drives a :class:`~repro.sim.deployment.SimulatedWeaver` the way the
paper's throughput experiments drive the real system: N clients, each
submitting its next operation the moment the previous one completes.
Because the deployment (with a cost model attached) charges gatekeeper
and shard service time, the measured throughput comes from the *actual
protocol* — stamps, queues, NOPs, oracle calls and all — rather than
from an analytic model.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..bench.metrics import LatencyRecorder
from .deployment import SimulatedWeaver

# An operation descriptor returned by the op factory:
#   ("tx", operations, new_vertices)       — a write transaction
#   ("prog", program, start, params)       — a node program
OpSpec = Tuple


class SimClients:
    """N always-busy clients against one simulated deployment."""

    def __init__(
        self,
        deployment: SimulatedWeaver,
        num_clients: int,
        op_factory: Callable[[int, int], Optional[OpSpec]],
    ):
        if num_clients <= 0:
            raise ValueError("need at least one client")
        self.deployment = deployment
        self.num_clients = num_clients
        self._op_factory = op_factory
        self._op_index = 0
        self.latencies = LatencyRecorder()
        self.completed = 0
        self.failed = 0
        self._outstanding = 0
        self._started_at: Optional[float] = None
        self._finished_at = 0.0

    # -- driving -------------------------------------------------------

    def start(self) -> None:
        """Give every client its first operation."""
        self._started_at = self.deployment.simulator.now
        for client_id in range(self.num_clients):
            self._issue(client_id)

    def _issue(self, client_id: int) -> None:
        spec = self._op_factory(client_id, self._op_index)
        if spec is None:
            return  # this client is done
        self._op_index += 1
        self._outstanding += 1
        submitted = self.deployment.simulator.now

        def done(ok: bool = True, value=None) -> None:
            self._complete(client_id, submitted, ok)

        if spec[0] == "tx":
            _, operations, new_vertices = spec
            self.deployment.submit_transaction(
                list(operations),
                callback=lambda ok, v: done(ok, v),
                new_vertices=tuple(new_vertices),
            )
        elif spec[0] == "prog":
            _, program, start, params = spec
            self.deployment.submit_program(
                program, start, params, callback=lambda r: done(True, r)
            )
        else:
            raise ValueError(f"unknown op spec {spec[0]!r}")

    def _complete(self, client_id: int, submitted: float, ok: bool) -> None:
        now = self.deployment.simulator.now
        self._outstanding -= 1
        self.latencies.record(now - submitted)
        self._finished_at = max(self._finished_at, now)
        if ok:
            self.completed += 1
        else:
            self.failed += 1
        self._issue(client_id)

    def run_to_completion(self, max_sim_seconds: float = 30.0) -> None:
        """Advance simulated time until every issued op has completed."""
        sim = self.deployment.simulator
        deadline = sim.now + max_sim_seconds
        step = max(
            self.deployment.nop_period, self.deployment.tau
        )
        while self._outstanding > 0 and sim.now < deadline:
            sim.run(until=min(deadline, sim.now + 50 * step))
        if self._outstanding:
            raise RuntimeError(
                f"{self._outstanding} operations still outstanding after "
                f"{max_sim_seconds} simulated seconds"
            )

    # -- results ------------------------------------------------------

    @property
    def makespan(self) -> float:
        if self._started_at is None:
            return 0.0
        return max(0.0, self._finished_at - self._started_at)

    @property
    def throughput(self) -> float:
        """Completed operations per simulated second."""
        if self.makespan <= 0:
            return 0.0
        return self.completed / self.makespan


def finite_stream(ops: List[OpSpec]) -> Callable[[int, int], Optional[OpSpec]]:
    """An op factory serving a fixed list, then stopping every client."""

    def factory(client_id: int, op_index: int) -> Optional[OpSpec]:
        if op_index < len(ops):
            return ops[op_index]
        return None

    return factory
