"""Simulated time.

All Weaver components in this reproduction run against a shared
:class:`SimClock` rather than the wall clock, which makes every experiment
deterministic and lets a laptop model a 44-machine cluster.  Time is a
float in **seconds**; the module exports the unit constants the paper's
parameters are quoted in (τ in microseconds, latencies in milliseconds).
"""

from __future__ import annotations

USEC = 1e-6
MSEC = 1e-3
SEC = 1.0


class SimClock:
    """A monotonically advancing simulated clock."""

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise ValueError("time starts at or after zero")
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, when: float) -> None:
        if when < self._now:
            raise ValueError(
                f"time cannot move backwards: {when} < {self._now}"
            )
        self._now = when

    def advance_by(self, delta: float) -> None:
        if delta < 0:
            raise ValueError("negative delta")
        self._now += delta

    def __repr__(self) -> str:
        return f"SimClock(t={self._now:.9f}s)"
