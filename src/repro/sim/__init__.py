"""Deterministic discrete-event simulation substrate.

This package stands in for the paper's physical clusters: servers are
serially-busy resources, messages pay configurable latency on FIFO
channels, and all time is simulated, so every experiment is exactly
reproducible.
"""

from .clock import MSEC, SEC, USEC, SimClock
from .simulator import Event, Server, Simulator
from .network import DEFAULT_LATENCY, Network, NetworkStats
from .faults import (
    CrashSpec,
    FaultInjector,
    FaultPlan,
    MessageFault,
    Partition,
)
from .deployment import SimulatedWeaver, TauController
from .workload import SimClients, finite_stream

__all__ = [
    "SimulatedWeaver",
    "TauController",
    "SimClients",
    "finite_stream",
    "MSEC",
    "SEC",
    "USEC",
    "SimClock",
    "Event",
    "Server",
    "Simulator",
    "DEFAULT_LATENCY",
    "Network",
    "NetworkStats",
    "FaultPlan",
    "FaultInjector",
    "MessageFault",
    "Partition",
    "CrashSpec",
]
