"""Deterministic fault injection for the simulated deployment.

Weaver's correctness story (sections 4.3-4.4) rests on surviving server
failures via epoch bumps while refinable timestamps keep ordering
strict-serializable.  The plain :class:`~repro.sim.network.Network`
delivers every message perfectly, so none of that machinery is exercised
by default.  This module supplies the chaos layer:

* :class:`MessageFault` — a probabilistic rule (drop / duplicate / delay)
  over matching messages, selected by kind, endpoint, time window, or an
  arbitrary per-channel predicate;
* :class:`Partition` — a bidirectional src <-> dst partition over a time
  window;
* :class:`CrashSpec` — a scheduled silent crash of one gatekeeper or
  shard server (its heartbeats stop; the failure detector and epoch-bump
  recovery do the rest, on simulated time);
* :class:`FaultPlan` — the declarative bundle of all of the above plus a
  seed, built fluently (``plan.drop(...).partition(...).crash_shard(...)``);
* :class:`FaultInjector` — applies a plan with a private seeded RNG that
  is consumed in network-send order, so a given (plan, workload) pair
  yields a bit-for-bit reproducible run.

Fault semantics respect the transport contract the protocol assumes.
Weaver requires FIFO, reliable channels between gatekeepers and shards
(section 4.2, sequence numbers); the real system gets them from TCP,
which turns packet loss into retransmission delay.  The injector models
that: a *drop* on a channel-sequenced kind becomes an extra retransmit
delay, and a *partition* defers delivery until the partition heals.
Kinds listed in :data:`LOSSY_KINDS` (periodic announces and heartbeats,
which the protocol genuinely tolerates losing) are truly dropped.
Duplicates are delivered twice — receivers must deduplicate, which the
sequence-number check on shard queues and the idempotent announce fold
both do.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from .clock import USEC

#: Fault actions understood by :class:`MessageFault`.
DROP = "drop"
DUPLICATE = "duplicate"
DELAY = "delay"
_ACTIONS = (DROP, DUPLICATE, DELAY)

#: Message kinds a true drop cannot hurt: both are periodic and the
#: protocol tolerates missing any single one (a later announce carries a
#: larger vector; a missed heartbeat only nudges the failure detector).
LOSSY_KINDS = frozenset({"announce", "heartbeat"})

#: Extra one-way delay charged when a reliable-channel message is
#: "dropped" (i.e. retransmitted by the transport).
DEFAULT_RETRANSMIT_DELAY = 500 * USEC

GATEKEEPER = "gatekeeper"
SHARD = "shard"


@dataclass(frozen=True)
class MessageFault:
    """One probabilistic fault rule over matching messages.

    A message matches when the simulated time lies in ``[start, end)``,
    the message ``kind`` is in ``kinds`` (None = any), ``src``/``dst``
    equal the given names (None = any), and ``predicate(src, dst, kind,
    now)`` — the per-channel hook — returns True (None = always).
    """

    action: str
    rate: float = 1.0
    extra_delay: float = DEFAULT_RETRANSMIT_DELAY
    kinds: Optional[frozenset] = None
    src: Optional[str] = None
    dst: Optional[str] = None
    start: float = 0.0
    end: float = math.inf
    predicate: Optional[Callable[[str, str, str, float], bool]] = None

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}")
        if not 0.0 < self.rate <= 1.0:
            raise ValueError("fault rate must be in (0, 1]")
        if self.extra_delay < 0:
            raise ValueError("extra_delay must be non-negative")

    def matches(self, src: str, dst: str, kind: str, now: float) -> bool:
        if not self.start <= now < self.end:
            return False
        if self.kinds is not None and kind not in self.kinds:
            return False
        if self.src is not None and src != self.src:
            return False
        if self.dst is not None and dst != self.dst:
            return False
        if self.predicate is not None and not self.predicate(
            src, dst, kind, now
        ):
            return False
        return True


@dataclass(frozen=True)
class Partition:
    """A bidirectional network partition between two endpoints.

    While active, lossy kinds between the endpoints vanish; reliable
    kinds are held by the transport and delivered once the partition
    heals (``end`` plus one retransmit delay), preserving channel FIFO.
    """

    a: str
    b: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("partition must end after it starts")

    def covers(self, src: str, dst: str, now: float) -> bool:
        if not self.start <= now < self.end:
            return False
        return (src == self.a and dst == self.b) or (
            src == self.b and dst == self.a
        )


@dataclass(frozen=True)
class CrashSpec:
    """A scheduled silent crash of one server.

    ``kind`` is :data:`GATEKEEPER` or :data:`SHARD`; ``at`` is the
    simulated time of death.  Recovery is *not* scheduled here — the
    cluster manager's failure detector notices the heartbeat silence and
    runs the section 4.3 recovery on its own.
    """

    kind: str
    index: int
    at: float

    def __post_init__(self) -> None:
        if self.kind not in (GATEKEEPER, SHARD):
            raise ValueError(f"unknown server kind {self.kind!r}")
        if self.index < 0:
            raise ValueError("server index must be non-negative")
        if self.at < 0:
            raise ValueError("crash time must be non-negative")


@dataclass(frozen=True)
class MessageFate:
    """The injector's decision for one message.

    ``copies`` is 0 (lost), 1 (normal), or 2 (duplicated);
    ``extra_delay`` is added to the channel latency; ``faults`` names the
    fault kinds that fired, for the network's per-kind counters.
    """

    extra_delay: float = 0.0
    copies: int = 1
    faults: Tuple[str, ...] = ()


_CLEAN = MessageFate()


class FaultPlan:
    """A declarative, seeded chaos schedule.

    Collects message-fault rules, partitions, and crash events.  The
    builder methods mutate and return ``self`` so plans read as one
    fluent expression::

        plan = (FaultPlan(seed=7)
                .drop(0.05, kinds=frozenset({"tx", "nop"}))
                .partition("gk0", "shard1", start=0.01, end=0.02)
                .crash_shard(1, at=0.03))
    """

    def __init__(
        self,
        seed: int = 0,
        messages: Tuple[MessageFault, ...] = (),
        partitions: Tuple[Partition, ...] = (),
        crashes: Tuple[CrashSpec, ...] = (),
        retransmit_delay: float = DEFAULT_RETRANSMIT_DELAY,
    ):
        if retransmit_delay < 0:
            raise ValueError("retransmit_delay must be non-negative")
        self.seed = seed
        self.messages: List[MessageFault] = list(messages)
        self.partitions: List[Partition] = list(partitions)
        self.crashes: List[CrashSpec] = list(crashes)
        self.retransmit_delay = retransmit_delay

    # -- fluent builders ------------------------------------------------

    def fault(self, rule: MessageFault) -> "FaultPlan":
        self.messages.append(rule)
        return self

    def drop(self, rate: float = 1.0, **match) -> "FaultPlan":
        return self.fault(MessageFault(DROP, rate=rate, **match))

    def duplicate(self, rate: float = 1.0, **match) -> "FaultPlan":
        return self.fault(MessageFault(DUPLICATE, rate=rate, **match))

    def delay(
        self,
        rate: float = 1.0,
        extra_delay: float = DEFAULT_RETRANSMIT_DELAY,
        **match,
    ) -> "FaultPlan":
        return self.fault(
            MessageFault(DELAY, rate=rate, extra_delay=extra_delay, **match)
        )

    def partition(
        self, a: str, b: str, start: float, end: float
    ) -> "FaultPlan":
        self.partitions.append(Partition(a, b, start, end))
        return self

    def crash_gatekeeper(self, index: int, at: float) -> "FaultPlan":
        self.crashes.append(CrashSpec(GATEKEEPER, index, at))
        return self

    def crash_shard(self, index: int, at: float) -> "FaultPlan":
        self.crashes.append(CrashSpec(SHARD, index, at))
        return self


class FaultInjector:
    """Applies a :class:`FaultPlan` deterministically.

    The RNG is private and consumed in network-send order; because the
    simulator itself is deterministic, a given (plan, workload, seed)
    triple produces the identical fault sequence on every run — the
    property the chaos smoke tests assert.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._rng = random.Random(plan.seed)

    def fate(self, src: str, dst: str, kind: str, now: float) -> MessageFate:
        """Decide what happens to one message sent right now."""
        extra = 0.0
        copies = 1
        faults: List[str] = []
        for part in self.plan.partitions:
            if not part.covers(src, dst, now):
                continue
            faults.append("partition")
            if kind in LOSSY_KINDS:
                copies = 0
            else:
                # Held by the transport until the partition heals.
                extra = max(
                    extra, (part.end - now) + self.plan.retransmit_delay
                )
        for rule in self.plan.messages:
            if not rule.matches(src, dst, kind, now):
                continue
            # Consume the RNG for every probabilistic rule that matches,
            # whether or not it fires: determinism depends only on the
            # message sequence, not on which faults happened to fire.
            if rule.rate < 1.0 and self._rng.random() >= rule.rate:
                continue
            if rule.action == DROP:
                faults.append(DROP)
                if kind in LOSSY_KINDS:
                    copies = 0
                else:
                    extra += rule.extra_delay
            elif rule.action == DUPLICATE:
                faults.append(DUPLICATE)
                if copies > 0:
                    copies = 2
            else:
                faults.append(DELAY)
                extra += rule.extra_delay
        if not faults:
            return _CLEAN
        if copies == 0:
            extra = 0.0
        return MessageFate(extra, copies, tuple(faults))
