"""A deterministic discrete-event simulator.

The simulator owns a :class:`~repro.sim.clock.SimClock` and a priority
queue of pending events.  Components schedule callbacks at future
simulated times; :meth:`Simulator.run` pops events in time order (FIFO
among ties, via a monotonically increasing sequence number) and invokes
them.  Nothing here is Weaver-specific; the cluster, the baselines, and
the workload drivers all run on the same engine so their simulated-time
results are directly comparable.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from .clock import SimClock


class Event:
    """A scheduled callback; cancellable."""

    __slots__ = ("when", "seq", "fn", "args", "cancelled")

    def __init__(self, when: float, seq: int, fn: Callable, args: tuple):
        self.when = when
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Simulator:
    """The event loop for one simulated world."""

    def __init__(self, clock: Optional[SimClock] = None):
        self.clock = clock or SimClock()
        self._queue: List[Tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self.events_run = 0

    @property
    def now(self) -> float:
        return self.clock.now

    def pending(self) -> int:
        return sum(1 for _, _, e in self._queue if not e.cancelled)

    def schedule_at(self, when: float, fn: Callable, *args) -> Event:
        """Run ``fn(*args)`` at simulated time ``when``."""
        if when < self.clock.now:
            raise ValueError(
                f"cannot schedule in the past: {when} < {self.clock.now}"
            )
        event = Event(when, next(self._seq), fn, args)
        heapq.heappush(self._queue, (when, event.seq, event))
        return event

    def schedule(self, delay: float, fn: Callable, *args) -> Event:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError("negative delay")
        return self.schedule_at(self.clock.now + delay, fn, *args)

    def step(self) -> bool:
        """Run the next event; returns False when the queue is empty."""
        while self._queue:
            when, _, event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.clock.advance_to(when)
            self.events_run += 1
            event.fn(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 10**9) -> None:
        """Drain the queue, optionally stopping at simulated time ``until``.

        When ``until`` is given, events scheduled later stay queued and the
        clock is advanced exactly to ``until`` on return.
        """
        remaining = max_events
        while self._queue and remaining > 0:
            when, _, event = self._queue[0]
            if until is not None and when > until:
                break
            heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.clock.advance_to(when)
            self.events_run += 1
            event.fn(*event.args)
            remaining -= 1
        if until is not None and self.clock.now < until:
            self.clock.advance_to(until)


class Server:
    """A serially-busy resource with a service queue.

    Models one server (a gatekeeper, a shard, a lock manager...) that can
    do one unit of work at a time.  ``occupy(cost)`` reserves the next
    available slot of ``cost`` simulated seconds and returns the completion
    time; callers then schedule their continuation at that time.  This
    captures queueing delay — the mechanism behind every throughput result
    in the evaluation — without simulating instruction execution.
    """

    def __init__(self, simulator: Simulator, name: str = "server"):
        self.simulator = simulator
        self.name = name
        self.busy_until = 0.0
        self.busy_time = 0.0
        self.jobs = 0

    def occupy(self, cost: float) -> float:
        """Reserve ``cost`` seconds of this server; return completion time."""
        if cost < 0:
            raise ValueError("negative cost")
        start = max(self.simulator.now, self.busy_until)
        finish = start + cost
        self.busy_until = finish
        self.busy_time += cost
        self.jobs += 1
        return finish

    def utilization(self, horizon: Optional[float] = None) -> float:
        """Fraction of time busy over [0, horizon or now]."""
        horizon = horizon if horizon is not None else self.simulator.now
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time / horizon)
