"""A simulated message-passing network with FIFO channels.

Weaver relies on FIFO channels between each gatekeeper-shard pair
(section 4.2, maintained with sequence numbers in the real system).  The
:class:`Network` here provides that guarantee directly: deliveries on one
(src, dst) channel never reorder, even when latency jitter would have a
later message overtake an earlier one.  Message counts are kept per
message kind, which is how the Fig 14 experiment measures announce and
oracle traffic.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, Optional, Tuple

from .clock import USEC
from .simulator import Simulator

DEFAULT_LATENCY = 100 * USEC  # one-way LAN hop, gigabit-era


class NetworkStats:
    """Counters of messages sent, by kind, and of injected faults."""

    def __init__(self) -> None:
        self.sent: Dict[str, int] = defaultdict(int)
        self.total = 0
        # Injected faults by fault kind: drop / duplicate / delay /
        # partition.  A "drop" on a reliable channel still counts here
        # even though it is delivered after a retransmit delay.
        self.faults: Dict[str, int] = defaultdict(int)

    def record(self, kind: str) -> None:
        self.sent[kind] += 1
        self.total += 1

    def record_fault(self, fault_kind: str) -> None:
        self.faults[fault_kind] += 1

    def count(self, kind: str) -> int:
        return self.sent.get(kind, 0)

    def fault_count(self, fault_kind: str) -> int:
        return self.faults.get(fault_kind, 0)

    def total_faults(self) -> int:
        return sum(self.faults.values())

    def reset(self) -> None:
        self.sent.clear()
        self.total = 0
        self.faults.clear()


class Network:
    """Latency-charging, FIFO-preserving message delivery."""

    def __init__(
        self,
        simulator: Simulator,
        latency: float = DEFAULT_LATENCY,
        jitter: float = 0.0,
        rng=None,
        fault_injector=None,
    ):
        if latency < 0 or jitter < 0:
            raise ValueError("latency and jitter must be non-negative")
        self.simulator = simulator
        self.latency = latency
        self.jitter = jitter
        self._rng = rng
        # Optional chaos layer (sim.faults.FaultInjector): consulted for
        # every message's fate — extra delay, loss, or duplication.
        self.fault_injector = fault_injector
        self.stats = NetworkStats()
        # Per-channel monotone delivery horizon and next sequence number.
        self._last_delivery: Dict[Tuple[str, str], float] = {}
        self._next_seqno: Dict[Tuple[str, str], int] = defaultdict(int)

    def _sample_latency(self) -> float:
        if self.jitter and self._rng is not None:
            return self.latency + self._rng.random() * self.jitter
        return self.latency

    def send(
        self,
        src: str,
        dst: str,
        handler: Callable,
        *args,
        kind: str = "message",
        latency: Optional[float] = None,
    ) -> int:
        """Deliver ``handler(*args)`` at ``dst`` after the channel latency.

        Returns the channel sequence number assigned to the message.  FIFO
        is enforced per (src, dst): a message is never delivered before one
        sent earlier on the same channel.
        """
        channel = (src, dst)
        seqno = self._next_seqno[channel]
        self._next_seqno[channel] += 1
        delay = latency if latency is not None else self._sample_latency()
        copies = 1
        if self.fault_injector is not None:
            fate = self.fault_injector.fate(
                src, dst, kind, self.simulator.now
            )
            for fault_kind in fate.faults:
                self.stats.record_fault(fault_kind)
            delay += fate.extra_delay
            copies = fate.copies
        self.stats.record(kind)
        if copies <= 0:
            # Truly lost: the channel's delivery horizon is untouched, so
            # later messages are not held back by a vanished one.
            return seqno
        deliver_at = self.simulator.now + delay
        floor = self._last_delivery.get(channel, 0.0)
        if deliver_at < floor:
            deliver_at = floor
        self._last_delivery[channel] = deliver_at
        for _ in range(copies):
            self.simulator.schedule_at(deliver_at, handler, *args)
        return seqno

    def broadcast(
        self,
        src: str,
        destinations,
        handler_for: Callable[[str], Callable],
        *args,
        kind: str = "message",
    ) -> None:
        """Send the same payload to many destinations.

        ``handler_for(dst)`` returns the delivery callable for each
        destination, so each target can bind its own receive method.
        """
        for dst in destinations:
            self.send(src, dst, handler_for(dst), *args, kind=kind)
