"""A simulated message-passing network with FIFO channels.

Weaver relies on FIFO channels between each gatekeeper-shard pair
(section 4.2, maintained with sequence numbers in the real system).  The
:class:`Network` here provides that guarantee directly: deliveries on one
(src, dst) channel never reorder, even when latency jitter would have a
later message overtake an earlier one.  Message counts are kept per
message kind, which is how the Fig 14 experiment measures announce and
oracle traffic.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, Optional, Sequence, Tuple

from .clock import USEC
from .simulator import Simulator

DEFAULT_LATENCY = 100 * USEC  # one-way LAN hop, gigabit-era


class RegionTopology:
    """Asymmetric per-(src, dst)-region one-way latency/jitter matrix.

    A geo deployment places each server in a region; messages between two
    servers are charged the latency of the (src region, dst region) edge
    instead of the network's single global latency.  The matrix need not
    be symmetric (transit routing rarely is) but must be square, fully
    populated, and non-negative.  Servers not explicitly assigned live in
    region 0, so a topology with every edge equal to the old global
    latency reproduces single-region behavior exactly.
    """

    def __init__(
        self,
        latency: Sequence[Sequence[float]],
        jitter: Optional[Sequence[Sequence[float]]] = None,
    ):
        self._latency = tuple(tuple(float(c) for c in row) for row in latency)
        n = len(self._latency)
        if n == 0:
            raise ValueError("topology needs at least one region")
        for row in self._latency:
            if len(row) != n:
                raise ValueError(
                    f"latency matrix must be square: row of length "
                    f"{len(row)} in a {n}-region topology"
                )
            for cell in row:
                if cell < 0:
                    raise ValueError("latencies must be non-negative")
        if jitter is None:
            self._jitter = tuple((0.0,) * n for _ in range(n))
        else:
            self._jitter = tuple(
                tuple(float(c) for c in row) for row in jitter
            )
            if len(self._jitter) != n or any(
                len(row) != n for row in self._jitter
            ):
                raise ValueError("jitter matrix shape must match latency")
            for row in self._jitter:
                for cell in row:
                    if cell < 0:
                        raise ValueError("jitter must be non-negative")
        self._region_of: Dict[str, int] = {}

    @property
    def num_regions(self) -> int:
        return len(self._latency)

    def assign(self, name: str, region: int) -> None:
        """Place server ``name`` in ``region``."""
        if not 0 <= region < self.num_regions:
            raise ValueError(
                f"region {region} out of range for "
                f"{self.num_regions}-region topology"
            )
        self._region_of[name] = region

    def region_of(self, name: str) -> int:
        """The region a server lives in (region 0 when unassigned)."""
        return self._region_of.get(name, 0)

    @property
    def assignments(self) -> Dict[str, int]:
        """A copy of the explicit server-to-region placements."""
        return dict(self._region_of)

    def edge(self, src_region: int, dst_region: int) -> Tuple[float, float]:
        """(latency, jitter) of the one-way (src, dst) region edge."""
        return (
            self._latency[src_region][dst_region],
            self._jitter[src_region][dst_region],
        )

    def one_way(self, src_region: int, dst_region: int) -> float:
        return self._latency[src_region][dst_region]

    def reach(self, src_region: int) -> float:
        """Worst-case one-way delay from ``src_region`` to any region.

        This is the horizon a deadline stamp must clear: a message sent
        now from ``src_region`` has arrived everywhere by ``now +
        reach(src_region)`` (latency plus full jitter on every edge).
        """
        return max(
            lat + jit
            for lat, jit in zip(
                self._latency[src_region], self._jitter[src_region]
            )
        )

    def max_reach(self) -> float:
        """Worst-case one-way delay over every region pair."""
        return max(self.reach(r) for r in range(self.num_regions))


class NetworkStats:
    """Counters of messages sent, by kind, and of injected faults."""

    def __init__(self) -> None:
        self.sent: Dict[str, int] = defaultdict(int)
        self.total = 0
        # Injected faults by fault kind: drop / duplicate / delay /
        # partition.  A "drop" on a reliable channel still counts here
        # even though it is delivered after a retransmit delay.
        self.faults: Dict[str, int] = defaultdict(int)
        # Per-(src region, kind) counts — populated only when the network
        # has a RegionTopology, and read by the per-region TauControllers.
        self.region_sent: Dict[Tuple[int, str], int] = defaultdict(int)

    def record(self, kind: str) -> None:
        self.sent[kind] += 1
        self.total += 1

    def record_region(self, region: int, kind: str) -> None:
        self.region_sent[(region, kind)] += 1

    def region_count(self, region: int, kind: str) -> int:
        return self.region_sent.get((region, kind), 0)

    def record_fault(self, fault_kind: str) -> None:
        self.faults[fault_kind] += 1

    def count(self, kind: str) -> int:
        return self.sent.get(kind, 0)

    def fault_count(self, fault_kind: str) -> int:
        return self.faults.get(fault_kind, 0)

    def total_faults(self) -> int:
        return sum(self.faults.values())

    def reset(self) -> None:
        self.sent.clear()
        self.total = 0
        self.faults.clear()
        self.region_sent.clear()


class Network:
    """Latency-charging, FIFO-preserving message delivery."""

    def __init__(
        self,
        simulator: Simulator,
        latency: float = DEFAULT_LATENCY,
        jitter: float = 0.0,
        rng=None,
        fault_injector=None,
        topology: Optional[RegionTopology] = None,
    ):
        if latency < 0 or jitter < 0:
            raise ValueError("latency and jitter must be non-negative")
        self.simulator = simulator
        self.latency = latency
        self.jitter = jitter
        self._rng = rng
        # Optional chaos layer (sim.faults.FaultInjector): consulted for
        # every message's fate — extra delay, loss, or duplication.
        self.fault_injector = fault_injector
        # Optional geo layer: per-(src, dst)-region latency matrix.  When
        # absent the single global latency applies, bit-identical to the
        # pre-region behavior.
        self.topology = topology
        self.stats = NetworkStats()
        # Per-channel monotone delivery horizon and next sequence number.
        self._last_delivery: Dict[Tuple[str, str], float] = {}
        self._next_seqno: Dict[Tuple[str, str], int] = defaultdict(int)

    def _sample_latency(self, src: str, dst: str) -> float:
        if self.topology is not None:
            base, jit = self.topology.edge(
                self.topology.region_of(src), self.topology.region_of(dst)
            )
        else:
            base, jit = self.latency, self.jitter
        if jit and self._rng is not None:
            return base + self._rng.random() * jit
        return base

    def send(
        self,
        src: str,
        dst: str,
        handler: Callable,
        *args,
        kind: str = "message",
        latency: Optional[float] = None,
    ) -> int:
        """Deliver ``handler(*args)`` at ``dst`` after the channel latency.

        Returns the channel sequence number assigned to the message.  FIFO
        is enforced per (src, dst): a message is never delivered before one
        sent earlier on the same channel.
        """
        channel = (src, dst)
        seqno = self._next_seqno[channel]
        self._next_seqno[channel] += 1
        delay = (
            latency if latency is not None else self._sample_latency(src, dst)
        )
        copies = 1
        if self.fault_injector is not None:
            fate = self.fault_injector.fate(
                src, dst, kind, self.simulator.now
            )
            for fault_kind in fate.faults:
                self.stats.record_fault(fault_kind)
            delay += fate.extra_delay
            copies = fate.copies
        self.stats.record(kind)
        if self.topology is not None:
            self.stats.record_region(self.topology.region_of(src), kind)
        if copies <= 0:
            # Truly lost: the channel's delivery horizon is untouched, so
            # later messages are not held back by a vanished one.
            return seqno
        deliver_at = self.simulator.now + delay
        floor = self._last_delivery.get(channel, 0.0)
        if deliver_at < floor:
            deliver_at = floor
        self._last_delivery[channel] = deliver_at
        for _ in range(copies):
            self.simulator.schedule_at(deliver_at, handler, *args)
        return seqno

    def broadcast(
        self,
        src: str,
        destinations,
        handler_for: Callable[[str], Callable],
        *args,
        kind: str = "message",
    ) -> None:
        """Send the same payload to many destinations.

        ``handler_for(dst)`` returns the delivery callable for each
        destination, so each target can bind its own receive method.
        """
        for dst in destinations:
            self.send(src, dst, handler_for(dst), *args, kind=kind)
