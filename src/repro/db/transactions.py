"""Client-side transactions: the ``weaver_tx`` block of section 2.2.

A :class:`Transaction` buffers graph write operations and applies each one
immediately to a private backing-store transaction, which provides
read-your-writes, early validity errors (deleting a deleted vertex aborts
now, not at commit), and the OCC read set used for validation.  At commit
the owning gatekeeper stamps the transaction, checks last-update
timestamp monotonicity, and atomically commits to the backing store; the
database then forwards the operation list to the involved shards.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional

from ..core.vclock import VectorTimestamp
from ..errors import NoSuchEdge, NoSuchVertex, TransactionError
from ..store.kvstore import StoreTransaction
from . import operations as ops
from .operations import Operation


class Transaction:
    """One ACID read-write transaction against Weaver."""

    def __init__(self, db: "weaver_database", gatekeeper_index: int):
        self._db = db
        self.gatekeeper_index = gatekeeper_index
        self.store_tx: StoreTransaction = db.store.begin()
        self.operations: List[Operation] = []
        self._created_vertices: List[str] = []
        self._state = "open"
        self.timestamp: Optional[VectorTimestamp] = None
        # Observability id assigned by the database at begin; carried to
        # the gatekeeper and the shards so every hop's spans join up.
        self.trace_id: Optional[int] = None

    # -- lifecycle ------------------------------------------------------

    @property
    def is_open(self) -> bool:
        return self._state == "open"

    def _check_open(self) -> None:
        if self._state != "open":
            raise TransactionError(f"transaction is {self._state}")

    def commit(self) -> VectorTimestamp:
        """Commit; returns the refinable timestamp assigned.

        Raises :class:`~repro.errors.TransactionAborted` on conflict, in
        which case the client should retry with a fresh transaction (see
        :meth:`WeaverClient.transact`).
        """
        self._check_open()
        try:
            ts = self._db._commit_transaction(self)
        except Exception:
            self._state = "aborted"
            raise
        self._state = "committed"
        self.timestamp = ts
        return ts

    def abort(self) -> None:
        self._check_open()
        if self.store_tx.is_open:
            self.store_tx.abort()
        self._state = "aborted"

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._state == "open":
            if exc_type is None:
                self.commit()
            else:
                self.abort()
        return False

    # -- graph writes ------------------------------------------------------

    def _record(self, operation: Operation) -> None:
        self._check_open()
        # Applying immediately gives early validity errors and makes the
        # operation visible to this transaction's own later reads.
        operation.apply_store(self.store_tx, None)
        self.operations.append(operation)

    def create_vertex(self, handle: Optional[str] = None) -> str:
        """Create a vertex; generates a handle when none is given."""
        if handle is None:
            handle = self._db.new_handle("v")
        self._record(ops.CreateVertex(handle))
        self._created_vertices.append(handle)
        return handle

    # The paper's API calls vertices "nodes"; keep both spellings.
    create_node = create_vertex

    def delete_vertex(self, handle: str) -> None:
        self._record(ops.DeleteVertex(handle))

    def create_edge(
        self, src: str, dst: str, handle: Optional[str] = None
    ) -> str:
        if handle is None:
            handle = self._db.new_handle("e")
        self._record(ops.CreateEdge(handle, src, dst))
        return handle

    def delete_edge(self, src: str, handle: str) -> None:
        self._record(ops.DeleteEdge(src, handle))

    def set_property(self, vertex: str, key: str, value: Any) -> None:
        self._record(ops.SetVertexProperty(vertex, key, value))

    def delete_property(self, vertex: str, key: str) -> None:
        self._record(ops.DeleteVertexProperty(vertex, key))

    def set_edge_property(
        self, src: str, edge: str, key: str, value: Any
    ) -> None:
        self._record(ops.SetEdgeProperty(src, edge, key, value))

    def delete_edge_property(self, src: str, edge: str, key: str) -> None:
        self._record(ops.DeleteEdgeProperty(src, edge, key))

    def assign_property(self, edge: str, src: str, key: str, value: Any = True) -> None:
        """The paper's ``assign_property(edge, "OWNS")`` convenience: tag
        an edge with a (key, value) property, value defaulting to True."""
        self.set_edge_property(src, edge, key, value)

    # -- reads (at the transaction's snapshot, own writes visible) --------

    def get_vertex(self, handle: str) -> Dict[str, Any]:
        """The vertex's property map; raises if it does not exist."""
        self._check_open()
        record = self.store_tx.get(ops.vertex_key(handle))
        if record is None:
            raise NoSuchVertex(handle)
        return dict(record)

    def vertex_exists(self, handle: str) -> bool:
        self._check_open()
        return self.store_tx.exists(ops.vertex_key(handle))

    def get_edge(self, src: str, handle: str) -> Dict[str, Any]:
        """The edge record {"dst":..., "props":...}; raises if missing."""
        self._check_open()
        record = self.store_tx.get(ops.edge_key(src, handle))
        if record is None:
            raise NoSuchEdge(handle)
        return {"dst": record["dst"], "props": dict(record.get("props", {}))}

    # -- introspection ----------------------------------------------

    @property
    def touched_vertices(self) -> FrozenSet[str]:
        return ops.touched_vertices(self.operations)

    @property
    def created_vertices(self) -> List[str]:
        return list(self._created_vertices)

    def __len__(self) -> int:
        return len(self.operations)
