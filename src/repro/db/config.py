"""Configuration for a Weaver deployment."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class WeaverConfig:
    """Knobs of one Weaver instance.

    Attributes:
        num_gatekeepers: size of the gatekeeper bank (Fig 12's axis).
        num_shards: number of graph partitions (Fig 13's axis).
        announce_every: commits between synchronous vector-clock announce
            rounds — the direct-mode analogue of the paper's τ.  1 keeps
            clocks tight (almost everything orders proactively); larger
            values push more pairs to the timeline oracle, which is the
            tradeoff Fig 14 sweeps.
        oracle_chain_length: replicas in the timeline oracle chain
            (1 = unreplicated; 3 = the paper's fault-tolerant setup).
        use_ordering_cache: let shards cache oracle decisions
            (section 4.2; ablation A3).
        enable_program_cache: memoize node-program results at vertices
            (section 4.6; disabled by default, as in the paper's
            evaluation; ablation A1).
        program_cache_capacity: LRU capacity of the program cache.
        partitioner: vertex placement — "round_robin" (balanced,
            locality-blind; the paper's evaluation setting), "hash", or
            "ldg" (streaming greedy colocation, section 4.6).
        drain_every: commits between background queue drains; bounds
            shard queue memory in long write-only stretches.
        store_nodes: 0 runs the backing store as a single transactional
            object; N >= 1 partitions it across N store nodes with
            Warp-style linear transactions and replication.
        store_replication: replicas per key when the store is
            distributed (>= 2 survives any single store-node failure).
        store_backend: "memory" keeps version chains in the Python heap
            (the historical default); "sqlite" persists them in a
            SQLite/WAL database so committed state survives kill -9 and
            the graph can exceed RAM.  Incompatible with ``store_nodes``
            (the distributed store is an in-memory deployment shape).
        store_path: database file for the sqlite backend (":memory:"
            for an ephemeral database; required to be a real path for
            multiprocess recovery, where workers reopen the file).
        store_cache_bytes: page-cache budget of the sqlite backend.
        program_execution: where the process deployment runs node
            programs — "resident" ships eligible programs to the shard
            workers (rounds execute at the data, frontiers travel
            worker-to-worker, O(shards) wire messages per round);
            "images" forces the legacy client-side executor that pulls
            vertex images (O(frontier) messages per round).  In-process
            deployments ignore this knob.
        store_background_compaction: run durable-store compaction on an
            opportunistic background thread instead of synchronously
            inside every garbage-collection tick (watermark-safe via
            the store's ``safe_compact_version`` refcounts).
        num_regions: geo-distributed regions.  1 (the default) is the
            classic single-cluster deployment; >1 spreads the gatekeeper
            bank round-robin across regions and (in the simulator)
            enables region-aware announce phases, per-region tau
            controllers, and Tiga-style deadline stamping.  Cannot
            exceed num_gatekeepers (every region needs a gatekeeper).
    """

    num_gatekeepers: int = 2
    num_shards: int = 2
    announce_every: int = 1
    oracle_chain_length: int = 1
    use_ordering_cache: bool = True
    enable_program_cache: bool = False
    program_cache_capacity: int = 4096
    partitioner: str = "round_robin"
    drain_every: int = 256
    store_nodes: int = 0
    store_replication: int = 2
    store_backend: str = "memory"
    store_path: str = ":memory:"
    store_cache_bytes: int = 8 * 1024 * 1024
    program_execution: str = "resident"
    store_background_compaction: bool = False
    num_regions: int = 1

    def __post_init__(self) -> None:
        if self.num_gatekeepers < 1:
            raise ValueError("need at least one gatekeeper")
        if self.num_shards < 1:
            raise ValueError("need at least one shard")
        if self.announce_every < 1:
            raise ValueError("announce_every must be >= 1")
        if self.oracle_chain_length < 1:
            raise ValueError("oracle chain needs a replica")
        if self.partitioner not in ("round_robin", "hash", "ldg"):
            raise ValueError(f"unknown partitioner {self.partitioner!r}")
        if self.drain_every < 1:
            raise ValueError("drain_every must be >= 1")
        if self.store_nodes < 0:
            raise ValueError("store_nodes must be >= 0")
        if self.store_nodes and not (
            1 <= self.store_replication <= self.store_nodes
        ):
            raise ValueError(
                "store_replication must be in [1, store_nodes]"
            )
        if self.store_backend not in ("memory", "sqlite"):
            raise ValueError(
                f"unknown store backend {self.store_backend!r}"
            )
        if self.store_backend == "sqlite" and self.store_nodes:
            raise ValueError(
                "store_backend='sqlite' is incompatible with store_nodes"
            )
        if self.store_cache_bytes < 0:
            raise ValueError("store_cache_bytes must be >= 0")
        if self.program_execution not in ("resident", "images"):
            raise ValueError(
                f"unknown program_execution {self.program_execution!r}"
            )
        if self.num_regions < 1:
            raise ValueError("num_regions must be >= 1")
        if self.num_regions > self.num_gatekeepers:
            raise ValueError(
                "num_regions cannot exceed num_gatekeepers: every region "
                "needs at least one gatekeeper"
            )
