"""The user-facing database layer."""

from .config import WeaverConfig
from .database import Weaver
from .client import WeaverClient
from .transactions import Transaction
from . import operations

__all__ = [
    "WeaverConfig",
    "Weaver",
    "WeaverClient",
    "Transaction",
    "operations",
]
