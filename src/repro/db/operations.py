"""Graph write operations and their two execution targets.

A Weaver transaction is a buffered list of operations (section 2.2).  Each
operation knows how to do three things:

* ``touched()`` — the vertex handles it writes, used for shard routing and
  for the gatekeeper's last-update timestamp check;
* ``apply_store(tx, ts)`` — execute against the durable backing store,
  where validity is checked (deleting a deleted vertex aborts, exactly as
  in section 4.2);
* ``apply_graph(graph, ts)`` — replay onto a shard's in-memory
  multi-version graph after the backing store committed.

The backing-store schema: a vertex lives at ``v:<handle>`` as a dict of
its properties, an edge at ``e:<src>:<handle>`` as a dict with ``dst`` and
``props``.  The schema is private to this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Tuple

from ..core.vclock import VectorTimestamp
from ..errors import TransactionAborted
from ..graph.mvgraph import MultiVersionGraph
from ..store.kvstore import StoreTransaction


def vertex_key(handle: str) -> str:
    return f"v:{handle}"


def edge_key(src: str, handle: str) -> str:
    return f"e:{src}:{handle}"


class Operation:
    """Base class for all graph write operations."""

    def touched(self) -> FrozenSet[str]:
        raise NotImplementedError

    def apply_store(self, tx: StoreTransaction, ts: VectorTimestamp) -> None:
        raise NotImplementedError

    def apply_graph(
        self, graph: MultiVersionGraph, ts: VectorTimestamp
    ) -> None:
        raise NotImplementedError


@dataclass(frozen=True)
class CreateVertex(Operation):
    handle: str

    def touched(self) -> FrozenSet[str]:
        return frozenset((self.handle,))

    def apply_store(self, tx: StoreTransaction, ts: VectorTimestamp) -> None:
        key = vertex_key(self.handle)
        if tx.exists(key):
            raise TransactionAborted(f"vertex {self.handle!r} exists")
        tx.put(key, {})

    def apply_graph(
        self, graph: MultiVersionGraph, ts: VectorTimestamp
    ) -> None:
        graph.create_vertex(self.handle, ts)


@dataclass(frozen=True)
class DeleteVertex(Operation):
    handle: str

    def touched(self) -> FrozenSet[str]:
        return frozenset((self.handle,))

    def apply_store(self, tx: StoreTransaction, ts: VectorTimestamp) -> None:
        key = vertex_key(self.handle)
        if not tx.exists(key):
            raise TransactionAborted(f"vertex {self.handle!r} already gone")
        tx.delete(key)

    def apply_graph(
        self, graph: MultiVersionGraph, ts: VectorTimestamp
    ) -> None:
        graph.delete_vertex(self.handle, ts)


@dataclass(frozen=True)
class CreateEdge(Operation):
    handle: str
    src: str
    dst: str

    def touched(self) -> FrozenSet[str]:
        # An edge lives with its source; the write only mutates the source
        # partition, but creating an edge to a missing vertex must abort,
        # so the destination is read (not written) during apply_store.
        return frozenset((self.src,))

    def apply_store(self, tx: StoreTransaction, ts: VectorTimestamp) -> None:
        if not tx.exists(vertex_key(self.src)):
            raise TransactionAborted(f"source {self.src!r} missing")
        if not tx.exists(vertex_key(self.dst)):
            raise TransactionAborted(f"destination {self.dst!r} missing")
        key = edge_key(self.src, self.handle)
        if tx.exists(key):
            raise TransactionAborted(f"edge {self.handle!r} exists")
        tx.put(key, {"dst": self.dst, "props": {}})

    def apply_graph(
        self, graph: MultiVersionGraph, ts: VectorTimestamp
    ) -> None:
        graph.create_edge(self.handle, self.src, self.dst, ts)


@dataclass(frozen=True)
class DeleteEdge(Operation):
    src: str
    handle: str

    def touched(self) -> FrozenSet[str]:
        return frozenset((self.src,))

    def apply_store(self, tx: StoreTransaction, ts: VectorTimestamp) -> None:
        key = edge_key(self.src, self.handle)
        if not tx.exists(key):
            raise TransactionAborted(f"edge {self.handle!r} already gone")
        tx.delete(key)

    def apply_graph(
        self, graph: MultiVersionGraph, ts: VectorTimestamp
    ) -> None:
        graph.delete_edge(self.src, self.handle, ts)


@dataclass(frozen=True)
class SetVertexProperty(Operation):
    handle: str
    key: str
    value: Any

    def touched(self) -> FrozenSet[str]:
        return frozenset((self.handle,))

    def apply_store(self, tx: StoreTransaction, ts: VectorTimestamp) -> None:
        vkey = vertex_key(self.handle)
        record = tx.get(vkey)
        if record is None:
            raise TransactionAborted(f"vertex {self.handle!r} missing")
        updated = dict(record)
        updated[self.key] = self.value
        tx.put(vkey, updated)

    def apply_graph(
        self, graph: MultiVersionGraph, ts: VectorTimestamp
    ) -> None:
        graph.set_vertex_property(self.handle, self.key, self.value, ts)


@dataclass(frozen=True)
class DeleteVertexProperty(Operation):
    handle: str
    key: str

    def touched(self) -> FrozenSet[str]:
        return frozenset((self.handle,))

    def apply_store(self, tx: StoreTransaction, ts: VectorTimestamp) -> None:
        vkey = vertex_key(self.handle)
        record = tx.get(vkey)
        if record is None:
            raise TransactionAborted(f"vertex {self.handle!r} missing")
        updated = dict(record)
        updated.pop(self.key, None)
        tx.put(vkey, updated)

    def apply_graph(
        self, graph: MultiVersionGraph, ts: VectorTimestamp
    ) -> None:
        graph.delete_vertex_property(self.handle, self.key, ts)


@dataclass(frozen=True)
class SetEdgeProperty(Operation):
    src: str
    handle: str
    key: str
    value: Any

    def touched(self) -> FrozenSet[str]:
        return frozenset((self.src,))

    def apply_store(self, tx: StoreTransaction, ts: VectorTimestamp) -> None:
        ekey = edge_key(self.src, self.handle)
        record = tx.get(ekey)
        if record is None:
            raise TransactionAborted(f"edge {self.handle!r} missing")
        updated = dict(record)
        props = dict(updated.get("props", {}))
        props[self.key] = self.value
        updated["props"] = props
        tx.put(ekey, updated)

    def apply_graph(
        self, graph: MultiVersionGraph, ts: VectorTimestamp
    ) -> None:
        graph.set_edge_property(
            self.src, self.handle, self.key, self.value, ts
        )


@dataclass(frozen=True)
class DeleteEdgeProperty(Operation):
    src: str
    handle: str
    key: str

    def touched(self) -> FrozenSet[str]:
        return frozenset((self.src,))

    def apply_store(self, tx: StoreTransaction, ts: VectorTimestamp) -> None:
        ekey = edge_key(self.src, self.handle)
        record = tx.get(ekey)
        if record is None:
            raise TransactionAborted(f"edge {self.handle!r} missing")
        updated = dict(record)
        props = dict(updated.get("props", {}))
        props.pop(self.key, None)
        updated["props"] = props
        tx.put(ekey, updated)

    def apply_graph(
        self, graph: MultiVersionGraph, ts: VectorTimestamp
    ) -> None:
        graph.delete_edge_property(self.src, self.handle, self.key, ts)


def touched_vertices(operations) -> FrozenSet[str]:
    """Union of vertices written by a list of operations."""
    touched: FrozenSet[str] = frozenset()
    for op in operations:
        touched |= op.touched()
    return touched


def graph_state_from_store(store_snapshot: Dict[str, Any]) -> Tuple[
    Dict[str, Dict[str, Any]], Dict[Tuple[str, str], Dict[str, Any]]
]:
    """Decode a backing-store snapshot into vertex and edge tables.

    Used by shard recovery (section 4.3): a replacement shard reloads its
    partition from the durable store.  Returns ``(vertices, edges)`` where
    vertices maps handle -> properties and edges maps (src, handle) ->
    {"dst":..., "props":...}.
    """
    vertices: Dict[str, Dict[str, Any]] = {}
    edges: Dict[Tuple[str, str], Dict[str, Any]] = {}
    for key, value in store_snapshot.items():
        if key.startswith("v:"):
            vertices[key[2:]] = value
        elif key.startswith("e:"):
            src, handle = key[2:].split(":", 1)
            edges[(src, handle)] = value
    return vertices, edges
