"""The client API: transactions with retry, and query helpers.

:class:`WeaverClient` is the surface applications program against
(section 2).  It wraps a :class:`~repro.db.database.Weaver` instance with:

* ``transaction()`` / ``transact(fn)`` — the ``weaver_tx`` block, with
  automatic retry on optimistic aborts (the client-retries rule of
  section 4.2);
* one helper per stock node program (``get_node``, ``traverse``,
  ``reachable``, ...), each running on a consistent snapshot.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional

from ..core.vclock import VectorTimestamp
from ..errors import TransactionAborted, WeaverError
from ..programs import library
from ..programs.framework import NodeProgram, ProgramResult
from .database import Weaver
from .transactions import Transaction

#: Base delay for the first retry backoff, in seconds.
DEFAULT_BACKOFF_BASE = 1e-4
#: Backoff is capped so a long retry chain stays bounded.
DEFAULT_BACKOFF_CAP = 0.1


class WeaverClient:
    """A connection to a Weaver deployment."""

    def __init__(
        self,
        db: Weaver,
        max_retries: int = 16,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        backoff_cap: float = DEFAULT_BACKOFF_CAP,
        sleep: Optional[Callable[[float], None]] = None,
        rng: Optional[random.Random] = None,
    ):
        """``sleep`` and ``rng`` are injectable so tests and simulated
        deployments stay deterministic: the default sleep is a no-op (the
        reproduction has no real wall-clock to burn), and the jitter RNG
        is private rather than the process-global one."""
        self._db = db
        self._max_retries = max_retries
        self._backoff_base = backoff_base
        self._backoff_cap = backoff_cap
        self._sleep = sleep if sleep is not None else (lambda _delay: None)
        self._rng = rng if rng is not None else random.Random(0)

    @property
    def db(self) -> Weaver:
        return self._db

    # -- transactions ----------------------------------------------------

    def transaction(self, gatekeeper: Optional[int] = None) -> Transaction:
        """Open a transaction; use as a context manager for auto-commit."""
        return self._db.begin_transaction(gatekeeper)

    def transact(
        self,
        fn: Callable[[Transaction], Any],
        gatekeeper: Optional[int] = None,
    ) -> Any:
        """Run ``fn(tx)`` and commit, retrying on optimistic aborts.

        Whatever happens — an abort, or any exception out of ``fn`` —
        the transaction is closed before control leaves the attempt, so
        no open ``store_tx`` leaks.  Retries back off exponentially with
        full jitter to decorrelate contending clients.
        """
        last: Optional[TransactionAborted] = None
        for attempt in range(self._max_retries):
            if attempt:
                ceiling = min(
                    self._backoff_cap,
                    self._backoff_base * (2 ** (attempt - 1)),
                )
                self._sleep(self._rng.random() * ceiling)
            tx = self._db.begin_transaction(gatekeeper)
            if attempt:
                self._db.tracer.emit(
                    tx.trace_id, "client.retry", node="client",
                    attempt=attempt,
                )
            try:
                result = fn(tx)
                tx.commit()
                return result
            except TransactionAborted as exc:
                last = exc
            finally:
                if tx.is_open:
                    tx.abort()
        raise last if last else WeaverError("transact failed")

    # -- vertex/edge conveniences ---------------------------------------

    def create_vertex(self, handle: Optional[str] = None) -> str:
        return self.transact(lambda tx: tx.create_vertex(handle))

    def create_edge(
        self, src: str, dst: str, handle: Optional[str] = None
    ) -> str:
        return self.transact(lambda tx: tx.create_edge(src, dst, handle))

    def delete_vertex(self, handle: str) -> None:
        self.transact(lambda tx: tx.delete_vertex(handle))

    def delete_edge(self, src: str, handle: str) -> None:
        self.transact(lambda tx: tx.delete_edge(src, handle))

    def set_property(self, vertex: str, key: str, value: Any) -> None:
        self.transact(lambda tx: tx.set_property(vertex, key, value))

    # -- node-program helpers ------------------------------------------

    def run_program(
        self,
        program: NodeProgram,
        start,
        params: Any = None,
        at: Optional[VectorTimestamp] = None,
        use_cache: bool = False,
    ) -> ProgramResult:
        return self._db.run_program(
            program, start, params, at=at, use_cache=use_cache
        )

    def get_node(
        self, vertex: str, at: Optional[VectorTimestamp] = None
    ) -> Dict[str, Any]:
        """One vertex's properties and degree (TAO get_node)."""
        return self.run_program(library.GetNode(), vertex, at=at).value

    def get_edges(
        self,
        vertex: str,
        edge_prop: Optional[str] = None,
        at: Optional[VectorTimestamp] = None,
    ) -> List[Dict[str, Any]]:
        params = library.params(edge_prop=edge_prop)
        return self.run_program(
            library.GetEdges(), vertex, params, at=at
        ).value

    def count_edges(
        self,
        vertex: str,
        edge_prop: Optional[str] = None,
        at: Optional[VectorTimestamp] = None,
    ) -> int:
        params = library.params(edge_prop=edge_prop)
        return self.run_program(
            library.CountEdges(), vertex, params, at=at
        ).value

    def traverse(
        self,
        start: str,
        edge_prop: Optional[str] = None,
        max_depth: Optional[int] = None,
        at: Optional[VectorTimestamp] = None,
    ) -> List[str]:
        """BFS from ``start``; returns visited vertices in visit order."""
        params = library.params(
            edge_prop=edge_prop, depth=0, max_depth=max_depth
        )
        return self.run_program(library.Bfs(), start, params, at=at).results

    def reachable(
        self,
        src: str,
        dst: str,
        at: Optional[VectorTimestamp] = None,
    ) -> bool:
        params = library.params(target=dst)
        result = self.run_program(library.Reachability(), src, params, at=at)
        return bool(result.results)

    def shortest_path_length(
        self,
        src: str,
        dst: str,
        at: Optional[VectorTimestamp] = None,
    ) -> Optional[int]:
        params = library.params(target=dst, dist=0)
        result = self.run_program(library.ShortestPath(), src, params, at=at)
        return result.results[0] if result.results else None

    def find_path(
        self,
        src: str,
        dst: str,
        edge_prop: Optional[str] = None,
        at: Optional[VectorTimestamp] = None,
    ) -> Optional[List[str]]:
        """One path from src to dst, or None (the Fig 1 query)."""
        params = library.params(target=dst, path=(), edge_prop=edge_prop)
        result = self.run_program(library.PathDiscovery(), src, params, at=at)
        return result.results[0] if result.results else None

    def clustering_coefficient(
        self, vertex: str, at: Optional[VectorTimestamp] = None
    ) -> float:
        program = library.ClusteringCoefficient()
        result = self.run_program(
            program, vertex, library.params(phase="center"), at=at
        )
        return library.ClusteringCoefficient.aggregate(result)

    def render_block(
        self,
        block: str,
        at: Optional[VectorTimestamp] = None,
        use_cache: bool = False,
    ) -> Dict[str, Any]:
        """CoinGraph's block query: header plus all transactions."""
        result = self.run_program(
            library.BlockRender(),
            block,
            library.params(phase="block"),
            at=at,
            use_cache=use_cache,
        )
        header = result.results[0]
        return {
            "block": header["block"],
            "header": header["header"],
            "n_tx": header["n_tx"],
            "transactions": result.results[1:],
        }
