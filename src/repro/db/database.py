"""The Weaver database: gatekeepers + shards + oracle + backing store.

This is the top-level assembly (Fig 4).  It owns:

* a bank of **gatekeepers** that stamp and commit transactions,
* **shard servers** holding in-memory multi-version graph partitions,
* the **timeline oracle** (optionally chain-replicated),
* the transactional **backing store** and the vertex→shard mapping,
* the **cluster manager** for failure handling,
* the node-program **executor**, the GC **watermark registry**, and the
  optional program **cache**.

Direct mode (this class) executes the full protocol synchronously —
announce rounds every ``announce_every`` commits play the role of the τ
timer, and NOP heartbeats are issued eagerly when a node program needs
every queue non-empty.  The benchmark harness wraps the same servers in
the discrete-event simulator to charge latencies and service times.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Dict, Hashable, Iterable, List, Optional, Tuple, Union

from ..cluster.builder import build_cluster
from ..cluster.messages import QueuedTransaction
from ..cluster.shard import ShardServer
from ..core.gatekeeper import Gatekeeper, sync_announce_all
from ..core.vclock import VectorTimestamp
from ..errors import ClusterError, NoSuchVertex
from ..graph.partition import HashPartitioner, LdgPartitioner
from ..programs.caching import ChangeTracker, ProgramCache
from ..programs.framework import NodeProgram, ProgramExecutor, ProgramResult
from ..programs.routing import ShardSnapshotResolver
from ..programs.state import WatermarkRegistry
from ..store.kvstore import TransactionalStore
from ..store.mapping import ShardMapping
from .config import WeaverConfig
from .transactions import Transaction

StartSpec = Union[str, Iterable[Tuple[str, Any]]]


class Weaver:
    """A complete Weaver deployment in one process."""

    def __init__(self, config: Optional[WeaverConfig] = None):
        # One deployment-neutral assembly (cluster/builder.py) shared
        # with the simulated and multiprocess deployments; the parts
        # lists are the live ones (recovery replaces elements in place,
        # and the registered collectors follow).
        parts = build_cluster(config)
        self.parts = parts
        self.config = parts.config
        cfg = self.config
        self.store: TransactionalStore = parts.store
        self.mapping = parts.mapping
        self.oracle = parts.oracle
        self.gatekeepers: List[Gatekeeper] = parts.gatekeepers
        self.shards: List[ShardServer] = parts.shards
        self.manager = parts.manager
        self.executor = parts.executor
        self.watermarks = WatermarkRegistry(
            cmp=lambda a, b: a.compare(b)
        )
        self.changes = ChangeTracker()
        self.program_cache: Optional[ProgramCache] = (
            ProgramCache(self.changes, cfg.program_cache_capacity)
            if cfg.enable_program_cache
            else None
        )
        # Observability: one registry + tracer per deployment.  Direct
        # mode has no time axis, so spans default to their emission
        # sequence number as the timestamp (still a total order).
        self.metrics = parts.metrics
        self.tracer = parts.tracer
        self._handle_counter = itertools.count()
        self._query_counter = itertools.count(1)
        self._next_gk = itertools.count()
        # Sender-assigned tiebreak ranks: one global send order across
        # all channels, which extends backing-store commit order because
        # forwarding happens synchronously at commit.
        self._send_rank = itertools.count()
        self._commits = 0
        self._commits_since_drain = 0
        self._channel_seqno: Dict[Tuple[int, int], int] = {}
        self._placement: Dict[str, int] = {}
        self._hash_partitioner = HashPartitioner(cfg.num_shards)
        self._ldg_partitioner = LdgPartitioner(cfg.num_shards)
        self._paging_enabled = False
        self._replicas: list = []
        self.programs_run = 0

    # -- identifiers ------------------------------------------------------

    def new_handle(self, prefix: str = "v") -> str:
        return f"{prefix}{next(self._handle_counter)}"

    def _pick_gatekeeper(self) -> int:
        return next(self._next_gk) % len(self.gatekeepers)

    # -- transactions (section 4.2) ----------------------------------------

    def begin_transaction(
        self, gatekeeper: Optional[int] = None
    ) -> Transaction:
        """Open a read-write transaction routed through one gatekeeper."""
        index = (
            gatekeeper if gatekeeper is not None else self._pick_gatekeeper()
        )
        if not 0 <= index < len(self.gatekeepers):
            raise ClusterError(f"no gatekeeper {index}")
        tx = Transaction(self, index)
        tx.trace_id = self.tracer.next_trace_id()
        self.tracer.emit(
            tx.trace_id, "client.submit", node="client", gk=index
        )
        return tx

    # Transaction.commit() lands here.
    def _commit_transaction(self, tx: Transaction) -> VectorTimestamp:
        gk = self.gatekeepers[tx.gatekeeper_index]
        self._place_new_vertices(tx)
        ts = gk.commit_prepared(
            tx.store_tx, tx.touched_vertices, trace_id=tx.trace_id
        )
        self._forward_to_shards(gk.index, ts, tx)
        self.changes.bump_all(tx.touched_vertices)
        self._commits += 1
        if self._commits % self.config.announce_every == 0:
            sync_announce_all(self.gatekeepers)
        self._commits_since_drain += 1
        if self._commits_since_drain >= self.config.drain_every:
            self.drain()
        return ts

    def _place_new_vertices(self, tx: Transaction) -> None:
        """Install shard assignments for created vertices, atomically with
        the transaction itself (they share the store transaction)."""
        for vertex in tx.created_vertices:
            if self.config.partitioner == "hash":
                shard = self._hash_partitioner.assign(vertex)
                self.mapping.assign(vertex, tx=tx.store_tx, shard=shard)
            elif self.config.partitioner == "ldg":
                shard = self._ldg_partitioner.assign(vertex, ())
                self.mapping.assign(vertex, tx=tx.store_tx, shard=shard)
            else:
                shard = self.mapping.assign(vertex, tx=tx.store_tx)
            self._placement[vertex] = shard

    def _shard_of(self, vertex: str) -> Optional[int]:
        shard = self._placement.get(vertex)
        if shard is None:
            shard = self.mapping.lookup(vertex)
            if shard is not None:
                self._placement[vertex] = shard
        return shard

    def _forward_to_shards(
        self, gk_index: int, ts: VectorTimestamp, tx: Transaction
    ) -> None:
        """Group the committed operations by owning shard and enqueue
        (FIFO sequence numbers per gatekeeper-shard channel)."""
        per_shard: Dict[int, List] = {}
        for op in tx.operations:
            (owner,) = op.touched()
            shard = self._shard_of(owner)
            if shard is None:
                raise NoSuchVertex(owner)
            per_shard.setdefault(shard, []).append(op)
        for shard_index, ops_list in per_shard.items():
            self._enqueue(
                gk_index,
                shard_index,
                QueuedTransaction(
                    ts, tuple(ops_list), trace_id=tx.trace_id
                ),
            )

    def _enqueue(
        self, gk_index: int, shard_index: int, qtx: QueuedTransaction
    ) -> None:
        channel = (gk_index, shard_index)
        seqno = self._channel_seqno.get(channel, 0)
        self._channel_seqno[channel] = seqno + 1
        stamped = dataclasses.replace(
            qtx, seqno=seqno, tiebreak=next(self._send_rank)
        )
        self.shards[shard_index].enqueue(gk_index, stamped)

    # -- queue pumping -----------------------------------------------------

    def _send_nops(self) -> None:
        """One NOP from every gatekeeper to every shard (section 4.2's
        heartbeat, issued eagerly instead of on a 10 µs timer).

        A single announce round runs first; after it, each NOP is folded
        directly into the next gatekeeper's clock before that one ticks,
        so the NOPs form a vector-clock chain instead of a mutually-
        concurrent set — heartbeats then order proactively and never
        burden the oracle, as in the real system where announces
        (τ ~ tens of µs) interleave the NOP timers.  Chaining costs G-1
        point-to-point folds instead of the seed's G full announce
        rounds (O(G²) messages each).
        """
        sync_announce_all(self.gatekeepers)
        previous: Optional[VectorTimestamp] = None
        for gk in self.gatekeepers:
            if previous is not None:
                gk.receive_announce(previous.clocks)
            nop_ts = gk.make_nop()
            previous = nop_ts
            for shard in self.shards:
                self._enqueue(gk.index, shard.index, QueuedTransaction(nop_ts))
        # Announce the final NOP too, so every later stamp dominates it.
        sync_announce_all(self.gatekeepers)

    def drain(self) -> int:
        """Announce, heartbeat, and apply everything applicable."""
        self._send_nops()
        self._commits_since_drain = 0
        return sum(shard.apply_available() for shard in self.shards)

    # -- node programs (section 4.1) ---------------------------------------

    def run_program(
        self,
        program: NodeProgram,
        start: StartSpec,
        params: Any = None,
        at: Optional[VectorTimestamp] = None,
        use_cache: bool = False,
        cache_key: Optional[Hashable] = None,
    ) -> ProgramResult:
        """Execute a node program on a consistent snapshot.

        ``start`` is a vertex handle or an iterable of (handle, params)
        pairs.  ``at`` runs a historical query at an earlier timestamp.
        With ``use_cache`` (requires ``enable_program_cache``), a valid
        memoized result for (program, start, cache_key) is returned
        without touching the graph.
        """
        frontier = (
            [(start, params)] if isinstance(start, str) else list(start)
        )
        query_id = next(self._query_counter)
        trace_id = self.tracer.next_trace_id()
        self.tracer.emit(
            trace_id, "program.submit", node="client",
            query_id=query_id, program=program.name,
        )
        cache_entry_key = None
        if use_cache and self.program_cache is not None:
            first = frontier[0][0] if frontier else ""
            key_tail = cache_key if cache_key is not None else repr(params)
            # Historical queries read a different cut of the graph; a
            # current-time result must never serve an ``at=`` query (or
            # vice versa), so the snapshot identity is part of the key.
            if at is not None:
                key_tail = (key_tail, at.id)
            cache_entry_key = ProgramCache.key(program.name, first, key_tail)
            cached = self.program_cache.get(cache_entry_key)
            if cached is not None:
                # A hit is still a client-observed run: count it and
                # close the trace so `repro stats`/`repro trace` agree
                # with what clients saw.
                self.programs_run += 1
                self.tracer.emit(
                    trace_id, "program.complete", node="client",
                    query_id=query_id, cache_hit=True,
                )
                return cached
        gk = self.gatekeepers[self._pick_gatekeeper()]
        ts = at if at is not None else gk.issue_timestamp()
        self.tracer.emit(
            trace_id, "program.stamp", node=gk.name,
            ts=ts, query_id=query_id,
        )
        self._make_shards_ready(ts)
        self.watermarks.start(query_id, ts)
        try:
            result = self.executor.execute(
                program, frontier, self._resolver(ts), ts, query_id
            )
        finally:
            self.watermarks.finish(query_id)
        self.programs_run += 1
        self.tracer.emit(
            trace_id, "program.complete", node="client", query_id=query_id
        )
        if cache_entry_key is not None:
            self.program_cache.put(cache_entry_key, result, result.read_set)
        return result

    # -- dynamic repartitioning (section 4.6) ------------------------------

    def migrate_vertex(self, handle: str, to_shard: int) -> bool:
        """Move one vertex (with its full version history) to a shard.

        The paper's dynamic colocation: a vertex is moved next to the
        majority of its neighbours to cut traversal communication.
        Pending queued work is applied first, the record travels with
        all its versions (historical queries keep working), and the
        durable vertex→shard mapping is updated atomically.  Returns
        False when the vertex already lives there.
        """
        if not 0 <= to_shard < len(self.shards):
            raise ClusterError(f"no shard {to_shard}")
        from_shard = self._shard_of(handle)
        if from_shard is None:
            raise NoSuchVertex(handle)
        if from_shard == to_shard:
            return False
        self.drain()
        # A paged-out vertex must be resident before its record can move.
        self.shards[from_shard].ensure_paged(handle)
        vertex, archived = self.shards[from_shard].graph.release_vertex(
            handle
        )
        self.shards[to_shard].graph.adopt_vertex(vertex, archived)
        self.mapping.assign(handle, shard=to_shard)
        self._placement[handle] = to_shard
        return True

    def rebalance(self, max_moves: int = 64, min_gain: int = 1) -> int:
        """Greedy locality pass: move vertices toward their neighbours.

        For every vertex, count neighbours (both directions) per shard
        and migrate it to the plurality shard when that improves its
        colocated-neighbour count by at least ``min_gain``.  Returns the
        number of migrations performed.  This is the online counterpart
        of the offline LDG partitioner (ablation A2) and the mechanism
        sketch of section 4.6.
        """
        from .operations import graph_state_from_store

        _, edges = graph_state_from_store(self.store.snapshot())
        neighbors: Dict[str, List[str]] = {}
        for (src, _), record in edges.items():
            neighbors.setdefault(src, []).append(record["dst"])
            neighbors.setdefault(record["dst"], []).append(src)
        moves = 0
        for handle, nbrs in neighbors.items():
            if moves >= max_moves:
                break
            here = self._shard_of(handle)
            if here is None:
                continue
            counts: Dict[int, int] = {}
            for nbr in nbrs:
                shard = self._shard_of(nbr)
                if shard is not None:
                    counts[shard] = counts.get(shard, 0) + 1
            if not counts:
                continue
            best = max(counts, key=lambda s: counts[s])
            if best != here and (
                counts[best] - counts.get(here, 0) >= min_gain
            ):
                if self.migrate_vertex(handle, best):
                    moves += 1
        return moves

    def edge_cut(self) -> Tuple[int, int]:
        """(cut, total) over committed edges — the locality metric the
        partitioning machinery optimizes."""
        from .operations import graph_state_from_store

        _, edges = graph_state_from_store(self.store.snapshot())
        cut = 0
        for (src, _), record in edges.items():
            a = self._shard_of(src)
            b = self._shard_of(record["dst"])
            if a is not None and b is not None and a != b:
                cut += 1
        return cut, len(edges)

    # -- read replicas (section 6.4) --------------------------------------

    def add_read_replica(self, shard_index: int):
        """Attach an eventually-consistent read replica to one shard.

        Replica reads bypass the ordering machinery entirely (weaker
        consistency, per section 6.4); call :meth:`refresh_replicas` to
        advance them to the current committed state.
        """
        from ..cluster.replica import ReadReplica

        if not 0 <= shard_index < len(self.shards):
            raise ClusterError(f"no shard {shard_index}")
        replica = ReadReplica(self.shards[shard_index])
        self._replicas.append(replica)
        replica.refresh(self.checkpoint())
        self.drain()
        return replica

    def refresh_replicas(self) -> None:
        """Advance every replica to a fresh consistent snapshot."""
        if not self._replicas:
            return
        point = self.checkpoint()
        self.drain()
        for replica in self._replicas:
            replica.refresh(point)

    # -- demand paging (section 6.1) -------------------------------------

    def enable_demand_paging(self) -> None:
        """Let shards evict vertices and reload them from the backing
        store on access — how the paper's CoinGraph deployment fit 900 GB
        of blockchain into 704 GB of cluster memory."""
        self._paging_enabled = True
        for shard in self.shards:
            shard.set_pager(self._load_vertex_image)

    def _load_vertex_image(self, handle: str):
        from .operations import vertex_key

        record = self.store.get(vertex_key(handle))
        if record is None:
            return None
        prefix = f"e:{handle}:"
        edges = {
            key[len(prefix):]: self.store.get(key)
            for key in self.store.keys(prefix)
        }
        return {"properties": dict(record), "edges": edges}

    def evict_vertex(self, handle: str) -> int:
        """Page one vertex out of shard memory.

        Queued work is applied first so no in-flight operation targets
        the evicted record; the next access pages it back in.
        """
        shard_index = self._shard_of(handle)
        if shard_index is None:
            raise NoSuchVertex(handle)
        self.drain()
        return self.shards[shard_index].evict(handle)

    def paging_stats(self) -> Dict[str, int]:
        return {
            "pages_in": sum(s.stats.pages_in for s in self.shards),
            "pages_out": sum(s.stats.pages_out for s in self.shards),
        }

    def checkpoint(self) -> VectorTimestamp:
        """A timestamp usable for stable historical queries.

        The returned stamp dominates every committed write, and the
        announce round after issuing it guarantees every *later* stamp
        dominates it — so a query ``at=checkpoint`` always sees exactly
        the writes committed before the call, no matter when it runs
        (section 3.1's multi-version historical reads).
        """
        sync_announce_all(self.gatekeepers)
        ts = self.gatekeepers[self._pick_gatekeeper()].issue_timestamp()
        sync_announce_all(self.gatekeepers)
        return ts

    def _make_shards_ready(self, ts: VectorTimestamp) -> None:
        """Block (logically) until every shard may execute at ``ts``.

        Fast path first: when every shard can already execute at ``ts``
        (all queues non-empty with heads ordered after ``ts``, typically
        because a recent drain or program left fresh heartbeats behind),
        skip the announce/NOP storm entirely.  Otherwise announce so
        later heartbeats dominate ``ts``, heartbeat so every queue is
        non-empty, then apply all work ordered before ``ts``.
        """
        if all(shard.advance_to(ts) for shard in self.shards):
            self.executor.stats.readiness_fastpath_hits += 1
            return
        self.executor.stats.readiness_storms += 1
        self._send_nops()
        for shard in self.shards:
            if not shard.advance_to(ts):
                raise ClusterError(
                    f"{shard.name} not ready for {ts} despite heartbeats"
                )

    def _resolver(self, ts: VectorTimestamp) -> ShardSnapshotResolver:
        return ShardSnapshotResolver(
            ts,
            self._shard_of,
            self.shards,
            stats=self.executor.stats,
            page_in=True,
        )

    # -- garbage collection (section 4.5) -----------------------------------

    def collect_garbage(self) -> Dict[str, int]:
        """Reclaim multi-version state below the GC watermark.

        The watermark is the oldest in-flight node program, or — when the
        system is idle — a fresh clock snapshot that dominates every
        issued timestamp (everything old is reclaimable).
        """
        sync_announce_all(self.gatekeepers)
        fallback = self.gatekeepers[0].current_watermark()
        watermark = self.watermarks.watermark(fallback)
        if watermark is None:
            return {"graph": 0, "oracle": 0}
        self.drain()
        graph_reclaimed = sum(
            shard.collect_below(watermark) for shard in self.shards
        )
        oracle_reclaimed = self.oracle.collect_below(watermark)
        # Shard-local decision caches hold entries keyed on collected
        # events; evict the ones the watermark dominates so the caches
        # stay bounded within an epoch too.
        cache_evicted = sum(
            shard.ordering.cache.evict_below(watermark)
            for shard in self.shards
            if shard.ordering.cache is not None
        )
        # Store compaction uses the store's own commit counter, not the
        # vector watermark: every version below the oldest open store
        # snapshot is superseded for all future readers.  When the
        # opportunistic background compactor owns reclamation, the GC
        # tick must not double-compact under it.
        if getattr(self.store, "background_compaction_active", False):
            store_reclaimed = 0
        else:
            store_reclaimed = self.store.collect_below(
                self.store.safe_compact_version()
            )
        return {
            "graph": graph_reclaimed,
            "oracle": oracle_reclaimed,
            "ordering_cache": cache_evicted,
            "store": store_reclaimed,
        }

    # -- failure handling (section 4.3) -----------------------------------

    def fail_shard(self, index: int) -> ShardServer:
        """Crash and recover one shard server.

        In-flight (committed but unapplied) work on surviving shards is
        applied first — the epoch barrier; the replacement reloads its
        partition from the backing store.
        """
        self.drain()
        replacement = self.manager.recover_shard(index)
        replacement.tracer = self.tracer
        self.shards[index] = replacement
        if self._paging_enabled:
            replacement.set_pager(self._load_vertex_image)
        self._reset_channels()
        return replacement

    def fail_gatekeeper(self, index: int) -> Gatekeeper:
        """Crash and recover one gatekeeper (epoch bump, clocks restart)."""
        self.drain()
        replacement = self.manager.recover_gatekeeper(index)
        replacement.tracer = self.tracer
        self.gatekeepers[index] = replacement
        self._reset_channels()
        return replacement

    def _reset_channels(self) -> None:
        # The epoch barrier cleared every shard queue and its expected
        # sequence numbers; restart the sender side to match.
        self._channel_seqno.clear()

    # -- statistics -----------------------------------------------------

    def ordering_stats(self) -> Dict[str, int]:
        """Aggregate proactive/cached/reactive comparison counts across
        shards — the Fig 9 'reactively ordered' percentages."""
        totals = {"proactive": 0, "cached": 0, "reactive": 0}
        for shard in self.shards:
            stats = shard.ordering.stats
            totals["proactive"] += stats.proactive
            totals["cached"] += stats.cached
            totals["reactive"] += stats.reactive
        return totals

    def fastpath_stats(self) -> Dict[str, int]:
        """Counters for work the ordering fast paths avoided entirely.

        Kept separate from :meth:`ordering_stats` so the reactive-fraction
        arithmetic the figures report stays on resolved comparisons only.
        """
        totals = {
            "snapshot_memo_hits": 0,
            "heap_compares_saved": 0,
            "cache_hits": 0,
        }
        for shard in self.shards:
            stats = shard.ordering.stats
            totals["snapshot_memo_hits"] += stats.snapshot_memo_hits
            totals["heap_compares_saved"] += stats.heap_compares_saved
            if shard.ordering.cache is not None:
                totals["cache_hits"] += shard.ordering.cache.hits
        oracle_stats = self.oracle_head().stats
        totals["oracle_bfs_expansions"] = oracle_stats.bfs_expansions
        totals["oracle_bfs_pruned"] = oracle_stats.bfs_pruned
        totals["oracle_reach_cache_hits"] = oracle_stats.reach_cache_hits
        return totals

    def oracle_head(self):
        """The oracle state machine holding authoritative stats."""
        return getattr(self.oracle, "head", self.oracle)
