"""Streaming strict-serializability checking with bounded memory.

The offline :class:`~repro.verify.history.HistoryChecker` is a pairwise
referee: it retains the whole run and compares O(n^2) pairs at the end,
which caps chaos runs at seconds.  This module is the same referee
rebuilt as a *stream processor* (after the online timestamp-based
checkers of arXiv:2504.01477 and the vector-clock atomicity checkers of
arXiv:2001.04961): it attaches to the obs tracer as a span sink — the
exact contract ``History.attach`` uses — folds every span into
vector-clock windows keyed by the refinable-timestamp order, and emits
the same :class:`~repro.verify.history.Violation` taxonomy while the
run is still going.

Three ideas make it linear:

* **Order-keyed records.**  Every span carries its own logical position
  (the backing store's commit version on ``store.commit``, the shard's
  ``(epoch, apply_seq)`` on ``shard.apply``), so arrival order is
  irrelevant: records are compared in *logical* order no matter how the
  transport shuffled their spans.

* **Watermark settlement.**  Events stay *pending* until a
  ``gc.watermark`` span announces that everything below a timestamp is
  final (the deployment emits it just before the oracle's
  ``collect_below`` — i.e. while the decisions the checks need are
  still queryable).  A settled event is checked once, against the
  retained window, and never revisited: amortized O(1) comparisons per
  event when the watermark advances steadily, because the window holds
  only the events of one watermark interval plus one *floor* write per
  live vertex and each shard's apply frontier.

* **Commutative digests.**  Commit/read/apply records fold into the
  same order-independent accumulator :class:`History` uses, so
  ``OnlineChecker.digest() == History.digest()`` holds bit-for-bit on
  every finite prefix of the same span stream — the parity invariant
  the soak harness asserts after every chunk.

What windowing gives up: pairs that straddle a pruned window boundary
(two same-vertex writes more than one floor apart) are not re-compared,
so the online verdict can miss a violation the unbounded offline
checker would catch — and conversely it can *catch* one whose oracle
decision a later GC discards before an end-of-run offline check runs.
The differential suite pins both checkers to identical verdicts in the
no-GC configurations where they see the same evidence.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..core.vclock import Ordering, VectorTimestamp
from .history import (
    DecidedOrder,
    StreamDigest,
    Violation,
    apply_entry,
    combined_digest,
    commit_entry,
    read_entry,
)

StampId = Tuple[int, int, int]


class _Commit:
    """One pending-or-retained commit (mutable: the seq back-patches)."""

    __slots__ = (
        "tag", "ts", "commit_seq", "writes", "submitted_at", "acked_at",
        "arrival", "refs",
    )

    def __init__(self, tag, ts, commit_seq, writes, submitted_at,
                 acked_at, arrival):
        self.tag = tag
        self.ts = ts
        self.commit_seq = commit_seq
        self.writes = writes
        self.submitted_at = submitted_at
        self.acked_at = acked_at
        self.arrival = arrival
        self.refs = 0  # windows currently retaining this commit

    def __repr__(self):
        return f"_Commit(tag={self.tag}, seq={self.commit_seq})"


class _Read:
    __slots__ = ("query_id", "ts", "reads", "submitted_at", "completed_at")

    def __init__(self, query_id, ts, reads, submitted_at, completed_at):
        self.query_id = query_id
        self.ts = ts
        self.reads = reads
        self.submitted_at = submitted_at
        self.completed_at = completed_at


class _Apply:
    __slots__ = ("shard", "key", "ts", "arrival")

    def __init__(self, shard, key, ts, arrival):
        self.shard = shard
        self.key = key
        self.ts = ts
        self.arrival = arrival


class CheckerStats:
    """Counters and window gauges, exported as ``checker.*``."""

    def __init__(self) -> None:
        self.events = 0
        self.commits = 0
        self.reads = 0
        self.applies = 0
        self.store_joins = 0
        self.watermarks = 0
        self.settled = 0
        self.pruned = 0
        self.violations = 0
        self.evidence_records = 0
        self.evidence_hits = 0
        self.window_pending = 0
        self.window_writes = 0
        self.window_frontier = 0
        self.window_total = 0
        self.window_peak = 0


class EvidenceCache:
    """Bounded, durable trail of pruned commits (tag -> identity).

    Watermark pruning deletes a retained commit's tag entry once no
    write window references it, which used to cost the checker its
    fine-grained verdict: a read settling *below* the pruning floor that
    observed a pruned tag could no longer be told apart from a read of a
    tag nobody ever committed, so both were convicted as "phantom-read".
    This cache keeps the evidence needed to tell them apart — the pruned
    commit's tag, stamp id, and store commit seq — in a
    :class:`~repro.store.durable.DurableStore` version chain (the
    durable home the store layer already maintains for committed state),
    bounded by ``capacity`` with insertion-order eviction.
    """

    PREFIX = "__evidence__:"
    SEQ_PREFIX = "__seq__:"

    def __init__(self, store=None, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("evidence capacity must be >= 1")
        if store is None:
            from ..store.durable import DurableStore

            store = DurableStore(":memory:")
        self._store = store
        self._capacity = capacity
        self._order: List[Any] = []  # tags, insertion order
        self._seq_order: List[StampId] = []  # stamp ids, insertion order

    def __len__(self) -> int:
        return len(self._order) + len(self._seq_order)

    def record(self, tag, stamp_id: StampId, commit_seq: int) -> None:
        """Retain one pruned commit's identity, evicting the oldest."""
        tx = self._store.begin()
        if tx.get(self.PREFIX + repr(tag)) is None:
            self._order.append(tag)
        tx.put(self.PREFIX + repr(tag), (stamp_id, commit_seq))
        while len(self._order) > self._capacity:
            victim = self._order.pop(0)
            tx.delete(self.PREFIX + repr(victim))
        tx.commit()

    def lookup(self, tag) -> Optional[Tuple[StampId, int]]:
        """The (stamp id, commit seq) evidence for ``tag``, or None."""
        tx = self._store.begin()
        try:
            return tx.get(self.PREFIX + repr(tag))
        finally:
            tx.abort()

    def record_seqs(self, stamp_id: StampId, seqs: List[int]) -> None:
        """Retain store commit seqs whose ``txn.commit`` span is still
        in flight when the watermark covers them — routine under
        deadline-delayed geo acks, where the client span trails the
        store span by up to the region's reach."""
        if not seqs:
            return
        tx = self._store.begin()
        key = self.SEQ_PREFIX + repr(stamp_id)
        existing = tx.get(key)
        if existing is None:
            self._seq_order.append(stamp_id)
            existing = []
        tx.put(key, list(existing) + list(seqs))
        while len(self._seq_order) > self._capacity:
            victim = self._seq_order.pop(0)
            tx.delete(self.SEQ_PREFIX + repr(victim))
        tx.commit()

    def take_seq(self, stamp_id: StampId) -> Optional[int]:
        """Pop the oldest retained seq for ``stamp_id``, or None."""
        tx = self._store.begin()
        key = self.SEQ_PREFIX + repr(stamp_id)
        seqs = tx.get(key)
        if not seqs:
            tx.abort()
            return None
        seq = seqs[0]
        if len(seqs) > 1:
            tx.put(key, seqs[1:])
        else:
            tx.delete(key)
            self._seq_order.remove(stamp_id)
        tx.commit()
        return seq


class OnlineChecker:
    """Streaming referee: same taxonomy as ``HistoryChecker``, O(1) amortized.

    ``compare`` is the decided-order relation (see
    :func:`~repro.verify.history.decided_order`).  Attach with
    :meth:`attach` (or feed spans to :meth:`consume` directly), let the
    deployment's ``gc.watermark`` spans drive settlement, and call
    :meth:`finalize` at end of run to settle the remaining tail and get
    the verdict.
    """

    def __init__(
        self,
        compare: DecidedOrder,
        registry=None,
        evidence: Optional[EvidenceCache] = None,
        evidence_capacity: int = 4096,
    ) -> None:
        self.compare = compare
        self.stats = CheckerStats()
        # Pruned-commit evidence: lets reads settling below the pruning
        # floor keep the fine-grained stale-vs-phantom verdict.  Created
        # lazily (first prune) unless one is injected, so checkers on
        # runs that never prune pay nothing.
        self._evidence = evidence
        self._evidence_capacity = evidence_capacity
        self.watermark: Optional[VectorTimestamp] = None
        # Digest accumulators, kept in lockstep with History's.
        self._commit_digest = StreamDigest()
        self._read_digest = StreamDigest()
        self._apply_digests: Dict[int, StreamDigest] = {}
        # Pending (unsettled) events.
        self._pending_commits: List[_Commit] = []
        self._pending_reads: List[_Read] = []
        self._pending_applies: Dict[int, List[_Apply]] = {}
        self._pending_by_vertex: Dict[str, List[_Commit]] = {}
        # store.commit join state, mirroring History's exactly (digest
        # parity depends on identical provisional-seq behaviour).
        self._arrivals = 0
        self._apply_fallback: Dict[int, int] = {}
        self._store_seqs: Dict[
            StampId, Tuple[VectorTimestamp, List[int]]
        ] = {}
        self._unpatched: Dict[StampId, List[_Commit]] = {}
        # Settled, retained context (watermark-pruned).
        self._writes: Dict[str, List[_Commit]] = {}  # per-vertex windows
        self._frontier: Dict[int, List[_Apply]] = {}  # maximal applies
        self._stamps: Dict[StampId, _Commit] = {}  # pending + retained
        self._tags: Dict[Any, _Commit] = {}
        self._violations: List[Violation] = []
        self._fired: set = set()
        if registry is not None:
            self.register_metrics(registry)

    # -- span intake ----------------------------------------------------

    def attach(self, tracer) -> None:
        """Subscribe to a trace stream (same contract as History.attach)."""
        tracer.add_sink(self.consume)

    def consume(self, span) -> None:
        """Fold one span into the checker; unrelated kinds are ignored."""
        kind = span.kind
        if kind == "shard.apply":
            self._consume_apply(span)
        elif kind == "store.commit":
            self._consume_store_commit(span)
        elif kind == "txn.commit":
            self._consume_commit(span)
        elif kind == "program.read":
            self._consume_read(span)
        elif kind == "gc.watermark":
            self.advance_watermark(span.attr("ts"))

    def _consume_commit(self, span) -> None:
        self.stats.events += 1
        self.stats.commits += 1
        ts = span.attr("ts")
        arrival = self._arrivals
        self._arrivals += 1
        seq: Optional[int] = None
        queued = self._store_seqs.get(ts.id)
        if queued:
            seq = queued[1].pop(0)
            if not queued[1]:
                del self._store_seqs[ts.id]
        elif self._evidence is not None:
            # The store span may have been watermark-pruned while this
            # deadline-delayed ack was in flight; the evidence cache
            # kept its seq.
            seq = self._evidence.take_seq(ts.id)
            if seq is not None:
                self.stats.evidence_hits += 1
        provisional = seq is None
        if provisional:
            seq = arrival
        commit = _Commit(
            span.attr("tag"), ts, seq, tuple(span.attr("writes")),
            span.attr("submitted_at"), span.at, arrival,
        )
        if provisional:
            self._unpatched.setdefault(ts.id, []).append(commit)
        other = self._stamps.get(ts.id)
        if other is not None:
            self._fire(
                "duplicate-stamp",
                None,
                f"transactions {other.tag} and {commit.tag} share "
                f"timestamp {ts}",
                other,
                commit,
            )
        else:
            self._stamps[ts.id] = commit
        self._tags[commit.tag] = commit
        self._pending_commits.append(commit)
        for vertex in dict(commit.writes):
            self._pending_by_vertex.setdefault(vertex, []).append(commit)
        self._commit_digest.add(commit_entry(commit))

    def _consume_store_commit(self, span) -> None:
        seq = span.attr("commit_seq")
        if seq is None:
            return
        self.stats.events += 1
        self.stats.store_joins += 1
        ts = span.attr("ts")
        pending = self._unpatched.get(ts.id)
        if pending:
            commit = pending.pop(0)
            if not pending:
                del self._unpatched[ts.id]
            self._commit_digest.discard(commit_entry(commit))
            commit.commit_seq = seq
            self._commit_digest.add(commit_entry(commit))
        else:
            self._store_seqs.setdefault(ts.id, (ts, []))[1].append(seq)

    def _consume_apply(self, span) -> None:
        self.stats.events += 1
        self.stats.applies += 1
        shard = span.attr("shard")
        ts = span.attr("ts")
        apply_seq = span.attr("apply_seq")
        if apply_seq is not None:
            key = (span.attr("epoch", 0), apply_seq)
        else:
            n = self._apply_fallback.get(shard, 0)
            self._apply_fallback[shard] = n + 1
            key = (0, n)
        record = _Apply(shard, key, ts, self.stats.applies)
        self._pending_applies.setdefault(shard, []).append(record)
        self._apply_digests.setdefault(shard, StreamDigest()).add(
            apply_entry(shard, key, ts.id)
        )

    def _consume_read(self, span) -> None:
        self.stats.events += 1
        self.stats.reads += 1
        read = _Read(
            span.attr("query_id"), span.attr("ts"),
            tuple(span.attr("reads")), span.attr("submitted_at"), span.at,
        )
        self._pending_reads.append(read)
        self._read_digest.add(read_entry(read))

    # -- settlement -----------------------------------------------------

    def advance_watermark(self, watermark: VectorTimestamp) -> None:
        """Settle and prune everything below ``watermark``.

        Call while the oracle's decisions below the watermark are still
        live (the deployments emit ``gc.watermark`` spans just before
        ``collect_below``, so an attached checker gets this for free).
        """
        self.stats.watermarks += 1
        self.watermark = watermark
        self._settle(watermark)
        self._prune(watermark)
        self._refresh_window()

    def finalize(self) -> List[Violation]:
        """Settle the remaining tail and return every violation found."""
        self._settle(None)
        self._refresh_window()
        return list(self._violations)

    @property
    def violations(self) -> List[Violation]:
        return list(self._violations)

    def digest(self) -> str:
        """Bit-for-bit equal to ``History.digest()`` on the same stream."""
        return combined_digest(
            self._commit_digest, self._read_digest, self._apply_digests
        )

    def window_size(self) -> int:
        """Retained records: pending events + write windows + frontiers."""
        self._refresh_window()
        return self.stats.window_total

    # -- internals ------------------------------------------------------

    @staticmethod
    def _covered(
        ts: VectorTimestamp, watermark: Optional[VectorTimestamp]
    ) -> bool:
        # The settlement predicate is exactly the GC predicate
        # (oracle.collect_below): strictly happens-before the watermark.
        return watermark is None or ts.compare(watermark) is Ordering.BEFORE

    def _fire(self, kind, dedup_key, detail, first, second) -> None:
        if dedup_key is not None:
            if (kind, dedup_key) in self._fired:
                return
            self._fired.add((kind, dedup_key))
        self.stats.violations += 1
        self._violations.append(Violation(kind, detail, first, second))

    def _reversed(self, order: Optional[Ordering]) -> Optional[Ordering]:
        if order is Ordering.AFTER:
            return Ordering.BEFORE
        if order is Ordering.BEFORE:
            return Ordering.AFTER
        return order

    def _settle(self, watermark: Optional[VectorTimestamp]) -> None:
        self._settle_commits(watermark)
        self._settle_applies(watermark)
        self._settle_reads(watermark)

    def _take_covered(self, pending: list, watermark) -> list:
        if watermark is None:
            taken, pending[:] = list(pending), []
            return taken
        taken = [e for e in pending if self._covered(e.ts, watermark)]
        if taken:
            pending[:] = [
                e for e in pending if not self._covered(e.ts, watermark)
            ]
        return taken

    def _settle_commits(self, watermark) -> None:
        batch = self._take_covered(self._pending_commits, watermark)
        if not batch:
            return
        self.stats.settled += len(batch)
        batch.sort(key=lambda c: (c.commit_seq, c.arrival))
        for commit in batch:
            vertices = list(dict(commit.writes))
            for vertex in vertices:
                window = self._writes.setdefault(vertex, [])
                self._check_commit(vertex, window, commit)
                # Insert in (seq, arrival) position; windows are short
                # and batches arrive mostly sorted, so scan from the end.
                i = len(window)
                key = (commit.commit_seq, commit.arrival)
                while i > 0 and (
                    window[i - 1].commit_seq, window[i - 1].arrival
                ) > key:
                    i -= 1
                window.insert(i, commit)
                commit.refs += 1
                pend = self._pending_by_vertex.get(vertex)
                if pend is not None:
                    pend.remove(commit)
                    if not pend:
                        del self._pending_by_vertex[vertex]

    def _check_commit(self, vertex, window, commit) -> None:
        for other in window:
            if (other.commit_seq, other.arrival) <= (
                commit.commit_seq, commit.arrival
            ):
                earlier, later = other, commit
            else:
                earlier, later = commit, other
            order = self.compare(earlier.ts, later.ts)
            if order is Ordering.AFTER:
                self._fire(
                    "commit-order", vertex,
                    f"writes to {vertex!r}: tx {earlier.tag} committed "
                    f"before tx {later.tag} but its timestamp is decided "
                    f"after",
                    earlier, later,
                )
            if (
                earlier.acked_at < later.submitted_at
                and order is Ordering.AFTER
            ):
                self._fire(
                    "real-time-write", vertex,
                    f"tx {earlier.tag} on {vertex!r} was acked before tx "
                    f"{later.tag} was submitted, yet is decided after it",
                    earlier, later,
                )
            if (
                later.acked_at < earlier.submitted_at
                and self._reversed(order) is Ordering.AFTER
            ):
                self._fire(
                    "real-time-write", vertex,
                    f"tx {later.tag} on {vertex!r} was acked before tx "
                    f"{earlier.tag} was submitted, yet is decided after it",
                    later, earlier,
                )

    def _settle_applies(self, watermark) -> None:
        for shard, pending in list(self._pending_applies.items()):
            batch = self._take_covered(pending, watermark)
            if not batch:
                continue
            self.stats.settled += len(batch)
            batch.sort(key=lambda a: (a.key, a.arrival))
            frontier = self._frontier.setdefault(shard, [])
            for record in batch:
                # Offline parity: only applies of *known* commits are
                # order-checked (a commit whose txn.commit span never
                # arrived has no decided position to defend).
                if record.ts.id not in self._stamps:
                    continue
                kept: List[_Apply] = []
                for front in frontier:
                    if front.key <= record.key:
                        order = self.compare(front.ts, record.ts)
                        if order is Ordering.AFTER:
                            self._fire_apply(shard, front, record)
                        if order is Ordering.BEFORE:
                            continue  # dominated: safe to forget
                    else:
                        # A late straggler: `record` was applied earlier
                        # by key even though it settles after `front`.
                        if self.compare(
                            record.ts, front.ts
                        ) is Ordering.AFTER:
                            self._fire_apply(shard, record, front)
                    kept.append(front)
                kept.append(record)
                self._frontier[shard] = frontier = kept
            if not pending:
                del self._pending_applies[shard]

    def _fire_apply(self, shard, earlier: _Apply, later: _Apply) -> None:
        first = self._stamps.get(earlier.ts.id, earlier)
        second = self._stamps.get(later.ts.id, later)
        tag_a = getattr(first, "tag", earlier.ts.id)
        tag_b = getattr(second, "tag", later.ts.id)
        self._fire(
            "apply-order", shard,
            f"shard {shard} applied tx {tag_a} before tx {tag_b} "
            f"against the decided timestamp order",
            first, second,
        )

    def _vertex_chain(self, vertex: str):
        yield from self._writes.get(vertex, ())
        yield from self._pending_by_vertex.get(vertex, ())

    def _settle_reads(self, watermark) -> None:
        batch = self._take_covered(self._pending_reads, watermark)
        if not batch:
            return
        self.stats.settled += len(batch)
        for read in batch:
            for vertex, observed_tag in read.reads:
                observed: Optional[_Commit] = None
                evidence_floor: Optional[int] = None
                if observed_tag is not None:
                    observed = self._tags.get(observed_tag)
                    if observed is None:
                        evidence = (
                            self._evidence.lookup(observed_tag)
                            if self._evidence is not None
                            else None
                        )
                        if evidence is None:
                            self._fire(
                                "phantom-read", None,
                                f"program {read.query_id} read tag "
                                f"{observed_tag!r} on {vertex!r}, which no "
                                f"committed transaction wrote",
                                read, None,
                            )
                            continue
                        # The tag was real but pruned: judge the read
                        # with the evidenced seq floor.  (The future-read
                        # check needs the pruned stamp itself and is
                        # skipped — a pruned commit settled far below
                        # this read's watermark interval.)
                        self.stats.evidence_hits += 1
                        evidence_floor = evidence[1]
                    elif self.compare(
                        observed.ts, read.ts
                    ) is Ordering.AFTER:
                        self._fire(
                            "future-read", None,
                            f"program {read.query_id} on {vertex!r} "
                            f"observed tx {observed.tag}, decided after "
                            f"the program's timestamp",
                            read, observed,
                        )
                        continue
                if observed is not None:
                    floor = observed.commit_seq
                elif evidence_floor is not None:
                    floor = evidence_floor
                else:
                    floor = -1
                for newer in self._vertex_chain(vertex):
                    if newer.commit_seq <= floor:
                        continue
                    if self.compare(newer.ts, read.ts) is Ordering.BEFORE:
                        self._fire(
                            "stale-read", (read.query_id, vertex),
                            f"program {read.query_id} on {vertex!r} "
                            f"missed tx {newer.tag}, decided before the "
                            f"program's timestamp",
                            read, newer,
                        )
                        break
                for write in self._vertex_chain(vertex):
                    if write.acked_at >= read.submitted_at:
                        continue
                    if write.commit_seq > floor:
                        self._fire(
                            "real-time-read", (read.query_id, vertex),
                            f"program {read.query_id} on {vertex!r} "
                            f"missed tx {write.tag}, acked before the "
                            f"program was submitted",
                            read, write,
                        )
                        break

    # -- pruning --------------------------------------------------------

    def _release(self, commit: _Commit) -> None:
        commit.refs -= 1
        if commit.refs > 0:
            return
        if self._stamps.get(commit.ts.id) is commit:
            del self._stamps[commit.ts.id]
        if self._tags.get(commit.tag) is commit:
            # The tag leaves the live index; keep its identity in the
            # bounded evidence cache so a later-settling read of this
            # tag is judged stale (with the right seq floor), not
            # hallucinated ("phantom-read", PR 7's downgrade).
            self._ensure_evidence().record(
                commit.tag, commit.ts.id, commit.commit_seq
            )
            self.stats.evidence_records += 1
            del self._tags[commit.tag]

    def _ensure_evidence(self) -> EvidenceCache:
        if self._evidence is None:
            self._evidence = EvidenceCache(
                capacity=self._evidence_capacity
            )
        return self._evidence

    def _prune(self, watermark: VectorTimestamp) -> None:
        for vertex in list(self._writes):
            window = self._writes[vertex]
            floor_idx = None
            for i in range(len(window) - 1, -1, -1):
                if self._covered(window[i].ts, watermark):
                    floor_idx = i
                    break
            if floor_idx:  # keep the newest covered write as the floor
                for dead in window[:floor_idx]:
                    self._release(dead)
                del window[:floor_idx]
                self.stats.pruned += floor_idx
        for shard, frontier in self._frontier.items():
            if len(frontier) <= 1:
                continue
            keep = [
                f for f in frontier if not self._covered(f.ts, watermark)
            ]
            if not keep:
                keep = [max(frontier, key=lambda f: f.key)]
            self.stats.pruned += len(frontier) - len(keep)
            self._frontier[shard] = keep
        # Queued store seqs below the watermark leave the live index,
        # but their evidence is retained: under deadline-delayed geo
        # acks the client's txn.commit span routinely trails the store
        # span past a GC tick, and the join must still land on the real
        # seq or the digest diverges from the never-pruning History.
        for stamp_id, (ts, seqs) in list(self._store_seqs.items()):
            if self._covered(ts, watermark):
                self._ensure_evidence().record_seqs(stamp_id, seqs)
                self.stats.evidence_records += 1
                del self._store_seqs[stamp_id]
                self.stats.pruned += 1
        for stamp_id, commits in list(self._unpatched.items()):
            if all(self._covered(c.ts, watermark) for c in commits):
                del self._unpatched[stamp_id]

    def _refresh_window(self) -> None:
        stats = self.stats
        stats.window_pending = (
            len(self._pending_commits)
            + len(self._pending_reads)
            + sum(len(v) for v in self._pending_applies.values())
        )
        stats.window_writes = sum(len(w) for w in self._writes.values())
        stats.window_frontier = sum(
            len(f) for f in self._frontier.values()
        )
        stats.window_total = (
            stats.window_pending + stats.window_writes
            + stats.window_frontier
        )
        stats.window_peak = max(stats.window_peak, stats.window_total)

    # -- metrics --------------------------------------------------------

    def register_metrics(self, registry) -> None:
        """Export counters and gauges under ``checker.*`` /
        ``checker.window.*`` (see tools/check_stats_registry.py)."""
        from ..obs.collect import scalar_fields

        def collect() -> Dict[str, float]:
            self._refresh_window()
            out = {}
            for key, value in scalar_fields(self.stats).items():
                if key.startswith("window_"):
                    out[f"checker.window.{key[len('window_'):]}"] = value
                else:
                    out[f"checker.{key}"] = value
            return out

        registry.register_collector(collect)
