"""End-to-end consistency verification for chaos runs."""

from .history import (
    CommittedWrite,
    History,
    HistoryChecker,
    ProgramRead,
    Violation,
    decided_order,
)

__all__ = [
    "History",
    "HistoryChecker",
    "CommittedWrite",
    "ProgramRead",
    "Violation",
    "decided_order",
]
