"""End-to-end consistency verification for chaos runs."""

from .history import (
    CommittedWrite,
    History,
    HistoryChecker,
    ProgramRead,
    StreamDigest,
    Violation,
    decided_order,
)
from .online import CheckerStats, OnlineChecker

__all__ = [
    "History",
    "HistoryChecker",
    "CommittedWrite",
    "ProgramRead",
    "StreamDigest",
    "Violation",
    "decided_order",
    "OnlineChecker",
    "CheckerStats",
]
