"""History recording and strict-serializability checking.

The paper's headline guarantee (sections 3-4) is that Weaver executions
are **strictly serializable**: there is one total order over committed
transactions and node programs that (a) every replica's behaviour is
consistent with and (b) respects real time.  The refinable-timestamp
machinery is supposed to deliver this through failures; this module is
the referee that says whether it actually did.

Approach (after the online timestamp-based checkers of Li et al.,
arXiv:2504.01477): record, during a run, every committed transaction
(with its refinable timestamp and its position in backing-store commit
order), every node-program read (with its execution timestamp and the
writer tags it observed), and every shard's apply sequence.  Afterwards,
compare each relevant pair against the *decided* timestamp order — vector
clocks plus the timeline oracle's irreversible commitments and their
transitive closure, never minting new decisions — and report the first
violating pair per check.

The serialization order for writes to one vertex is anchored on the
backing store's commit order (section 4.2: the store's acyclic
transactions commit before forwarding, and the oracle's arrival-order
tiebreak extends that order to the shards).  A pair the oracle never
decided is reported as consistent: an undecided pair is by construction
one that no shard and no program ever had to order, so no observer could
distinguish the two serializations.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.vclock import Ordering, VectorTimestamp

#: compare(a, b) -> Ordering or None: the decided order of two stamps.
DecidedOrder = Callable[
    [VectorTimestamp, VectorTimestamp], Optional[Ordering]
]


def decided_order(oracle) -> DecidedOrder:
    """The decided-order relation backed by a timeline oracle.

    Vector clocks answer related pairs; for concurrent pairs the oracle
    reports only pre-established commitments (``established_order``
    never decides and never counts), so checking a history perturbs
    neither the ordering state nor the client-visible request counters.
    """
    head = getattr(oracle, "head", oracle)

    def compare(
        a: VectorTimestamp, b: VectorTimestamp
    ) -> Optional[Ordering]:
        if a.id == b.id:
            return None
        order = a.compare(b)
        if order is not Ordering.CONCURRENT:
            return order
        return head.established_order(a, b)

    return compare


@dataclass(frozen=True)
class CommittedWrite:
    """One committed transaction, as the client and store saw it."""

    tag: int
    ts: VectorTimestamp
    commit_seq: int
    writes: Tuple[Tuple[str, Any], ...]  # (vertex, value written)
    submitted_at: float
    acked_at: float


@dataclass(frozen=True)
class ProgramRead:
    """One node-program execution and the writer tags it observed."""

    query_id: int
    ts: VectorTimestamp
    reads: Tuple[Tuple[str, Any], ...]  # (vertex, observed tag or None)
    submitted_at: float
    completed_at: float


@dataclass(frozen=True)
class Violation:
    """One strict-serializability violation: the first offending pair."""

    kind: str
    detail: str
    first: Any
    second: Any

    def __str__(self) -> str:
        return f"[{self.kind}] {self.detail}"


_DIGEST_SPACE = 1 << 256


class StreamDigest:
    """Order-independent multiset digest over order-keyed entries.

    Each entry is hashed independently and folded into a commutative
    accumulator (sum mod 2**256), so the digest is invariant under the
    *arrival* order of entries while still pinning the *logical* order —
    every entry embeds its own order key (store commit version, shard
    apply position).  ``discard`` supports back-patching: when a
    provisional entry is later refined (a ``txn.commit`` recorded before
    its ``store.commit`` arrived), the old encoding is subtracted and
    the corrected one added, in O(1).
    """

    __slots__ = ("_acc", "_count")

    def __init__(self) -> None:
        self._acc = 0
        self._count = 0

    @staticmethod
    def _fold(entry: Tuple) -> int:
        return int.from_bytes(
            hashlib.sha256(repr(entry).encode("utf-8")).digest(), "big"
        )

    def add(self, entry: Tuple) -> None:
        self._acc = (self._acc + self._fold(entry)) % _DIGEST_SPACE
        self._count += 1

    def discard(self, entry: Tuple) -> None:
        self._acc = (self._acc - self._fold(entry)) % _DIGEST_SPACE
        self._count -= 1

    def state(self) -> Tuple[int, int]:
        return (self._count, self._acc)


def commit_entry(c) -> Tuple:
    """Canonical encoding of one commit record (order key embedded)."""
    return (
        "commit", c.tag, c.ts.epoch, c.ts.issuer, c.ts.clocks,
        c.commit_seq, c.writes, c.submitted_at, c.acked_at,
    )


def read_entry(r) -> Tuple:
    return (
        "read", r.query_id, r.ts.epoch, r.ts.issuer, r.ts.clocks,
        r.reads, r.submitted_at, r.completed_at,
    )


def apply_entry(shard: int, key: Tuple[int, int], ts_id: Tuple) -> Tuple:
    return ("apply", shard, key, ts_id)


def combined_digest(
    commits: StreamDigest,
    reads: StreamDigest,
    applies: Dict[int, StreamDigest],
) -> str:
    """SHA-256 over the three accumulator states.

    Equal digests mean the two consumers folded the same multiset of
    order-keyed records — the arrival order they saw them in does not
    matter, which is what lets the offline :class:`History` and the
    online checker agree bit-for-bit on every finite prefix even when
    process-transport replies reorder spans.
    """
    parts = (
        "history-v2",
        commits.state(),
        reads.state(),
        tuple((shard, applies[shard].state()) for shard in sorted(applies)),
    )
    return hashlib.sha256(repr(parts).encode("utf-8")).hexdigest()


class History:
    """An append-only record of one run's observable events."""

    def __init__(self) -> None:
        self.commits: List[CommittedWrite] = []
        self.reads: List[ProgramRead] = []
        # Per-shard apply sequences: lists of timestamp ids in the order
        # the spans *arrived* (NOPs excluded); the true apply order is
        # recovered from the parallel key lists (see apply_sequence).
        self.applies: Dict[int, List[Tuple[int, int, int]]] = {}
        self._commit_seq = 0
        self._commit_digest = StreamDigest()
        self._read_digest = StreamDigest()
        self._apply_digests: Dict[int, StreamDigest] = {}
        # (epoch, apply_seq) per recorded apply, parallel to `applies`.
        self._apply_keys: Dict[int, List[Tuple[int, int]]] = {}
        self._apply_fallback: Dict[int, int] = {}
        # store.commit versions seen before their txn.commit span
        # (ts.id -> FIFO of versions), and commits recorded before their
        # store.commit span (ts.id -> FIFO of indices into `commits`).
        self._store_seqs: Dict[Tuple[int, int, int], List[int]] = {}
        self._unpatched: Dict[Tuple[int, int, int], List[int]] = {}

    # -- recording ------------------------------------------------------

    def record_commit(
        self,
        tag: int,
        ts: VectorTimestamp,
        writes,
        submitted_at: float,
        acked_at: float,
        commit_seq: Optional[int] = None,
    ) -> int:
        """Record one committed transaction; returns its commit_seq.

        ``commit_seq`` is the backing store's commit version when known
        (the ``store.commit`` span carries it).  Without one, the
        arrival counter stands in — exact for callers that invoke this
        in backing-store commit order (the original contract), and
        provisional for span streams, where a later
        :meth:`record_store_commit` back-patches the true version.
        """
        arrival = self._commit_seq
        self._commit_seq += 1
        seq = commit_seq
        provisional = seq is None
        if provisional:
            queued = self._store_seqs.get(ts.id)
            if queued:
                seq = queued.pop(0)
                provisional = False
                if not queued:
                    del self._store_seqs[ts.id]
            else:
                seq = arrival
        commit = CommittedWrite(
            tag, ts, seq, tuple(writes), submitted_at, acked_at
        )
        if provisional:
            self._unpatched.setdefault(ts.id, []).append(len(self.commits))
        self.commits.append(commit)
        self._commit_digest.add(commit_entry(commit))
        return seq

    def record_store_commit(self, ts: VectorTimestamp, seq: int) -> None:
        """Join one backing-store commit version to its commit record.

        Arrival order is free: a version arriving first is queued for
        the matching :meth:`record_commit`; one arriving second
        back-patches the provisional record (and its digest entry).
        """
        pending = self._unpatched.get(ts.id)
        if pending:
            index = pending.pop(0)
            if not pending:
                del self._unpatched[ts.id]
            old = self.commits[index]
            self._commit_digest.discard(commit_entry(old))
            patched = replace(old, commit_seq=seq)
            self.commits[index] = patched
            self._commit_digest.add(commit_entry(patched))
        else:
            self._store_seqs.setdefault(ts.id, []).append(seq)

    def record_read(
        self,
        query_id: int,
        ts: VectorTimestamp,
        reads,
        submitted_at: float,
        completed_at: float,
    ) -> None:
        read = ProgramRead(
            query_id, ts, tuple(reads), submitted_at, completed_at
        )
        self.reads.append(read)
        self._read_digest.add(read_entry(read))

    def record_apply(
        self,
        shard_index: int,
        ts: VectorTimestamp,
        key: Optional[Tuple[int, int]] = None,
    ) -> None:
        """Record one shard apply.

        ``key`` is the shard's own ``(epoch, apply_seq)`` position when
        the span carries one; otherwise arrival order stands in (exact
        for in-order streams and hand-built histories).
        """
        if key is None:
            n = self._apply_fallback.get(shard_index, 0)
            self._apply_fallback[shard_index] = n + 1
            key = (0, n)
        self.applies.setdefault(shard_index, []).append(ts.id)
        self._apply_keys.setdefault(shard_index, []).append(key)
        self._apply_digests.setdefault(shard_index, StreamDigest()).add(
            apply_entry(shard_index, key, ts.id)
        )

    def apply_sequence(
        self, shard_index: int
    ) -> List[Tuple[int, int, int]]:
        """The shard's apply sequence in true apply order.

        Sorted by the per-shard ``(epoch, apply_seq)`` keys — identical
        to arrival order for in-order streams, and the recovered order
        when process-transport replies delivered spans shuffled.
        """
        ids = self.applies.get(shard_index, [])
        keys = self._apply_keys.get(shard_index, [])
        order = sorted(range(len(ids)), key=lambda i: (keys[i], i))
        return [ids[i] for i in order]

    # -- trace-stream consumption ---------------------------------------

    def attach(self, tracer) -> None:
        """Subscribe this history to a trace stream (``repro.obs``).

        The referee becomes a tracer sink: ``shard.apply`` spans feed the
        per-shard apply sequences, ``store.commit`` spans supply the
        backing store's commit versions, and the workload-level
        ``txn.commit`` / ``program.read`` spans feed commits and reads.
        Spans may arrive out of trace order (process-transport replies
        batch worker spans): records carry their own order keys, so the
        recovered history is delivery-order independent.
        """
        tracer.add_sink(self.consume)

    def consume(self, span) -> None:
        """Fold one span into the history; unrelated kinds are ignored."""
        kind = span.kind
        if kind == "shard.apply":
            apply_seq = span.attr("apply_seq")
            key = (
                (span.attr("epoch", 0), apply_seq)
                if apply_seq is not None
                else None
            )
            self.record_apply(span.attr("shard"), span.attr("ts"), key=key)
        elif kind == "store.commit":
            seq = span.attr("commit_seq")
            if seq is not None:
                self.record_store_commit(span.attr("ts"), seq)
        elif kind == "txn.commit":
            self.record_commit(
                span.attr("tag"),
                span.attr("ts"),
                span.attr("writes"),
                span.attr("submitted_at"),
                span.at,
            )
        elif kind == "program.read":
            self.record_read(
                span.attr("query_id"),
                span.attr("ts"),
                span.attr("reads"),
                span.attr("submitted_at"),
                span.at,
            )

    # -- reproducibility ------------------------------------------------

    def canonical(self) -> Tuple:
        """A deterministic, value-only rendering of the whole history."""
        return (
            tuple(
                (
                    "commit",
                    c.tag,
                    c.ts.epoch,
                    c.ts.issuer,
                    c.ts.clocks,
                    c.commit_seq,
                    c.writes,
                    c.submitted_at,
                    c.acked_at,
                )
                for c in self.commits
            ),
            tuple(
                (
                    "read",
                    r.query_id,
                    r.ts.epoch,
                    r.ts.issuer,
                    r.ts.clocks,
                    r.reads,
                    r.submitted_at,
                    r.completed_at,
                )
                for r in self.reads
            ),
            tuple(
                (shard, tuple(seq))
                for shard, seq in sorted(self.applies.items())
            ),
        )

    def digest(self) -> str:
        """SHA-256 over the order-keyed record multiset.

        Equal digests mean bit-for-bit identical histories up to span
        delivery order: every record embeds its own logical position
        (commit version, apply key), so a shuffled stream of the same
        spans digests identically — and so does the online checker's
        incremental accumulator (see :mod:`repro.verify.online`), which
        is the cross-check the soak harness runs on every prefix.
        """
        return combined_digest(
            self._commit_digest, self._read_digest, self._apply_digests
        )


class HistoryChecker:
    """Checks one :class:`History` for strict-serializability violations.

    ``compare`` is the decided-order relation (see :func:`decided_order`).
    :meth:`check` returns every violation found, first offending pair per
    (check, pair); an empty list certifies the history.
    """

    def __init__(self, history: History, compare: DecidedOrder):
        self.history = history
        self.compare = compare
        self._memo: Dict[Tuple, Optional[Ordering]] = {}

    # -- decided order, memoized ---------------------------------------

    def _order(
        self, a: VectorTimestamp, b: VectorTimestamp
    ) -> Optional[Ordering]:
        key = (a.id, b.id)
        if key not in self._memo:
            self._memo[key] = self.compare(a, b)
        return self._memo[key]

    # -- the checks -----------------------------------------------------

    def check(self) -> List[Violation]:
        violations: List[Violation] = []
        violations.extend(self._check_unique_stamps())
        violations.extend(self._check_commit_order())
        violations.extend(self._check_apply_order())
        violations.extend(self._check_reads())
        violations.extend(self._check_real_time())
        return violations

    def _writes_by_vertex(self) -> Dict[str, List[CommittedWrite]]:
        per_vertex: Dict[str, List[CommittedWrite]] = {}
        for commit in self.history.commits:
            for vertex, _value in commit.writes:
                per_vertex.setdefault(vertex, []).append(commit)
        for chain in per_vertex.values():
            chain.sort(key=lambda c: c.commit_seq)
        return per_vertex

    def _check_unique_stamps(self) -> List[Violation]:
        """Committed timestamps are transaction identities (section 3.3):
        two commits must never share one."""
        seen: Dict[Tuple[int, int, int], CommittedWrite] = {}
        out: List[Violation] = []
        for commit in self.history.commits:
            other = seen.get(commit.ts.id)
            if other is not None:
                out.append(
                    Violation(
                        "duplicate-stamp",
                        f"transactions {other.tag} and {commit.tag} share "
                        f"timestamp {commit.ts}",
                        other,
                        commit,
                    )
                )
            else:
                seen[commit.ts.id] = commit
        return out

    def _check_commit_order(self) -> List[Violation]:
        """Same-vertex commits: decided timestamp order must agree with
        backing-store commit order (section 4.2's monotonicity rule)."""
        out: List[Violation] = []
        for vertex, chain in sorted(self._writes_by_vertex().items()):
            for i, earlier in enumerate(chain):
                for later in chain[i + 1 :]:
                    if self._order(earlier.ts, later.ts) is Ordering.AFTER:
                        out.append(
                            Violation(
                                "commit-order",
                                f"writes to {vertex!r}: tx {earlier.tag} "
                                f"committed before tx {later.tag} but its "
                                f"timestamp is decided after",
                                earlier,
                                later,
                            )
                        )
                        break
                else:
                    continue
                break
        return out

    def _check_apply_order(self) -> List[Violation]:
        """Each shard's apply sequence must be a linear extension of the
        decided order (the Fig 6 loop's whole job)."""
        by_id = {c.ts.id: c for c in self.history.commits}
        out: List[Violation] = []
        for shard in sorted(self.history.applies):
            sequence = self.history.apply_sequence(shard)
            commits = [by_id[i] for i in sequence if i in by_id]
            stop = False
            for i, earlier in enumerate(commits):
                for later in commits[i + 1 :]:
                    if self._order(earlier.ts, later.ts) is Ordering.AFTER:
                        out.append(
                            Violation(
                                "apply-order",
                                f"shard {shard} applied tx {earlier.tag} "
                                f"before tx {later.tag} against the "
                                f"decided timestamp order",
                                earlier,
                                later,
                            )
                        )
                        stop = True
                        break
                if stop:
                    break
        return out

    def _check_reads(self) -> List[Violation]:
        """Each program read must land exactly at its timestamp: it sees
        the newest same-vertex write decided before it, and nothing
        decided after it."""
        out: List[Violation] = []
        per_vertex = self._writes_by_vertex()
        by_tag: Dict[Any, CommittedWrite] = {}
        for commit in self.history.commits:
            by_tag[commit.tag] = commit
        for read in self.history.reads:
            for vertex, observed_tag in read.reads:
                chain = per_vertex.get(vertex, [])
                observed: Optional[CommittedWrite] = None
                if observed_tag is not None:
                    observed = by_tag.get(observed_tag)
                    if observed is None:
                        out.append(
                            Violation(
                                "phantom-read",
                                f"program {read.query_id} read tag "
                                f"{observed_tag!r} on {vertex!r}, which no "
                                f"committed transaction wrote",
                                read,
                                None,
                            )
                        )
                        continue
                    if self._order(observed.ts, read.ts) is Ordering.AFTER:
                        out.append(
                            Violation(
                                "future-read",
                                f"program {read.query_id} on {vertex!r} "
                                f"observed tx {observed.tag}, decided "
                                f"after the program's timestamp",
                                read,
                                observed,
                            )
                        )
                        continue
                floor = observed.commit_seq if observed is not None else -1
                for newer in chain:
                    if newer.commit_seq <= floor:
                        continue
                    if self._order(newer.ts, read.ts) is Ordering.BEFORE:
                        out.append(
                            Violation(
                                "stale-read",
                                f"program {read.query_id} on {vertex!r} "
                                f"missed tx {newer.tag}, decided before "
                                f"the program's timestamp",
                                read,
                                newer,
                            )
                        )
                        break
        return out

    def _check_real_time(self) -> List[Violation]:
        """Strictness on conflicting pairs: an operation acknowledged
        before another begins must not serialize after it."""
        out: List[Violation] = []
        per_vertex = self._writes_by_vertex()
        # Write acked before a conflicting write was submitted.
        for vertex, chain in sorted(per_vertex.items()):
            stop = False
            for first in chain:
                for second in chain:
                    if first.acked_at >= second.submitted_at:
                        continue
                    if self._order(first.ts, second.ts) is Ordering.AFTER:
                        out.append(
                            Violation(
                                "real-time-write",
                                f"tx {first.tag} on {vertex!r} was acked "
                                f"before tx {second.tag} was submitted, "
                                f"yet is decided after it",
                                first,
                                second,
                            )
                        )
                        stop = True
                        break
                if stop:
                    break
        # Write acked before a read was submitted: the read must see the
        # write's effects (its observed state must not be older).
        by_tag = {c.tag: c for c in self.history.commits}
        for read in self.history.reads:
            for vertex, observed_tag in read.reads:
                observed = by_tag.get(observed_tag)
                floor = observed.commit_seq if observed is not None else -1
                for write in per_vertex.get(vertex, []):
                    if write.acked_at >= read.submitted_at:
                        continue
                    if write.commit_seq > floor:
                        out.append(
                            Violation(
                                "real-time-read",
                                f"program {read.query_id} on {vertex!r} "
                                f"missed tx {write.tag}, acked before the "
                                f"program was submitted",
                                read,
                                write,
                            )
                        )
                        break
        return out
