"""History recording and strict-serializability checking.

The paper's headline guarantee (sections 3-4) is that Weaver executions
are **strictly serializable**: there is one total order over committed
transactions and node programs that (a) every replica's behaviour is
consistent with and (b) respects real time.  The refinable-timestamp
machinery is supposed to deliver this through failures; this module is
the referee that says whether it actually did.

Approach (after the online timestamp-based checkers of Li et al.,
arXiv:2504.01477): record, during a run, every committed transaction
(with its refinable timestamp and its position in backing-store commit
order), every node-program read (with its execution timestamp and the
writer tags it observed), and every shard's apply sequence.  Afterwards,
compare each relevant pair against the *decided* timestamp order — vector
clocks plus the timeline oracle's irreversible commitments and their
transitive closure, never minting new decisions — and report the first
violating pair per check.

The serialization order for writes to one vertex is anchored on the
backing store's commit order (section 4.2: the store's acyclic
transactions commit before forwarding, and the oracle's arrival-order
tiebreak extends that order to the shards).  A pair the oracle never
decided is reported as consistent: an undecided pair is by construction
one that no shard and no program ever had to order, so no observer could
distinguish the two serializations.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.vclock import Ordering, VectorTimestamp

#: compare(a, b) -> Ordering or None: the decided order of two stamps.
DecidedOrder = Callable[
    [VectorTimestamp, VectorTimestamp], Optional[Ordering]
]


def decided_order(oracle) -> DecidedOrder:
    """The decided-order relation backed by a timeline oracle.

    Vector clocks answer related pairs; for concurrent pairs the oracle
    reports only pre-established commitments (``established_order``
    never decides and never counts), so checking a history perturbs
    neither the ordering state nor the client-visible request counters.
    """
    head = getattr(oracle, "head", oracle)

    def compare(
        a: VectorTimestamp, b: VectorTimestamp
    ) -> Optional[Ordering]:
        if a.id == b.id:
            return None
        order = a.compare(b)
        if order is not Ordering.CONCURRENT:
            return order
        return head.established_order(a, b)

    return compare


@dataclass(frozen=True)
class CommittedWrite:
    """One committed transaction, as the client and store saw it."""

    tag: int
    ts: VectorTimestamp
    commit_seq: int
    writes: Tuple[Tuple[str, Any], ...]  # (vertex, value written)
    submitted_at: float
    acked_at: float


@dataclass(frozen=True)
class ProgramRead:
    """One node-program execution and the writer tags it observed."""

    query_id: int
    ts: VectorTimestamp
    reads: Tuple[Tuple[str, Any], ...]  # (vertex, observed tag or None)
    submitted_at: float
    completed_at: float


@dataclass(frozen=True)
class Violation:
    """One strict-serializability violation: the first offending pair."""

    kind: str
    detail: str
    first: Any
    second: Any

    def __str__(self) -> str:
        return f"[{self.kind}] {self.detail}"


class History:
    """An append-only record of one run's observable events."""

    def __init__(self) -> None:
        self.commits: List[CommittedWrite] = []
        self.reads: List[ProgramRead] = []
        # Per-shard apply sequences: lists of timestamp ids in the order
        # the shard applied them (NOPs excluded).
        self.applies: Dict[int, List[Tuple[int, int, int]]] = {}
        self._commit_seq = 0

    # -- recording ------------------------------------------------------

    def record_commit(
        self,
        tag: int,
        ts: VectorTimestamp,
        writes,
        submitted_at: float,
        acked_at: float,
    ) -> int:
        """Record one committed transaction; returns its commit_seq.

        Callers must invoke this in backing-store commit order — in the
        simulated deployment, commit callbacks fire synchronously inside
        the store commit, so ack order *is* commit order.
        """
        seq = self._commit_seq
        self._commit_seq += 1
        self.commits.append(
            CommittedWrite(
                tag, ts, seq, tuple(writes), submitted_at, acked_at
            )
        )
        return seq

    def record_read(
        self,
        query_id: int,
        ts: VectorTimestamp,
        reads,
        submitted_at: float,
        completed_at: float,
    ) -> None:
        self.reads.append(
            ProgramRead(
                query_id, ts, tuple(reads), submitted_at, completed_at
            )
        )

    def record_apply(self, shard_index: int, ts: VectorTimestamp) -> None:
        self.applies.setdefault(shard_index, []).append(ts.id)

    # -- trace-stream consumption ---------------------------------------

    def attach(self, tracer) -> None:
        """Subscribe this history to a trace stream (``repro.obs``).

        The referee becomes a tracer sink: ``shard.apply`` spans feed the
        per-shard apply sequences, and the workload-level ``txn.commit``
        / ``program.read`` spans feed commits and reads.  Sinks fire
        synchronously at emission, so commit records still arrive in
        backing-store commit order (the :meth:`record_commit` contract).
        """
        tracer.add_sink(self.consume)

    def consume(self, span) -> None:
        """Fold one span into the history; unrelated kinds are ignored."""
        kind = span.kind
        if kind == "shard.apply":
            self.record_apply(span.attr("shard"), span.attr("ts"))
        elif kind == "txn.commit":
            self.record_commit(
                span.attr("tag"),
                span.attr("ts"),
                span.attr("writes"),
                span.attr("submitted_at"),
                span.at,
            )
        elif kind == "program.read":
            self.record_read(
                span.attr("query_id"),
                span.attr("ts"),
                span.attr("reads"),
                span.attr("submitted_at"),
                span.at,
            )

    # -- reproducibility ------------------------------------------------

    def canonical(self) -> Tuple:
        """A deterministic, value-only rendering of the whole history."""
        return (
            tuple(
                (
                    "commit",
                    c.tag,
                    c.ts.epoch,
                    c.ts.issuer,
                    c.ts.clocks,
                    c.commit_seq,
                    c.writes,
                    c.submitted_at,
                    c.acked_at,
                )
                for c in self.commits
            ),
            tuple(
                (
                    "read",
                    r.query_id,
                    r.ts.epoch,
                    r.ts.issuer,
                    r.ts.clocks,
                    r.reads,
                    r.submitted_at,
                    r.completed_at,
                )
                for r in self.reads
            ),
            tuple(
                (shard, tuple(seq))
                for shard, seq in sorted(self.applies.items())
            ),
        )

    def digest(self) -> str:
        """SHA-256 over the canonical rendering; equal digests mean
        bit-for-bit identical histories (the determinism check)."""
        return hashlib.sha256(
            repr(self.canonical()).encode("utf-8")
        ).hexdigest()


class HistoryChecker:
    """Checks one :class:`History` for strict-serializability violations.

    ``compare`` is the decided-order relation (see :func:`decided_order`).
    :meth:`check` returns every violation found, first offending pair per
    (check, pair); an empty list certifies the history.
    """

    def __init__(self, history: History, compare: DecidedOrder):
        self.history = history
        self.compare = compare
        self._memo: Dict[Tuple, Optional[Ordering]] = {}

    # -- decided order, memoized ---------------------------------------

    def _order(
        self, a: VectorTimestamp, b: VectorTimestamp
    ) -> Optional[Ordering]:
        key = (a.id, b.id)
        if key not in self._memo:
            self._memo[key] = self.compare(a, b)
        return self._memo[key]

    # -- the checks -----------------------------------------------------

    def check(self) -> List[Violation]:
        violations: List[Violation] = []
        violations.extend(self._check_unique_stamps())
        violations.extend(self._check_commit_order())
        violations.extend(self._check_apply_order())
        violations.extend(self._check_reads())
        violations.extend(self._check_real_time())
        return violations

    def _writes_by_vertex(self) -> Dict[str, List[CommittedWrite]]:
        per_vertex: Dict[str, List[CommittedWrite]] = {}
        for commit in self.history.commits:
            for vertex, _value in commit.writes:
                per_vertex.setdefault(vertex, []).append(commit)
        for chain in per_vertex.values():
            chain.sort(key=lambda c: c.commit_seq)
        return per_vertex

    def _check_unique_stamps(self) -> List[Violation]:
        """Committed timestamps are transaction identities (section 3.3):
        two commits must never share one."""
        seen: Dict[Tuple[int, int, int], CommittedWrite] = {}
        out: List[Violation] = []
        for commit in self.history.commits:
            other = seen.get(commit.ts.id)
            if other is not None:
                out.append(
                    Violation(
                        "duplicate-stamp",
                        f"transactions {other.tag} and {commit.tag} share "
                        f"timestamp {commit.ts}",
                        other,
                        commit,
                    )
                )
            else:
                seen[commit.ts.id] = commit
        return out

    def _check_commit_order(self) -> List[Violation]:
        """Same-vertex commits: decided timestamp order must agree with
        backing-store commit order (section 4.2's monotonicity rule)."""
        out: List[Violation] = []
        for vertex, chain in sorted(self._writes_by_vertex().items()):
            for i, earlier in enumerate(chain):
                for later in chain[i + 1 :]:
                    if self._order(earlier.ts, later.ts) is Ordering.AFTER:
                        out.append(
                            Violation(
                                "commit-order",
                                f"writes to {vertex!r}: tx {earlier.tag} "
                                f"committed before tx {later.tag} but its "
                                f"timestamp is decided after",
                                earlier,
                                later,
                            )
                        )
                        break
                else:
                    continue
                break
        return out

    def _check_apply_order(self) -> List[Violation]:
        """Each shard's apply sequence must be a linear extension of the
        decided order (the Fig 6 loop's whole job)."""
        by_id = {c.ts.id: c for c in self.history.commits}
        out: List[Violation] = []
        for shard, sequence in sorted(self.history.applies.items()):
            commits = [by_id[i] for i in sequence if i in by_id]
            stop = False
            for i, earlier in enumerate(commits):
                for later in commits[i + 1 :]:
                    if self._order(earlier.ts, later.ts) is Ordering.AFTER:
                        out.append(
                            Violation(
                                "apply-order",
                                f"shard {shard} applied tx {earlier.tag} "
                                f"before tx {later.tag} against the "
                                f"decided timestamp order",
                                earlier,
                                later,
                            )
                        )
                        stop = True
                        break
                if stop:
                    break
        return out

    def _check_reads(self) -> List[Violation]:
        """Each program read must land exactly at its timestamp: it sees
        the newest same-vertex write decided before it, and nothing
        decided after it."""
        out: List[Violation] = []
        per_vertex = self._writes_by_vertex()
        by_tag: Dict[Any, CommittedWrite] = {}
        for commit in self.history.commits:
            by_tag[commit.tag] = commit
        for read in self.history.reads:
            for vertex, observed_tag in read.reads:
                chain = per_vertex.get(vertex, [])
                observed: Optional[CommittedWrite] = None
                if observed_tag is not None:
                    observed = by_tag.get(observed_tag)
                    if observed is None:
                        out.append(
                            Violation(
                                "phantom-read",
                                f"program {read.query_id} read tag "
                                f"{observed_tag!r} on {vertex!r}, which no "
                                f"committed transaction wrote",
                                read,
                                None,
                            )
                        )
                        continue
                    if self._order(observed.ts, read.ts) is Ordering.AFTER:
                        out.append(
                            Violation(
                                "future-read",
                                f"program {read.query_id} on {vertex!r} "
                                f"observed tx {observed.tag}, decided "
                                f"after the program's timestamp",
                                read,
                                observed,
                            )
                        )
                        continue
                floor = observed.commit_seq if observed is not None else -1
                for newer in chain:
                    if newer.commit_seq <= floor:
                        continue
                    if self._order(newer.ts, read.ts) is Ordering.BEFORE:
                        out.append(
                            Violation(
                                "stale-read",
                                f"program {read.query_id} on {vertex!r} "
                                f"missed tx {newer.tag}, decided before "
                                f"the program's timestamp",
                                read,
                                newer,
                            )
                        )
                        break
        return out

    def _check_real_time(self) -> List[Violation]:
        """Strictness on conflicting pairs: an operation acknowledged
        before another begins must not serialize after it."""
        out: List[Violation] = []
        per_vertex = self._writes_by_vertex()
        # Write acked before a conflicting write was submitted.
        for vertex, chain in sorted(per_vertex.items()):
            stop = False
            for first in chain:
                for second in chain:
                    if first.acked_at >= second.submitted_at:
                        continue
                    if self._order(first.ts, second.ts) is Ordering.AFTER:
                        out.append(
                            Violation(
                                "real-time-write",
                                f"tx {first.tag} on {vertex!r} was acked "
                                f"before tx {second.tag} was submitted, "
                                f"yet is decided after it",
                                first,
                                second,
                            )
                        )
                        stop = True
                        break
                if stop:
                    break
        # Write acked before a read was submitted: the read must see the
        # write's effects (its observed state must not be older).
        by_tag = {c.tag: c for c in self.history.commits}
        for read in self.history.reads:
            for vertex, observed_tag in read.reads:
                observed = by_tag.get(observed_tag)
                floor = observed.commit_seq if observed is not None else -1
                for write in per_vertex.get(vertex, []):
                    if write.acked_at >= read.submitted_at:
                        continue
                    if write.commit_seq > floor:
                        out.append(
                            Violation(
                                "real-time-read",
                                f"program {read.query_id} on {vertex!r} "
                                f"missed tx {write.tag}, acked before the "
                                f"program was submitted",
                                read,
                                write,
                            )
                        )
                        break
        return out
