"""Exception hierarchy for the Weaver reproduction.

All library errors derive from :class:`WeaverError` so that callers can
catch everything raised by the package with a single ``except`` clause
while still being able to discriminate between failure classes.
"""

from __future__ import annotations


class WeaverError(Exception):
    """Base class for every error raised by this package."""


class TransactionAborted(WeaverError):
    """A transaction failed validation and must be retried by the client.

    Raised by the backing store on optimistic-concurrency conflicts and by
    gatekeepers when the timestamp-monotonicity check of section 4.2 fails.
    The ``reason`` attribute carries a short machine-readable tag.
    """

    def __init__(self, reason: str = "conflict"):
        super().__init__(f"transaction aborted: {reason}")
        self.reason = reason


class TransactionError(WeaverError):
    """A transaction is malformed or used after commit/abort."""


class NoSuchVertex(WeaverError):
    """A vertex handle does not name a live vertex at the read timestamp."""

    def __init__(self, handle: object):
        super().__init__(f"no such vertex: {handle!r}")
        self.handle = handle


class NoSuchEdge(WeaverError):
    """An edge handle does not name a live edge at the read timestamp."""

    def __init__(self, handle: object):
        super().__init__(f"no such edge: {handle!r}")
        self.handle = handle


class CycleError(WeaverError):
    """An ordering request would create a cycle in the timeline oracle's
    event dependency graph.

    The oracle never grants such a request; seeing this error in client code
    indicates a protocol bug, because shard servers only ask for orders that
    are consistent with already-committed decisions.
    """


class OrderingError(WeaverError):
    """Two timestamps could not be ordered (e.g. events never registered)."""


class ClusterError(WeaverError):
    """Cluster-management failure: unknown server, bad epoch, etc."""


class StoreError(WeaverError):
    """Backing-store failure unrelated to transaction conflicts."""


class ProgramError(WeaverError):
    """A node program misbehaved (bad return value, unknown vertex, ...)."""


class GarbageCollectedError(WeaverError):
    """A read at a timestamp older than the GC watermark was attempted."""

    def __init__(self, requested: object, watermark: object):
        super().__init__(
            f"read at {requested!r} below GC watermark {watermark!r}"
        )
        self.requested = requested
        self.watermark = watermark
