"""Structured tracing: follow one transaction across every server.

A *trace id* is assigned at the client when a transaction or node
program is submitted; every hop it takes — stamping, backing-store
commit, shard enqueue, ordering decision, apply, program scatter/gather
— emits a :class:`Span` carrying that id, the simulated-time timestamp,
and the server that emitted it.  Spans land in an in-memory ring buffer
and are fanned out to pluggable *sinks*; the strict-serializability
referee (``repro.verify.history.History.attach``) is a sink, which is
what makes the checker a consumer of the trace stream rather than a
parallel bespoke recorder.

Span kinds (the stable catalog; paper cross-references in
docs/ARCHITECTURE.md):

========================  ====================================================
kind                      emitted when
========================  ====================================================
``client.submit``         a transaction leaves the client
``client.retry``          the client retries after an optimistic abort
``gatekeeper.stamp``      a gatekeeper issues the vector timestamp
``store.commit``          the backing store made the transaction durable
``gatekeeper.abort``      commit failed (OCC conflict/timestamp inversion)
``shard.enqueue``         a shard accepted the stamped forward
``shard.apply``           a shard applied it to the multi-version graph
``oracle.decide``         the timeline oracle committed a new order
``program.submit``        a node program leaves the client
``program.stamp``         a gatekeeper stamps the program
``program.round``         a shard worker executed one resident round
``program.complete``      the program's gather finished
``txn.commit``            workload-level commit record (tag + writes)
``program.read``          workload-level read record (observed tags)
========================  ====================================================

``oracle.decide`` spans carry no trace id (a decision orders *two*
transactions); they join a trace through their ``a``/``b`` event-id
attributes — :func:`assemble_chain` stitches them in.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Span:
    """One event on one server, attributed to one trace."""

    trace_id: Optional[int]
    kind: str
    at: float
    node: str
    seq: int  # global emission order; stable sort key alongside `at`
    attrs: Tuple[Tuple[str, Any], ...] = ()

    def attr(self, key: str, default: Any = None) -> Any:
        for k, v in self.attrs:
            if k == key:
                return v
        return default

    def attrs_dict(self) -> Dict[str, Any]:
        return dict(self.attrs)


class Tracer:
    """Ring-buffered span stream with pluggable sinks.

    ``clock`` supplies timestamps (the simulated deployment passes
    ``simulator.now``; direct mode has no time axis and defaults to the
    emission sequence number, which is still a total order).  Sinks see
    every span at emission, before ring eviction, so a consumer such as
    the history referee never loses events to buffer pressure.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        capacity: int = 1 << 16,
        registry=None,
    ) -> None:
        if capacity < 1:
            raise ValueError("tracer needs a positive capacity")
        self._clock = clock
        self._buffer: deque = deque(maxlen=capacity)
        self._sinks: List[Callable[[Span], None]] = []
        self._ids = itertools.count(1)
        self._seq = itertools.count()
        self._spans_counter = (
            registry.counter("trace.spans") if registry is not None else None
        )
        self._traces_counter = (
            registry.counter("trace.traces") if registry is not None else None
        )

    @property
    def capacity(self) -> int:
        return self._buffer.maxlen

    def __len__(self) -> int:
        return len(self._buffer)

    # -- identity -------------------------------------------------------

    def next_trace_id(self) -> int:
        """A fresh trace id; called by the client at submission."""
        if self._traces_counter is not None:
            self._traces_counter.inc()
        return next(self._ids)

    # -- emission -------------------------------------------------------

    def emit(
        self,
        trace_id: Optional[int],
        kind: str,
        node: str = "",
        at: Optional[float] = None,
        **attrs: Any,
    ) -> Span:
        seq = next(self._seq)
        if at is None:
            at = self._clock() if self._clock is not None else float(seq)
        span = Span(
            trace_id=trace_id,
            kind=kind,
            at=at,
            node=node,
            seq=seq,
            attrs=tuple(sorted(attrs.items())),
        )
        self._buffer.append(span)
        if self._spans_counter is not None:
            self._spans_counter.inc()
        for sink in self._sinks:
            sink(span)
        return span

    # -- sinks ----------------------------------------------------------

    def add_sink(self, sink: Callable[[Span], None]) -> None:
        self._sinks.append(sink)

    def remove_sink(self, sink: Callable[[Span], None]) -> None:
        self._sinks.remove(sink)

    # -- queries --------------------------------------------------------

    def spans(
        self,
        trace_id: Optional[int] = None,
        kind: Optional[str] = None,
    ) -> List[Span]:
        """Buffered spans, optionally filtered, in emission order."""
        out = []
        for span in self._buffer:
            if trace_id is not None and span.trace_id != trace_id:
                continue
            if kind is not None and span.kind != kind:
                continue
            out.append(span)
        return out

    def trace_ids(self) -> List[int]:
        """Distinct trace ids still present in the ring, ascending."""
        return sorted(
            {s.trace_id for s in self._buffer if s.trace_id is not None}
        )

    def clear(self) -> None:
        self._buffer.clear()


def _event_id(value: Any) -> Any:
    """Normalize a ts attribute to its event-id tuple."""
    return getattr(value, "id", value)


def assemble_chain(tracer: Tracer, trace_id: int) -> List[Span]:
    """The full span chain of one trace, ordering decisions included.

    Returns the trace's own spans plus every ``oracle.decide`` span
    whose ``a``/``b`` event id matches a timestamp that appears in the
    trace (decisions are unattributed at emission — one decision orders
    two transactions).  Sorted by (time, emission order).
    """
    own = tracer.spans(trace_id=trace_id)
    stamp_ids = {
        _event_id(span.attr("ts"))
        for span in own
        if span.attr("ts") is not None
    }
    chain = list(own)
    if stamp_ids:
        for span in tracer.spans(kind="oracle.decide"):
            if (
                span.attr("a") in stamp_ids
                or span.attr("b") in stamp_ids
            ):
                chain.append(span)
    chain.sort(key=lambda s: (s.at, s.seq))
    return chain
