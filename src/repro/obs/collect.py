"""Collectors that absorb the legacy ``*Stats`` classes into the registry.

The per-server stats objects (``OracleStats``, ``ShardStats``,
``GatekeeperStats``, ``OrderingStats``, ``NetworkStats``) keep their
plain-attribute counters — dozens of hot-path call sites and tests
touch them directly — and this module reads them out under stable
dotted names at snapshot time.  Duck typing only: no imports from the
server modules, so ``repro.obs`` stays dependency-free.

Adding a *new* ``*Stats`` class outside this absorption path is flagged
by ``tools/check_stats_registry.py`` (run in CI): every counter must be
reachable from one ``repro stats --json`` snapshot.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Union

Number = Union[int, float]


def scalar_fields(stats: object) -> Dict[str, Number]:
    """The numeric instance attributes of one stats object, sorted.

    ``vars()`` deliberately: a counter added to a stats class surfaces
    in every snapshot automatically, so the golden-name test notices
    additions as well as renames.
    """
    return {
        key: value
        for key, value in sorted(vars(stats).items())
        if not key.startswith("_") and isinstance(value, (int, float))
    }


def _summed(objects: Iterable[object]) -> Dict[str, Number]:
    totals: Dict[str, Number] = {}
    for obj in objects:
        for key, value in scalar_fields(obj).items():
            totals[key] = totals.get(key, 0) + value
    return totals


def register_stats_collectors(
    registry,
    oracle=None,
    gatekeepers: Optional[Callable[[], list]] = None,
    shards: Optional[Callable[[], list]] = None,
    network=None,
    programs: Optional[Callable[[], object]] = None,
    transport=None,
    store: Optional[Callable[[], object]] = None,
    regions: Optional[Callable[[], list]] = None,
    extra: Optional[Callable[[], Dict[str, Number]]] = None,
) -> None:
    """Wire one deployment's stats objects into ``registry``.

    ``gatekeepers`` and ``shards`` are zero-arg callables returning the
    *current* server lists — deployments replace servers on recovery,
    and collectors must follow the replacements, not the corpses.
    ``programs`` is a zero-arg callable returning the program executor's
    ``ProgramStats``, exported under ``program.*``.  ``transport`` is a
    wire-layer ``TransportStats``, exported under ``transport.*`` (the
    per-channel queue-depth gauges are registered by the transport
    itself, since channels come and go with workers).  ``store`` is a
    zero-arg callable returning the backing store's ``StoreStats``,
    exported under ``store.*`` — callable so collectors follow a store
    swapped during recovery.  ``regions`` is a zero-arg callable
    returning the per-region ``RegionStats`` list of a geo deployment,
    exported under ``region.<r>.*`` (including the per-region announce
    count read from the network's region counters); deployments with one
    region pass None so the single-region metric surface is unchanged.
    """

    if oracle is not None:

        def collect_oracle() -> Dict[str, Number]:
            head = getattr(oracle, "head", oracle)
            out = {
                f"oracle.{key}": value
                for key, value in scalar_fields(head.stats).items()
            }
            out["oracle.messages"] = head.stats.messages
            out["oracle.events"] = head.num_events
            out["oracle.reach_cache_size"] = head.reach_cache_size
            # Chain-replication fan-out; 0 for a single oracle.  Kept
            # separate from client-visible `oracle.messages` on purpose.
            out["oracle.update_messages"] = getattr(
                oracle, "update_messages", 0
            )
            return out

        registry.register_collector(collect_oracle)

    if gatekeepers is not None:

        def collect_gatekeepers() -> Dict[str, Number]:
            return {
                f"gatekeeper.{key}": value
                for key, value in _summed(
                    gk.stats for gk in gatekeepers()
                ).items()
            }

        registry.register_collector(collect_gatekeepers)

    if shards is not None:

        def collect_shards() -> Dict[str, Number]:
            current = shards()
            out = {
                f"shard.{key}": value
                for key, value in _summed(s.stats for s in current).items()
            }
            out.update(
                {
                    f"ordering.{key}": value
                    for key, value in _summed(
                        s.ordering.stats for s in current
                    ).items()
                }
            )
            caches = [
                s.ordering.cache
                for s in current
                if s.ordering.cache is not None
            ]
            out["ordering.cache_hits"] = sum(c.hits for c in caches)
            out["ordering.cache_misses"] = sum(c.misses for c in caches)
            out["ordering.cache_entries"] = sum(len(c) for c in caches)
            return out

        registry.register_collector(collect_shards)

    if network is not None:

        def collect_network() -> Dict[str, Number]:
            stats = network.stats
            out: Dict[str, Number] = {
                "network.messages_total": stats.total,
                "network.faults_total": stats.total_faults(),
            }
            for kind, count in sorted(stats.sent.items()):
                out[f"network.sent.{kind}"] = count
            for kind, count in sorted(stats.faults.items()):
                out[f"network.faults.{kind}"] = count
            return out

        registry.register_collector(collect_network)

    if programs is not None:

        def collect_programs() -> Dict[str, Number]:
            return {
                f"program.{key}": value
                for key, value in scalar_fields(programs()).items()
            }

        registry.register_collector(collect_programs)

    if transport is not None:

        def collect_transport() -> Dict[str, Number]:
            return {
                f"transport.{key}": value
                for key, value in scalar_fields(transport).items()
            }

        registry.register_collector(collect_transport)

    if store is not None:

        def collect_store() -> Dict[str, Number]:
            out: Dict[str, Number] = {}
            for key, value in scalar_fields(store()).items():
                if key == "compaction_background_runs":
                    # Dotted like the knob that enables it, not like a
                    # plain counter field.
                    out["store.compaction.background_runs"] = value
                else:
                    out[f"store.{key}"] = value
            return out

        registry.register_collector(collect_store)

    if regions is not None:

        def collect_regions() -> Dict[str, Number]:
            out: Dict[str, Number] = {}
            for r, rstats in enumerate(regions()):
                for key, value in scalar_fields(rstats).items():
                    out[f"region.{r}.{key}"] = value
                out[f"region.{r}.oracle_messages"] = rstats.oracle_messages
                announce = 0
                if network is not None:
                    announce = network.stats.region_count(r, "announce")
                out[f"region.{r}.announce_messages"] = announce
            return out

        registry.register_collector(collect_regions)

    if extra is not None:
        registry.register_collector(extra)
