"""The metrics registry: counters, gauges, fixed-bucket histograms.

Design constraints, in order:

* **Deterministic.**  Snapshots are value-only dictionaries with sorted
  keys; histograms use fixed bucket bounds and interpolate quantiles
  from bucket counts, so two identical runs produce identical snapshots
  (the golden-snapshot test in ``tests/test_stats_parity.py`` relies on
  this).
* **Cheap on the hot path.**  A counter increment is one attribute add;
  a histogram observation is one bisect plus three adds.  Nothing
  allocates per event.
* **Absorbing, not rewriting.**  The legacy per-server stats classes
  keep their plain-attribute counters (dozens of call sites and tests
  touch them directly); *collectors* registered on the registry read
  them out under stable dotted names at snapshot time.  New metrics use
  registry-native instruments directly.

Metric names are dotted paths (``oracle.messages``,
``latency.tx_commit.p99``).  Renaming one is an API change: the golden
test must be updated deliberately.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Dict, List, Optional, Sequence, Union

Number = Union[int, float]

#: Default histogram buckets: geometric from 1 µs to ~16 s, factor 2.
#: Wide enough for simulated network latencies (100 µs hops) through
#: whole chaos-run horizons, fine enough for meaningful p50/p95/p99.
DEFAULT_BUCKETS = tuple(1e-6 * (2.0 ** k) for k in range(25))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: Number = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """A point-in-time value (queue depth, cache size, current τ)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def set(self, value: Number) -> None:
        self.value = value

    def reset(self) -> None:
        self.value = 0


class Histogram:
    """A fixed-bucket histogram with interpolated p50/p95/p99.

    Buckets are upper bounds; an observation lands in the first bucket
    whose bound is >= the value (one overflow bucket catches the rest).
    Quantiles interpolate linearly inside the winning bucket, which is
    deterministic and needs no per-sample storage — the property that
    lets the trace layer feed the Fig 10/11 latency CDFs without keeping
    every sample alive.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total",
                 "min", "max")

    def __init__(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> None:
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must strictly increase")
        self.name = name
        self.bounds: tuple = bounds
        # One extra slot: the overflow bucket past the last bound.
        self.bucket_counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def quantile(self, q: float) -> float:
        """The q-quantile (q in [0, 1]), interpolated within its bucket."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        lower = self.min
        for i, n in enumerate(self.bucket_counts):
            if n == 0:
                continue
            upper = (
                self.bounds[i] if i < len(self.bounds) else self.max
            )
            upper = min(upper, self.max)
            lower_edge = max(lower, self.min)
            if cumulative + n >= target:
                fraction = (target - cumulative) / n
                return lower_edge + fraction * (upper - lower_edge)
            cumulative += n
            lower = upper
        return self.max

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def cdf(self, points: int = 50) -> List[tuple]:
        """(value, cumulative fraction) pairs — Fig 10/11 curve data."""
        if self.count == 0:
            return []
        out = []
        cumulative = 0
        for i, n in enumerate(self.bucket_counts):
            if n == 0:
                continue
            cumulative += n
            upper = self.bounds[i] if i < len(self.bounds) else self.max
            out.append((min(upper, self.max), cumulative / self.count))
        return out[-points:] if len(out) > points else out

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "max": self.max if self.count else 0.0,
        }

    def reset(self) -> None:
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")


#: A collector returns {dotted-name: number} read at snapshot time.
Collector = Callable[[], Dict[str, Number]]


class MetricsRegistry:
    """One deployment's metric namespace.

    Instruments are created on first use (``counter(name)`` is get-or-
    create); requesting the same name as a different instrument type is
    an error — dotted names are a single flat namespace.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._collectors: List[Collector] = []

    # -- instruments ----------------------------------------------------

    def _claim(self, name: str, kind: dict) -> None:
        for family in (self._counters, self._gauges, self._histograms):
            if family is not kind and name in family:
                raise ValueError(
                    f"metric {name!r} already exists as another type"
                )

    def counter(self, name: str) -> Counter:
        found = self._counters.get(name)
        if found is None:
            self._claim(name, self._counters)
            found = self._counters[name] = Counter(name)
        return found

    def gauge(self, name: str) -> Gauge:
        found = self._gauges.get(name)
        if found is None:
            self._claim(name, self._gauges)
            found = self._gauges[name] = Gauge(name)
        return found

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        found = self._histograms.get(name)
        if found is None:
            self._claim(name, self._histograms)
            found = self._histograms[name] = Histogram(name, buckets)
        return found

    # -- collectors -----------------------------------------------------

    def register_collector(self, collector: Collector) -> None:
        """Absorb an external stats source into snapshots.

        ``collector()`` is called at snapshot time and must return a
        ``{dotted-name: number}`` dict; this is how the legacy
        ``*Stats`` classes surface without rewriting their call sites.
        """
        self._collectors.append(collector)

    # -- output ---------------------------------------------------------

    def snapshot(self) -> Dict[str, Number]:
        """Every metric, flat, under sorted dotted names.

        Histograms expand to ``.count``/``.sum``/``.p50``/``.p95``/
        ``.p99``/``.max``.  Collector output merges in last, so a
        collector name colliding with an instrument is a bug made
        visible by the golden-snapshot test rather than silently
        shadowed.
        """
        out: Dict[str, Number] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            out[name] = gauge.value
        for name, histogram in self._histograms.items():
            for suffix, value in histogram.summary().items():
                out[f"{name}.{suffix}"] = value
        for collector in self._collectors:
            out.update(collector())
        return dict(sorted(out.items()))

    def reset(self) -> None:
        """Reset owned instruments (collector sources reset themselves)."""
        for family in (self._counters, self._gauges, self._histograms):
            for instrument in family.values():
                instrument.reset()
