"""Unified observability: the metrics registry and the trace layer.

Every counter the paper's evaluation reports (Fig 14's oracle vs.
announce messages, Figs 10-11's latency CDFs, Figs 12-13's shard
counters) flows through one process-wide surface:

* :class:`MetricsRegistry` — counters, gauges, and fixed-bucket
  histograms under stable dotted names, plus *collectors* that absorb
  the legacy per-server stats objects (``OracleStats``, ``ShardStats``,
  ``GatekeeperStats``, ``OrderingStats``, ``NetworkStats``) so one
  snapshot reports everything;
* :class:`Tracer` — structured span records for one transaction or node
  program, identified by a client-assigned trace id, buffered in a ring
  with pluggable sinks (the strict-serializability referee in
  ``repro.verify.history`` is one such sink).
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .trace import Span, Tracer, assemble_chain
from .collect import register_stats_collectors, scalar_fields

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "assemble_chain",
    "register_stats_collectors",
    "scalar_fields",
]
