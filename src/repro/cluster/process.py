"""The real multiprocess Weaver deployment.

:class:`ProcessWeaver` is the concurrent counterpart of the in-process
:class:`~repro.db.database.Weaver` and the deterministic
:class:`~repro.sim.deployment.SimulatedWeaver` — same parts from the
same :func:`~repro.cluster.builder.build_cluster`, but every shard
server and the timeline oracle run as separate OS processes speaking
length-prefixed :mod:`~repro.cluster.wire` frames over UNIX sockets
(:class:`~repro.cluster.transport.ProcessTransport`).

Division of labour per node program (``config.program_execution``):

* ``"resident"`` (the default) ships the program *to the data*: the
  client submits one :class:`~repro.cluster.messages.ProgramStart` to
  the start vertex's owning shard, each worker runs its slice of every
  scatter-gather round against its local snapshot, and next frontiers
  travel worker-to-worker as ``FrontierForward`` frames — O(shards)
  wire messages per round instead of O(frontier).  The coordinating
  worker detects round quiescence and replies with only the aggregated
  result and read set (section 4's shard-to-shard propagation);
* ``"images"`` keeps the legacy split: the client-side
  :class:`~repro.programs.framework.ProgramExecutor` runs program logic
  on plain vertex images pulled per round via pipelined ``resolve``
  requests.  Programs carrying constructor state (not reconstructible
  from their name) always fall back to this path.

Either way results stay byte-identical to the simulated twin; the
Fig 13-style scaling benchmark measures what residency buys on top of
parallel resolution.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import socket
import tempfile
from types import SimpleNamespace
from typing import Any, Dict, Hashable, Iterable, List, Optional, Tuple

from ..core.gatekeeper import Gatekeeper, sync_announce_all
from ..core.vclock import VectorTimestamp
from ..db.config import WeaverConfig
from ..db.operations import graph_state_from_store
from ..db.transactions import Transaction
from ..errors import ClusterError, NoSuchVertex, ProgramError
from ..obs.collect import scalar_fields
from ..programs.caching import ProgramCache
from ..programs.framework import NodeProgram, ProgramResult
from ..programs.library import resident_eligible
from ..programs.state import WatermarkRegistry
from .builder import build_cluster
from .messages import ProgramRequest, ProgramStart, QueuedTransaction
from .transport import ProcessTransport, TransportError
from .worker import OracleProxy, oracle_worker_main, shard_worker_main

import dataclasses

StartSpec = Any


# -- remote vertex views -------------------------------------------------


class RemoteEdgeView:
    """A visible out-edge decoded from a worker's vertex image.

    Duck-types :class:`~repro.graph.mvgraph.EdgeView`: the worker already
    resolved visibility at the program timestamp, so properties are a
    plain dict here.
    """

    __slots__ = ("handle", "src", "nbr", "_props")

    def __init__(self, handle: str, src: str, nbr: str, props: dict):
        self.handle = handle
        self.src = src
        self.nbr = nbr
        self._props = props

    @property
    def dst(self) -> str:
        return self.nbr

    def check(self, key: str, value: Any = None) -> bool:
        if key not in self._props:
            return False
        return value is None or self._props[key] == value

    def get_property(self, key: str, default: Any = None) -> Any:
        return self._props.get(key, default)

    def properties(self) -> dict:
        return dict(self._props)


class RemoteVertexView:
    """A visible vertex decoded from a worker's image — what the
    client-side executor hands to ``program.run``."""

    __slots__ = ("handle", "_props", "_edges", "prog_state")

    def __init__(self, image: dict):
        self.handle = image["handle"]
        self._props = image["properties"]
        self._edges = [
            RemoteEdgeView(handle, self.handle, nbr, props)
            for handle, nbr, props in image["edges"]
        ]
        self.prog_state: Any = None

    @property
    def neighbors(self) -> List[RemoteEdgeView]:
        return list(self._edges)

    def out_degree(self) -> int:
        return len(self._edges)

    def get_edge(self, handle: str) -> Optional[RemoteEdgeView]:
        for edge in self._edges:
            if edge.handle == handle:
                return edge
        return None

    def get_property(self, key: str, default: Any = None) -> Any:
        return self._props.get(key, default)

    def check(self, key: str, value: Any = None) -> bool:
        if key not in self._props:
            return False
        return value is None or self._props[key] == value

    def properties(self) -> dict:
        return dict(self._props)


class ProcessShardResolver:
    """The executor's resolver over worker processes.

    ``resolve_many`` groups one round's frontier by owning shard and
    issues one pipelined ``resolve`` request per shard — every request
    is written before any reply is read, so workers run their share of
    the round concurrently.  Workers keep one snapshot view per (query,
    shard) across rounds (their ``fresh`` flag tells the client when the
    snapshot construction was actually paid); the client keeps a
    per-query vertex cache so cross-round revisits cost no request.
    """

    def __init__(self, db: "ProcessWeaver", ts: VectorTimestamp,
                 query_id: int, trace_id: Optional[int]):
        self._db = db
        self._ts = ts
        self._query_id = query_id
        self._trace_id = trace_id
        self._vertices: Dict[str, Optional[RemoteVertexView]] = {}
        #: Shard indices holding a snapshot for this query (told fresh).
        self.shards_touched: set = set()
        self.shard_rounds: List[Dict[int, int]] = []

    @property
    def timestamp(self) -> VectorTimestamp:
        return self._ts

    def resolve_many(
        self, handles: Iterable[str]
    ) -> Dict[str, Optional[RemoteVertexView]]:
        db = self._db
        stats = db.executor.stats
        out: Dict[str, Optional[RemoteVertexView]] = {}
        per_shard: Dict[int, List[str]] = {}
        cache = self._vertices
        cache_hits = 0
        for handle in handles:
            if handle in out:
                continue
            if handle in cache:
                out[handle] = cache[handle]
                cache_hits += 1
                continue
            out[handle] = None
            shard_index = db._shard_of(handle)
            if shard_index is not None:
                per_shard.setdefault(shard_index, []).append(handle)
        round_counts: Dict[int, int] = {}
        order = sorted(per_shard)
        calls = [
            (
                db.shard_name(shard_index),
                "resolve",
                ProgramRequest(
                    self._ts,
                    self._query_id,
                    tuple((h, None) for h in per_shard[shard_index]),
                    self._trace_id,
                ),
            )
            for shard_index in order
        ]
        replies = db.transport.request_all("client", calls)
        for shard_index, reply in zip(order, replies):
            batch = per_shard[shard_index]
            self.shards_touched.add(shard_index)
            fresh = reply["fresh"]
            if fresh:
                stats.snapshots_created += 1
            for handle in batch:
                image = reply["images"].get(handle)
                node = None if image is None else RemoteVertexView(image)
                cache[handle] = node
                out[handle] = node
            round_counts[shard_index] = len(batch)
            stats.shard_batches += 1
            stats.vertices_resolved += len(batch)
            stats.snapshot_reuse_hits += len(batch) - (1 if fresh else 0)
            stats.round_messages_saved += len(batch) - 1
        if round_counts:
            self.shard_rounds.append(round_counts)
        if cache_hits:
            stats.vertices_resolved += cache_hits
            stats.snapshot_reuse_hits += cache_hits
            stats.round_messages_saved += cache_hits
        return out

    def __call__(self, handle: str) -> Optional[RemoteVertexView]:
        return self.resolve_many([handle])[handle]


# -- the deployment -------------------------------------------------------


class ProcessWeaver:
    """A Weaver deployment whose shards and oracle are OS processes."""

    def __init__(self, config: Optional[WeaverConfig] = None):
        try:
            self._mp = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX hosts
            raise ClusterError(
                "process deployment requires the fork start method"
            ) from exc
        self.transport = ProcessTransport()
        self._tmpdir = tempfile.mkdtemp(prefix="weaver-")
        self._oracle_path = os.path.join(self._tmpdir, "oracle.sock")
        # Bind + listen before forking: connects succeed via the backlog
        # no matter when the oracle process reaches accept().
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(self._oracle_path)
        listener.listen(16)
        self._oracle_proc = self._mp.Process(
            target=oracle_worker_main, args=(listener,), daemon=True
        )
        self._oracle_proc.start()
        listener.close()
        self.oracle = OracleProxy(self._oracle_path)

        parts = build_cluster(
            config,
            oracle=self.oracle,
            with_shards=False,
            transport_stats=self.transport.stats,
            extra=self._process_metrics,
        )
        self.parts = parts
        self.config = parts.config
        cfg = self.config
        self.store = parts.store
        self.mapping = parts.mapping
        self.gatekeepers: List[Gatekeeper] = parts.gatekeepers
        self.manager = parts.manager
        self.executor = parts.executor
        self.metrics = parts.metrics
        self.tracer = parts.tracer
        self.transport._registry = self.metrics
        self.transport.register("client", self._on_worker_events)
        self.watermarks = WatermarkRegistry(cmp=lambda a, b: a.compare(b))

        self._procs: Dict[int, Any] = {}
        #: Worker↔worker listening-socket paths, one per shard index.
        #: Bound before the owning worker forks, so peer connects land
        #: in the backlog no matter when the worker reaches accept().
        self._peer_paths: Dict[int, str] = {
            index: os.path.join(self._tmpdir, f"peer{index}.sock")
            for index in range(cfg.num_shards)
        }
        #: Last absorbed worker-side metrics (dotted names) and program
        #: counter sums — kept so `repro stats` after close() still
        #: reports worker work (deployment-neutral program.* metrics).
        self._worker_metrics: Dict[str, float] = {}
        self._worker_prog_sum: Dict[str, float] = {}
        for index in range(cfg.num_shards):
            self._spawn_worker(index)

        self._handle_counter = itertools.count()
        self._query_counter = itertools.count(1)
        self._next_gk = itertools.count()
        self._send_rank = itertools.count()
        self._commits = 0
        self._commits_since_drain = 0
        self._channel_seqno: Dict[Tuple[int, int], int] = {}
        self._placement: Dict[str, int] = {}
        self._epoch = 0
        self.recoveries = 0
        self.programs_run = 0
        self._closed = False

    # -- workers --------------------------------------------------------

    @staticmethod
    def shard_name(index: int) -> str:
        return f"shard{index}"

    def _spawn_worker(
        self,
        index: int,
        epoch: int = 0,
        image: Optional[tuple] = None,
        recovery_ts: Optional[VectorTimestamp] = None,
        store_path: Optional[str] = None,
        placement: Optional[Dict[str, int]] = None,
    ) -> None:
        parent_sock, child_sock = socket.socketpair(
            socket.AF_UNIX, socket.SOCK_STREAM
        )
        # Rebind this worker's peer listener fresh: a replacement must
        # not accept frontier frames queued for its dead predecessor.
        peer_path = self._peer_paths[index]
        try:
            os.unlink(peer_path)
        except OSError:
            pass
        peer_listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        peer_listener.bind(peer_path)
        peer_listener.listen(16)
        proc = self._mp.Process(
            target=shard_worker_main,
            args=(
                child_sock,
                index,
                self.config.num_gatekeepers,
                self.config.use_ordering_cache,
                self._oracle_path,
                epoch,
                image,
                recovery_ts,
                store_path,
            ),
            kwargs=dict(
                peer_listener=peer_listener,
                peer_paths=dict(self._peer_paths),
                placement=placement,
                enable_program_cache=self.config.enable_program_cache,
                program_cache_capacity=self.config.program_cache_capacity,
            ),
            daemon=True,
        )
        proc.start()
        child_sock.close()
        peer_listener.close()
        self._procs[index] = proc
        self.transport.add_channel(self.shard_name(index), parent_sock)

    def _on_worker_events(self, src: str, kind: str, events) -> None:
        """Replay worker-side spans (ridden on reply frames) into the
        client tracer under their original trace ids — `repro trace`
        chains then assemble identically to the in-process deployments."""
        for trace_id, span_kind, node, attrs in events:
            self.tracer.emit(trace_id, span_kind, node=node, **attrs)

    def _live_shards(self) -> List[int]:
        names = set(self.transport.channels())
        return [
            i for i in range(self.config.num_shards)
            if self.shard_name(i) in names
        ]

    def _request_all_shards(self, kind: str, payload: Any) -> List[Any]:
        calls = [
            (self.shard_name(i), kind, payload) for i in self._live_shards()
        ]
        return self.transport.request_all("client", calls)

    # -- identifiers ----------------------------------------------------

    def new_handle(self, prefix: str = "v") -> str:
        return f"{prefix}{next(self._handle_counter)}"

    def _pick_gatekeeper(self) -> int:
        return next(self._next_gk) % len(self.gatekeepers)

    # -- transactions ---------------------------------------------------

    def begin_transaction(
        self, gatekeeper: Optional[int] = None
    ) -> Transaction:
        index = (
            gatekeeper if gatekeeper is not None else self._pick_gatekeeper()
        )
        if not 0 <= index < len(self.gatekeepers):
            raise ClusterError(f"no gatekeeper {index}")
        tx = Transaction(self, index)
        tx.trace_id = self.tracer.next_trace_id()
        self.tracer.emit(
            tx.trace_id, "client.submit", node="client", gk=index
        )
        return tx

    def _commit_transaction(self, tx: Transaction) -> VectorTimestamp:
        gk = self.gatekeepers[tx.gatekeeper_index]
        delta: Dict[str, int] = {}
        for vertex in tx.created_vertices:
            shard = self.mapping.assign(vertex, tx=tx.store_tx)
            self._placement[vertex] = shard
            delta[vertex] = shard
        if delta:
            # One-way placement gossip: every worker partitions next
            # frontiers locally, so each must know who owns new
            # vertices.  FIFO per channel — the delta is flushed before
            # any later request (e.g. advance_to) on the same socket.
            for shard_index in self._live_shards():
                self.transport.send(
                    "client", self.shard_name(shard_index),
                    "placement", delta,
                )
        ts = gk.commit_prepared(
            tx.store_tx, tx.touched_vertices, trace_id=tx.trace_id
        )
        per_shard: Dict[int, List] = {}
        for op in tx.operations:
            (owner,) = op.touched()
            shard = self._shard_of(owner)
            if shard is None:
                raise NoSuchVertex(owner)
            per_shard.setdefault(shard, []).append(op)
        for shard_index, ops_list in per_shard.items():
            self._enqueue(
                gk.index,
                shard_index,
                QueuedTransaction(ts, tuple(ops_list), trace_id=tx.trace_id),
            )
        self._commits += 1
        if self._commits % self.config.announce_every == 0:
            sync_announce_all(self.gatekeepers)
        self._commits_since_drain += 1
        if self._commits_since_drain >= self.config.drain_every:
            self.drain()
        return ts

    def _shard_of(self, vertex: str) -> Optional[int]:
        shard = self._placement.get(vertex)
        if shard is None:
            shard = self.mapping.lookup(vertex)
            if shard is not None:
                self._placement[vertex] = shard
        return shard

    def _enqueue(
        self, gk_index: int, shard_index: int, qtx: QueuedTransaction
    ) -> None:
        """Stamp the channel seqno and buffer the enqueue on the worker's
        socket; the transport flushes it (batched with its channel-mates)
        before the next request on that channel, preserving FIFO."""
        channel = (gk_index, shard_index)
        seqno = self._channel_seqno.get(channel, 0)
        self._channel_seqno[channel] = seqno + 1
        stamped = dataclasses.replace(
            qtx, seqno=seqno, tiebreak=next(self._send_rank)
        )
        self.transport.send(
            self.gatekeepers[gk_index].name,
            self.shard_name(shard_index),
            "enqueue",
            (gk_index, stamped),
        )

    # -- queue pumping --------------------------------------------------

    def _send_nops(self) -> None:
        """One NOP from every gatekeeper to every shard, vector-clock
        chained exactly like the direct deployment's (the announce
        rounds run client-side; only the enqueues cross the wire)."""
        sync_announce_all(self.gatekeepers)
        previous: Optional[VectorTimestamp] = None
        live = self._live_shards()
        for gk in self.gatekeepers:
            if previous is not None:
                gk.receive_announce(previous.clocks)
            nop_ts = gk.make_nop()
            previous = nop_ts
            for shard_index in live:
                self._enqueue(gk.index, shard_index, QueuedTransaction(nop_ts))
        sync_announce_all(self.gatekeepers)

    def drain(self) -> int:
        """Heartbeat every queue, then apply everything applicable on
        every worker (one pipelined fan-out)."""
        self._send_nops()
        self._commits_since_drain = 0
        return sum(self._request_all_shards("drain", None))

    # -- node programs --------------------------------------------------

    def _make_shards_ready(self, ts: VectorTimestamp) -> None:
        stats = self.executor.stats
        if all(self._request_all_shards("advance_to", ts)):
            stats.readiness_fastpath_hits += 1
            return
        stats.readiness_storms += 1
        self._send_nops()
        ready = self._request_all_shards("advance_to", ts)
        if not all(ready):
            bad = [
                self.shard_name(i)
                for i, ok in zip(self._live_shards(), ready)
                if not ok
            ]
            raise ClusterError(
                f"{bad} not ready for {ts} despite heartbeats"
            )

    def run_program(
        self,
        program: NodeProgram,
        start: StartSpec,
        params: Any = None,
        at: Optional[VectorTimestamp] = None,
        use_cache: bool = False,
        cache_key: Optional[Hashable] = None,
    ) -> ProgramResult:
        """Execute a node program on a consistent snapshot.

        With ``config.program_execution == "resident"`` and a stock
        program, execution is shipped to the shard workers (one
        ``program_start`` request; frontiers travel peer-to-peer);
        otherwise the client-side executor pulls vertex images.  With
        ``use_cache`` (requires ``enable_program_cache``), the
        coordinating worker may serve a memoized result after
        revalidating every fragment's change counters.
        """
        frontier = (
            [(start, params)] if isinstance(start, str) else list(start)
        )
        query_id = next(self._query_counter)
        trace_id = self.tracer.next_trace_id()
        self.tracer.emit(
            trace_id, "program.submit", node="client",
            query_id=query_id, program=program.name,
        )
        gk = self.gatekeepers[self._pick_gatekeeper()]
        ts = at if at is not None else gk.issue_timestamp()
        self.tracer.emit(
            trace_id, "program.stamp", node=gk.name,
            ts=ts, query_id=query_id,
        )
        self._make_shards_ready(ts)
        if (
            self.config.program_execution == "resident"
            and frontier
            and resident_eligible(program)
        ):
            cache_tail: Optional[Hashable] = None
            if use_cache and self.config.enable_program_cache:
                key_tail = (
                    cache_key if cache_key is not None else repr(params)
                )
                # Historical queries read a different cut of the graph:
                # the snapshot identity is part of the key (section 4.6).
                if at is not None:
                    key_tail = (key_tail, at.id)
                cache_tail = key_tail
            return self._run_resident(
                program, frontier, ts, query_id, trace_id, cache_tail
            )
        self.watermarks.start(query_id, ts)
        resolver = ProcessShardResolver(self, ts, query_id, trace_id)
        try:
            result = self.executor.execute(
                program, frontier, resolver, ts, query_id
            )
        finally:
            self.watermarks.finish(query_id)
            # One-way: workers drop their per-query snapshot views.
            for shard_index in resolver.shards_touched:
                self.transport.send(
                    "client", self.shard_name(shard_index),
                    "finish", query_id,
                )
        self.programs_run += 1
        self.tracer.emit(
            trace_id, "program.complete", node="client", query_id=query_id
        )
        return result

    def _run_resident(
        self,
        program: NodeProgram,
        frontier: List[Tuple[str, Any]],
        ts: VectorTimestamp,
        query_id: int,
        trace_id: int,
        cache_tail: Optional[Hashable],
    ) -> ProgramResult:
        """Ship the program to the data: one ``program_start`` request
        to the start vertex's owner, which coordinates the rounds and
        replies with the aggregated result."""
        live = self._live_shards()
        if not live:
            raise ClusterError("no live shard workers")
        # Initial frontier entry i carries order key (i,): children
        # append their hop index, so sorting a round's entries by key
        # reproduces the batched executor's append order exactly.
        keyed = tuple(
            ((i,), handle, entry_params)
            for i, (handle, entry_params) in enumerate(frontier)
        )
        coordinator = self._shard_of(frontier[0][0])
        if coordinator is None or coordinator not in live:
            coordinator = live[0]
        ps = ProgramStart(
            ts, query_id, program.name, keyed, trace_id=trace_id,
            cache_tail=cache_tail, max_visits=self.executor._max_visits,
        )
        self.watermarks.start(query_id, ts)
        try:
            payload = self.transport.request(
                "client", self.shard_name(coordinator), "program_start", ps
            )
        except TransportError as exc:
            raise ProgramError(str(exc)) from exc
        finally:
            self.watermarks.finish(query_id)
        if payload.get("error"):
            raise ProgramError(payload["error"])
        self.programs_run += 1
        if payload.get("cache_hit"):
            self.tracer.emit(
                trace_id, "program.complete", node="client",
                query_id=query_id, cache_hit=True,
            )
        else:
            self.tracer.emit(
                trace_id, "program.complete", node="client",
                query_id=query_id,
            )
        ctx = SimpleNamespace(
            query_id=payload["query_id"],
            ts=payload["ts"],
            results=list(payload["results"]),
            states=dict(payload["states"]),
            vertices_visited=payload["vertices_visited"],
            hops=payload["hops"],
            halted=payload["halted"],
            read_set=set(payload["read_set"]),
            rounds=payload["rounds"],
        )
        return ProgramResult(ctx)

    def checkpoint(self) -> VectorTimestamp:
        sync_announce_all(self.gatekeepers)
        ts = self.gatekeepers[self._pick_gatekeeper()].issue_timestamp()
        sync_announce_all(self.gatekeepers)
        return ts

    # -- garbage collection ---------------------------------------------

    def collect_garbage(self) -> Dict[str, int]:
        sync_announce_all(self.gatekeepers)
        fallback = self.gatekeepers[0].current_watermark()
        watermark = self.watermarks.watermark(fallback)
        if watermark is None:
            return {"graph": 0, "oracle": 0}
        self.drain()
        # After the drain every worker span below the watermark has been
        # replayed locally; announcing the watermark now lets an attached
        # online checker settle those events against decisions that the
        # collect_below calls are about to discard.
        self.tracer.emit(None, "gc.watermark", node="gc", ts=watermark)
        graph_reclaimed = sum(
            self._request_all_shards("collect_below", watermark)
        )
        oracle_reclaimed = self.oracle.collect_below(watermark)
        if getattr(self.store, "background_compaction_active", False):
            # The opportunistic compactor owns store reclamation; the
            # GC tick must not double-compact under it.
            store_reclaimed = 0
        else:
            store_reclaimed = self.store.collect_below(
                self.store.safe_compact_version()
            )
        return {
            "graph": graph_reclaimed,
            "oracle": oracle_reclaimed,
            "store": store_reclaimed,
        }

    # -- failure handling -----------------------------------------------

    def kill_shard_worker(self, index: int) -> None:
        """SIGKILL one shard worker mid-flight (chaos testing)."""
        proc = self._procs.get(index)
        if proc is None or not proc.is_alive():
            raise ClusterError(f"no live worker for shard {index}")
        proc.kill()
        proc.join(timeout=10)

    def recover_shard(self, index: int) -> None:
        """Replace a dead worker: epoch barrier on the survivors, then a
        fresh process reloading the partition from the backing store.

        Buffered messages to the dead worker are discarded with its
        channel — their effects are already durable in the store the
        replacement reloads from.
        """
        name = self.shard_name(index)
        self.transport.remove_channel(name)
        proc = self._procs.pop(index, None)
        if proc is not None:
            if proc.is_alive():
                proc.kill()
            proc.join(timeout=10)
        # Epoch barrier: gatekeepers restart their clocks in the new
        # epoch; survivors flush queued work and re-baseline seqnos.
        # (The manager has no local shard servers here — the workers ARE
        # the shards, reached by RPC below.)
        self._epoch = self.manager.advance_epoch()
        self.transport.flush()
        self._request_all_shards("advance_epoch", self._epoch)
        self._channel_seqno.clear()
        recovery_ts = self.gatekeepers[0].issue_timestamp()
        if (
            self.config.store_backend == "sqlite"
            and self.config.store_path != ":memory:"
        ):
            # Real crash recovery: the replacement worker reopens the
            # WAL-backed database itself and carves out its partition —
            # nothing graph-shaped crosses the fork.  Checkpoint first
            # so the worker's read-only open sees every commit even if
            # the WAL file is sidestepped by its snapshot read.
            self.store._conn.execute("PRAGMA wal_checkpoint(PASSIVE)")
            self._spawn_worker(
                index,
                epoch=self._epoch,
                recovery_ts=recovery_ts,
                store_path=self.config.store_path,
            )
        else:
            placement = {v: s for v, s in self.mapping.items()}
            vertices, edges = graph_state_from_store(self.store.snapshot())
            image = (
                {
                    h: props for h, props in vertices.items()
                    if placement.get(h) == index
                },
                {
                    key: record for key, record in edges.items()
                    if placement.get(key[0]) == index
                },
            )
            self._spawn_worker(
                index, epoch=self._epoch, image=image,
                recovery_ts=recovery_ts, placement=placement,
            )
        self.recoveries += 1

    # -- statistics ------------------------------------------------------

    def _absorb_worker_stats(self, replies: List[dict]) -> None:
        """Fold the workers' extended stats snapshots into the cached
        dotted-metric aggregate (wholesale: worker counters are
        cumulative since worker start)."""
        metrics: Dict[str, float] = {}
        prog_sum: Dict[str, float] = {}
        stragglers = 0
        cache_hits = cache_misses = cache_entries = 0
        pc_hits = pc_misses = pc_invalidations = pc_entries = 0
        for snap in replies:
            for key, value in snap["shard"].items():
                out_key = f"shard.{key}"
                metrics[out_key] = metrics.get(out_key, 0) + value
            for key, value in snap["ordering"].items():
                out_key = f"ordering.{key}"
                metrics[out_key] = metrics.get(out_key, 0) + value
            stragglers += snap["stragglers_dropped"]
            hits, misses, entries = snap["cache"]
            cache_hits += hits
            cache_misses += misses
            cache_entries += entries
            for key, value in snap.get("program", {}).items():
                prog_sum[key] = prog_sum.get(key, 0) + value
            for key, value in snap.get("resident", {}).items():
                out_key = f"program.resident.{key}"
                metrics[out_key] = metrics.get(out_key, 0) + value
            for key, value in snap.get("peer_transport", {}).items():
                out_key = f"transport.worker.{key}"
                metrics[out_key] = metrics.get(out_key, 0) + value
            ph, pm, pi, pl = snap.get("prog_cache", (0, 0, 0, 0))
            pc_hits += ph
            pc_misses += pm
            pc_invalidations += pi
            pc_entries += pl
        metrics["ordering.cache_hits"] = cache_hits
        metrics["ordering.cache_misses"] = cache_misses
        metrics["ordering.cache_entries"] = cache_entries
        metrics["process.stragglers_dropped"] = stragglers
        if self.config.enable_program_cache:
            metrics["program.cache.hits"] = pc_hits
            metrics["program.cache.misses"] = pc_misses
            metrics["program.cache.invalidations"] = pc_invalidations
            metrics["program.cache.entries"] = pc_entries
        self._worker_metrics = metrics
        self._worker_prog_sum = prog_sum

    def _process_metrics(self) -> Dict[str, float]:
        """Aggregate worker-side counters over RPC, under the same
        dotted names the in-process deployments export.

        Registered *last* with the metrics registry, so the merged
        ``program.*`` values emitted here (client executor + worker
        residents) override the client-only collector — program metrics
        stay deployment-neutral.  After ``close()`` the last absorbed
        worker aggregate is served from cache, so a final ``repro
        stats`` still sees worker-side work.
        """
        out: Dict[str, float] = {
            "process.workers": len(self._live_shards()),
            "process.recoveries": self.recoveries,
        }
        if not self._closed:
            try:
                self._absorb_worker_stats(
                    self._request_all_shards("stats", None)
                )
            except TransportError:
                pass
        out.update(self._worker_metrics)
        if self._worker_prog_sum:
            for key, value in scalar_fields(self.executor.stats).items():
                out[f"program.{key}"] = (
                    value + self._worker_prog_sum.get(key, 0)
                )
        return out

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Shut every worker down cleanly; kill whatever will not die."""
        if self._closed:
            return
        try:
            self.transport.flush()
            # Final stats absorb before the workers go away: merged
            # program.* metrics survive into post-close snapshots.
            self._absorb_worker_stats(
                self._request_all_shards("stats", None)
            )
        except TransportError:
            pass
        self._closed = True
        for index in list(self._procs):
            name = self.shard_name(index)
            try:
                self.transport.request("client", name, "shutdown", None)
            except TransportError:
                pass
        self.transport.close()
        for proc in self._procs.values():
            proc.join(timeout=10)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=10)
        self._procs.clear()
        self.oracle.shutdown()
        self.oracle.close()
        self._oracle_proc.join(timeout=10)
        if self._oracle_proc.is_alive():
            self._oracle_proc.kill()
            self._oracle_proc.join(timeout=10)
        try:
            os.unlink(self._oracle_path)
        except OSError:
            pass
        try:
            os.rmdir(self._tmpdir)
        except OSError:
            pass
        if hasattr(self.store, "close"):
            self.store.close()

    def __enter__(self) -> "ProcessWeaver":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
