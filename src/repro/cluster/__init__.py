"""Cluster runtime: shard servers, messages, and the cluster manager."""

from .messages import (
    AnnounceMessage,
    Heartbeat,
    ProgramRequest,
    ProgramResponse,
    QueuedTransaction,
)
from .shard import ShardServer, ShardStats
from .manager import ClusterManager
from .replica import ReadReplica

__all__ = [
    "AnnounceMessage",
    "Heartbeat",
    "ProgramRequest",
    "ProgramResponse",
    "QueuedTransaction",
    "ShardServer",
    "ShardStats",
    "ClusterManager",
    "ReadReplica",
]
