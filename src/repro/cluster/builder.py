"""Deployment-neutral construction of one Weaver cluster's parts.

Three deployments share one server wiring: the direct-mode
:class:`~repro.db.database.Weaver`, the discrete-event
:class:`~repro.sim.deployment.SimulatedWeaver`, and the multiprocess
:class:`~repro.cluster.process.ProcessWeaver`.  Each used to assemble
store / mapping / oracle / gatekeepers / shards / manager / executor /
metrics / tracer by hand; :func:`build_cluster` is that assembly lifted
out, so the simulated deployment is the *deterministic twin* of the
process deployment — same parts, different transport.

The parts object keeps **live lists**: deployments replace gatekeepers
and shards in place on recovery, and the registered stats collectors
follow the replacements because they close over the lists, not over the
initial elements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from ..core.gatekeeper import Gatekeeper
from ..core.ordering import make_oracle
from ..db.config import WeaverConfig
from ..obs import MetricsRegistry, Tracer, register_stats_collectors
from ..programs.framework import ProgramExecutor
from ..store.kvstore import TransactionalStore
from ..store.mapping import ShardMapping
from .manager import ClusterManager
from .shard import ShardServer


@dataclass
class ClusterParts:
    """Everything one deployment owns, however it moves messages."""

    config: WeaverConfig
    store: Any
    mapping: ShardMapping
    oracle: Any
    gatekeepers: List[Gatekeeper]
    shards: List[ShardServer]
    manager: ClusterManager
    executor: ProgramExecutor
    metrics: MetricsRegistry
    tracer: Tracer
    extras: dict = field(default_factory=dict)
    # Geo deployments (config.num_regions > 1): one RegionStats and one
    # RegionOracleClient per region, plus each server's region index
    # keyed by server name ("gk0", "shard1", ...).  Empty lists / dict
    # for the classic single-region shape.
    region_stats: List[Any] = field(default_factory=list)
    region_clients: List[Any] = field(default_factory=list)
    region_of: dict = field(default_factory=dict)


def build_cluster(
    config: Optional[WeaverConfig] = None,
    *,
    oracle: Any = None,
    with_shards: bool = True,
    heartbeat_timeout: float = 1.0,
    tracer_clock: Optional[Callable[[], float]] = None,
    network: Any = None,
    transport_stats: Any = None,
    extra: Optional[Callable[[], dict]] = None,
    use_store_nodes: bool = True,
) -> ClusterParts:
    """Assemble one cluster's parts.

    ``oracle`` overrides the locally constructed timeline oracle — the
    process deployment passes its :class:`~repro.cluster.worker.
    OracleProxy` so ordering state lives in the oracle process while
    the stats collector still reads it.  ``with_shards=False`` skips
    local shard servers (they live in worker processes) and their
    collectors.  ``network`` / ``transport_stats`` / ``extra`` add the
    deployment-specific collectors under their existing dotted names.
    """
    cfg = config or WeaverConfig()
    if cfg.store_backend == "sqlite":
        from ..store.durable import DurableStore

        store: Any = DurableStore(
            cfg.store_path, cache_bytes=cfg.store_cache_bytes
        )
        if cfg.store_background_compaction:
            store.enable_background_compaction()
    elif use_store_nodes and cfg.store_nodes:
        from ..store.distributed import DistributedStore

        store = DistributedStore(cfg.store_nodes, cfg.store_replication)
    else:
        store = TransactionalStore()
    mapping = ShardMapping(store, cfg.num_shards)
    if oracle is None:
        oracle = make_oracle(cfg.oracle_chain_length)
    # Geo shape: servers spread round-robin across regions, and each
    # region's shards talk to the oracle through a region-local client
    # (pure queries served by a pinned replica, escalations to the head).
    region_stats: List[Any] = []
    region_clients: List[Any] = []
    region_of: dict = {}
    if cfg.num_regions > 1:
        from ..core.oracle import RegionOracleClient, RegionStats

        region_stats = [RegionStats() for _ in range(cfg.num_regions)]
        region_clients = [
            RegionOracleClient(oracle, r, region_stats[r])
            for r in range(cfg.num_regions)
        ]
        for i in range(cfg.num_gatekeepers):
            region_of[f"gk{i}"] = i % cfg.num_regions
        for i in range(cfg.num_shards):
            region_of[f"shard{i}"] = i % cfg.num_regions

    def shard_oracle(index: int) -> Any:
        if region_clients:
            return region_clients[index % cfg.num_regions]
        return oracle

    gatekeepers = [
        Gatekeeper(i, cfg.num_gatekeepers, store)
        for i in range(cfg.num_gatekeepers)
    ]
    shards: List[ShardServer] = (
        [
            ShardServer(
                i, cfg.num_gatekeepers, shard_oracle(i),
                cfg.use_ordering_cache,
            )
            for i in range(cfg.num_shards)
        ]
        if with_shards
        else []
    )
    manager = ClusterManager(
        store, mapping, heartbeat_timeout=heartbeat_timeout
    )
    for gk in gatekeepers:
        manager.register_gatekeeper(gk)
    for shard in shards:
        manager.register_shard(shard)
    executor = ProgramExecutor()
    metrics = MetricsRegistry()
    tracer = Tracer(clock=tracer_clock, registry=metrics)
    oracle.tracer = tracer
    for gk in gatekeepers:
        gk.tracer = tracer
    for shard in shards:
        shard.tracer = tracer
    parts = ClusterParts(
        config=cfg,
        store=store,
        mapping=mapping,
        oracle=oracle,
        gatekeepers=gatekeepers,
        shards=shards,
        manager=manager,
        executor=executor,
        metrics=metrics,
        tracer=tracer,
        region_stats=region_stats,
        region_clients=region_clients,
        region_of=region_of,
    )
    register_stats_collectors(
        metrics,
        oracle=oracle,
        gatekeepers=lambda: parts.gatekeepers,
        shards=(lambda: parts.shards) if with_shards else None,
        network=network,
        programs=lambda: parts.executor.stats,
        transport=transport_stats,
        store=lambda: parts.store.stats,
        regions=(lambda: parts.region_stats) if region_stats else None,
        extra=extra,
    )
    return parts
