"""Worker processes for the real (multiprocess) deployment.

Two worker mains live here, each speaking length-prefixed
:mod:`~repro.cluster.wire` frames:

* :func:`shard_worker_main` — one OS process per shard: owns a real
  :class:`~repro.cluster.shard.ShardServer` (the same event loop the
  simulator drives), enqueues gatekeeper-forwarded transactions,
  advances to program timestamps, and serves **batch vertex
  resolution**: for a program round it materializes each requested
  vertex's snapshot image (visible properties and out-edges at the
  program timestamp) so the expensive multi-version visibility work
  runs in the worker, in parallel across shards, while the client-side
  executor runs the program logic on plain data.
* :func:`oracle_worker_main` — the timeline oracle as its own process
  behind a UNIX listening socket; every shard worker (and the client,
  for the referee and GC) connects and speaks the small RPC surface of
  :class:`OracleProxy`.

Shard-side trace spans (``shard.enqueue`` / ``shard.apply``) are
buffered by a :class:`BufferTracer` and piggybacked on the next reply
frame; the client re-emits them into its own tracer under the original
``trace_id``, which is how ``repro trace`` chains and the
strict-serializability referee see one coherent story across process
boundaries.
"""

from __future__ import annotations

import selectors
import socket
from typing import Any, Dict, List, Optional, Tuple

from ..core.oracle import TimelineOracle
from ..core.vclock import Ordering, VectorTimestamp
from ..errors import WeaverError
from . import wire
from .messages import ProgramRequest
from .shard import ShardServer

_RESOLVE_KINDS = ("resolve",)


class BufferTracer:
    """Tracer shim for worker processes: buffers spans as plain tuples
    ``(trace_id, kind, node, attrs)`` until a reply frame drains them."""

    def __init__(self) -> None:
        self.events: List[Tuple[Optional[int], str, str, dict]] = []

    def emit(self, trace_id, kind: str, node: str = "", **attrs) -> None:
        self.events.append((trace_id, kind, node, attrs))

    def drain(self) -> List[Tuple[Optional[int], str, str, dict]]:
        events, self.events = self.events, []
        return events


class OracleProxy:
    """Client-side stub of the oracle process.

    Implements the ordering surface shards use
    (:meth:`order`), the referee/GC surface the client uses
    (:meth:`established_order`, :meth:`collect_below`), and the stats
    attributes the metrics collector reads — each as one RPC.
    """

    def __init__(self, path: str):
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.connect(path)
        self._sock.settimeout(60.0)
        self._next_id = 0
        # Builder wiring assigns a tracer; decisions are traced in the
        # oracle process, so the client-side attribute is inert.
        self.tracer = None

    def _call(self, kind: str, payload: Any) -> Any:
        rid = self._next_id
        self._next_id += 1
        wire.write_frame(self._sock, wire.encode(
            {"k": "r", "id": rid, "kind": kind, "p": payload}
        ))
        envelope = wire.decode(wire.read_frame(self._sock))
        if envelope.get("k") == "e":
            raise WeaverError(f"oracle worker failed: {envelope.get('e')}")
        return envelope.get("p")

    # -- ordering surface (what RefinableOrdering calls) ----------------

    def order(self, a: VectorTimestamp, b: VectorTimestamp,
              prefer: Ordering = Ordering.BEFORE) -> Ordering:
        return self._call("order", (a, b, prefer))

    def query_order(self, a, b) -> Optional[Ordering]:
        return self._call("query", (a, b))

    def established_order(self, a, b) -> Optional[Ordering]:
        return self._call("established", (a, b))

    def create_event(self, ts: VectorTimestamp) -> None:
        self._call("create", ts)

    def collect_below(self, watermark: VectorTimestamp) -> int:
        return self._call("collect", watermark)

    # -- stats surface (what the metrics collector reads) ---------------

    @property
    def head(self) -> "OracleProxy":
        return self

    def _snapshot(self) -> dict:
        return self._call("stats", None)

    @property
    def stats(self):
        snap = self._snapshot()
        view = _AttrView(snap["stats"])
        return view

    @property
    def num_events(self) -> int:
        return self._snapshot()["num_events"]

    @property
    def reach_cache_size(self) -> int:
        return self._snapshot()["reach_cache_size"]

    def shutdown(self) -> None:
        try:
            self._call("shutdown", None)
        except (WeaverError, OSError):
            pass

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


class _AttrView:
    """A dict exposed as plain attributes, so
    :func:`repro.obs.collect.scalar_fields` reads it like a real
    ``OracleStats`` (``messages`` included as a plain field)."""

    def __init__(self, fields: dict):
        for key, value in fields.items():
            setattr(self, key, value)


# -- the shard worker ----------------------------------------------------


def _vertex_image(node) -> dict:
    """A plain-data snapshot of one visible vertex: what crosses the
    wire back to the client-side executor."""
    return {
        "handle": node.handle,
        "properties": node.properties(),
        "edges": [
            (edge.handle, edge.nbr, edge.properties())
            for edge in node.neighbors
        ],
    }


class _ShardWorker:
    """The request loop around one ShardServer."""

    def __init__(
        self,
        index: int,
        num_gatekeepers: int,
        oracle,
        use_ordering_cache: bool,
        epoch: int = 0,
        image: Optional[tuple] = None,
        recovery_ts: Optional[VectorTimestamp] = None,
        store_path: Optional[str] = None,
    ):
        self.shard = ShardServer(
            index, num_gatekeepers, oracle, use_ordering_cache
        )
        self.tracer = BufferTracer()
        self.shard.tracer = self.tracer
        self.stragglers_dropped = 0
        if epoch > 0:
            self.shard.advance_epoch(epoch)
        if store_path is not None and recovery_ts is not None:
            image = self._image_from_store(store_path)
        if image is not None and recovery_ts is not None:
            self._load_image(image, recovery_ts)
        # Per-query snapshot views (+ resolved-vertex memo), dropped on
        # the client's finish message.
        self._queries: Dict[int, tuple] = {}

    def _image_from_store(self, store_path: str) -> tuple:
        """Reopen the durable database and carve out this shard's
        partition — real crash recovery: the WAL-backed file on disk,
        not a dict snapshot pickled across the fork, is the image."""
        from ..db.operations import graph_state_from_store
        from ..store.durable import DurableStore
        from ..store.mapping import placement_from_store

        with DurableStore(store_path, read_only=True) as store:
            placement = placement_from_store(store)
            vertices, edges = graph_state_from_store(store.snapshot())
        index = self.shard.index
        return (
            {
                h: props for h, props in vertices.items()
                if placement.get(h) == index
            },
            {
                key: record for key, record in edges.items()
                if placement.get(key[0]) == index
            },
        )

    def _load_image(self, image: tuple, ts: VectorTimestamp) -> None:
        """Install a recovery image (``graph_state_from_store`` shape,
        pre-filtered to this shard) stamped at the recovery timestamp —
        the process-mode mirror of ``ClusterManager._load_partition``."""
        vertices, edges = image
        graph = self.shard.graph
        for handle, props in vertices.items():
            graph.create_vertex(handle, ts)
            for key, value in props.items():
                graph.set_vertex_property(handle, key, value, ts)
        for (src, handle), record in edges.items():
            graph.create_edge(handle, src, record["dst"], ts)
            for key, value in record.get("props", {}).items():
                graph.set_edge_property(src, handle, key, value, ts)

    # -- message handling ----------------------------------------------

    def handle_send(self, kind: str, payload: Any) -> None:
        if kind == "enqueue":
            gk_index, qtx = payload
            if qtx.ts.epoch < self.shard.epoch:
                # Pre-recovery straggler: its effects are already in the
                # reloaded state (defensive — the FIFO socket makes this
                # unreachable in the current client).
                self.stragglers_dropped += 1
                return
            self.shard.enqueue(gk_index, qtx)
        elif kind == "finish":
            self._queries.pop(payload, None)
        else:
            raise WeaverError(f"unknown one-way message {kind!r}")

    def handle_request(self, kind: str, payload: Any) -> Any:
        shard = self.shard
        if kind == "resolve":
            return self._resolve(payload)
        if kind == "advance_to":
            return shard.advance_to(payload)
        if kind == "drain":
            return shard.apply_available()
        if kind == "advance_epoch":
            self._queries.clear()
            shard.advance_epoch(payload)
            return True
        if kind == "collect_below":
            reclaimed = shard.collect_below(payload)
            cache = shard.ordering.cache
            if cache is not None:
                cache.evict_below(payload)
            return reclaimed
        if kind == "stats":
            return self._stats()
        if kind == "ping":
            return True
        if kind == "shutdown":
            # A request (not a one-way send) so the client can await the
            # acknowledgement before reaping the process.
            return True
        raise WeaverError(f"unknown request {kind!r}")

    def _resolve(self, request: ProgramRequest) -> Dict[str, Any]:
        """One shard's share of one scatter-gather round.

        The per-(query, shard) snapshot view is created on the first
        round and reused for the query's lifetime, exactly like
        :class:`~repro.programs.routing.ShardSnapshotResolver` does
        in-process; ``fresh`` tells the client whether this batch paid
        the snapshot construction."""
        shard = self.shard
        entry = self._queries.get(request.query_id)
        fresh = entry is None
        if fresh:
            view = shard.snapshot(request.ts)
            entry = (view,)
            self._queries[request.query_id] = entry
        (view,) = entry
        images: Dict[str, Any] = {}
        for handle, _params in request.vertices:
            shard.stats.vertices_read += 1
            node = view.try_vertex(handle)
            images[handle] = None if node is None else _vertex_image(node)
        return {"images": images, "fresh": fresh}

    def _stats(self) -> dict:
        shard = self.shard
        out = {
            "shard": {
                key: value
                for key, value in vars(shard.stats).items()
                if isinstance(value, (int, float))
            },
            "ordering": {
                key: value
                for key, value in vars(shard.ordering.stats).items()
                if isinstance(value, (int, float))
            },
            "queue_depths": shard.queue_depths(),
            "epoch": shard.epoch,
            "stragglers_dropped": self.stragglers_dropped,
        }
        cache = shard.ordering.cache
        out["cache"] = (
            (cache.hits, cache.misses, len(cache))
            if cache is not None else (0, 0, 0)
        )
        return out


def shard_worker_main(
    sock,
    index: int,
    num_gatekeepers: int,
    use_ordering_cache: bool = True,
    oracle_path: Optional[str] = None,
    epoch: int = 0,
    image: Optional[tuple] = None,
    recovery_ts: Optional[VectorTimestamp] = None,
    store_path: Optional[str] = None,
) -> None:
    """Entry point of one shard worker process."""
    oracle = (
        OracleProxy(oracle_path) if oracle_path else TimelineOracle()
    )
    worker = _ShardWorker(
        index, num_gatekeepers, oracle, use_ordering_cache,
        epoch=epoch, image=image, recovery_ts=recovery_ts,
        store_path=store_path,
    )
    try:
        while True:
            try:
                envelope = wire.decode(wire.read_frame(sock))
            except (wire.WireError, OSError):
                break  # client went away; die quietly
            kind = envelope.get("k")
            if kind == "b":
                for msg_kind, payload in envelope["m"]:
                    worker.handle_send(msg_kind, payload)
                continue
            if kind != "r":
                break
            rid = envelope["id"]
            try:
                result = worker.handle_request(
                    envelope["kind"], envelope.get("p")
                )
                reply = {"k": "p", "id": rid, "p": result,
                         "ev": worker.tracer.drain()}
            except Exception as exc:  # report, keep serving
                reply = {"k": "e", "id": rid, "e": repr(exc),
                         "ev": worker.tracer.drain()}
            try:
                wire.write_frame(sock, wire.encode(reply))
            except OSError:
                break
            if envelope["kind"] == "shutdown":
                break
    finally:
        try:
            sock.close()
        except OSError:
            pass
        if isinstance(oracle, OracleProxy):
            oracle.close()


# -- the oracle worker ---------------------------------------------------


def oracle_worker_main(listen_sock) -> None:
    """Entry point of the timeline-oracle process.

    A selector loop over one UNIX listening socket: every shard worker
    and the client hold their own connection.  Requests are tiny and
    the oracle is single-threaded by design — it is the serialization
    point whose request count Fig 14 measures.
    """
    oracle = TimelineOracle()
    sel = selectors.DefaultSelector()
    listen_sock.setblocking(True)
    sel.register(listen_sock, selectors.EVENT_READ, None)
    running = True

    def handle(payload_kind: str, payload: Any) -> Any:
        nonlocal running
        if payload_kind == "order":
            a, b, prefer = payload
            return oracle.order(a, b, prefer)
        if payload_kind == "query":
            return oracle.query_order(*payload)
        if payload_kind == "established":
            return oracle.established_order(*payload)
        if payload_kind == "create":
            oracle.create_event(payload)
            return None
        if payload_kind == "collect":
            return oracle.collect_below(payload)
        if payload_kind == "stats":
            fields = {
                key: value
                for key, value in vars(oracle.stats).items()
                if isinstance(value, (int, float))
            }
            fields["messages"] = oracle.stats.messages
            return {
                "stats": fields,
                "num_events": oracle.num_events,
                "reach_cache_size": oracle.reach_cache_size,
            }
        if payload_kind == "shutdown":
            running = False
            return True
        raise WeaverError(f"unknown oracle request {payload_kind!r}")

    buffers: Dict[Any, wire.FrameBuffer] = {}
    while running:
        for key, _mask in sel.select(timeout=1.0):
            conn = key.fileobj
            if conn is listen_sock:
                client, _ = listen_sock.accept()
                sel.register(client, selectors.EVENT_READ, None)
                buffers[client] = wire.FrameBuffer()
                continue
            try:
                chunk = conn.recv(65536)
            except OSError:
                chunk = b""
            if not chunk:
                sel.unregister(conn)
                buffers.pop(conn, None)
                conn.close()
                continue
            for frame in buffers[conn].feed(chunk):
                envelope = wire.decode(frame)
                rid = envelope.get("id")
                try:
                    result = handle(envelope["kind"], envelope.get("p"))
                    reply = {"k": "p", "id": rid, "p": result}
                except Exception as exc:
                    reply = {"k": "e", "id": rid, "e": repr(exc)}
                try:
                    wire.write_frame(conn, wire.encode(reply))
                except OSError:
                    pass
    for conn in list(buffers):
        conn.close()
    listen_sock.close()
