"""Worker processes for the real (multiprocess) deployment.

Two worker mains live here, each speaking length-prefixed
:mod:`~repro.cluster.wire` frames:

* :func:`shard_worker_main` — one OS process per shard: owns a real
  :class:`~repro.cluster.shard.ShardServer` (the same event loop the
  simulator drives), enqueues gatekeeper-forwarded transactions,
  advances to program timestamps, and serves **batch vertex
  resolution**: for a program round it materializes each requested
  vertex's snapshot image (visible properties and out-edges at the
  program timestamp) so the expensive multi-version visibility work
  runs in the worker, in parallel across shards, while the client-side
  executor runs the program logic on plain data.
* :func:`oracle_worker_main` — the timeline oracle as its own process
  behind a UNIX listening socket; every shard worker (and the client,
  for the referee and GC) connects and speaks the small RPC surface of
  :class:`OracleProxy`.

Shard-side trace spans (``shard.enqueue`` / ``shard.apply``) are
buffered by a :class:`BufferTracer` and piggybacked on the next reply
frame; the client re-emits them into its own tracer under the original
``trace_id``, which is how ``repro trace`` chains and the
strict-serializability referee see one coherent story across process
boundaries.
"""

from __future__ import annotations

import select
import selectors
import socket
import time
from collections import OrderedDict, deque
from typing import Any, Dict, List, Optional, Tuple

from ..core.oracle import TimelineOracle
from ..core.vclock import Ordering, VectorTimestamp
from ..db.operations import touched_vertices
from ..errors import WeaverError
from ..obs.metrics import MetricsRegistry
from ..programs.caching import ChangeTracker, ProgramCache
from ..programs.framework import ProgramStats, dedup_round, run_entry
from ..programs.library import PROGRAM_REGISTRY
from ..programs.routing import ShardSnapshotResolver
from ..programs.state import ProgramContext
from . import wire
from .messages import FrontierForward, ProgramRequest, ProgramStart
from .shard import ShardServer
from .transport import ProcessTransport, TransportError

_RESOLVE_KINDS = ("resolve",)


class BufferTracer:
    """Tracer shim for worker processes: buffers spans as plain tuples
    ``(trace_id, kind, node, attrs)`` until a reply frame drains them."""

    def __init__(self) -> None:
        self.events: List[Tuple[Optional[int], str, str, dict]] = []

    def emit(self, trace_id, kind: str, node: str = "", **attrs) -> None:
        self.events.append((trace_id, kind, node, attrs))

    def drain(self) -> List[Tuple[Optional[int], str, str, dict]]:
        events, self.events = self.events, []
        return events


class OracleProxy:
    """Client-side stub of the oracle process.

    Implements the ordering surface shards use
    (:meth:`order`), the referee/GC surface the client uses
    (:meth:`established_order`, :meth:`collect_below`), and the stats
    attributes the metrics collector reads — each as one RPC.
    """

    def __init__(self, path: str):
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.connect(path)
        self._sock.settimeout(60.0)
        self._next_id = 0
        # Builder wiring assigns a tracer; decisions are traced in the
        # oracle process, so the client-side attribute is inert.
        self.tracer = None

    def _call(self, kind: str, payload: Any) -> Any:
        rid = self._next_id
        self._next_id += 1
        wire.write_frame(self._sock, wire.encode(
            {"k": "r", "id": rid, "kind": kind, "p": payload}
        ))
        envelope = wire.decode(wire.read_frame(self._sock))
        if envelope.get("k") == "e":
            raise WeaverError(f"oracle worker failed: {envelope.get('e')}")
        return envelope.get("p")

    # -- ordering surface (what RefinableOrdering calls) ----------------

    def order(self, a: VectorTimestamp, b: VectorTimestamp,
              prefer: Ordering = Ordering.BEFORE) -> Ordering:
        return self._call("order", (a, b, prefer))

    def query_order(self, a, b) -> Optional[Ordering]:
        return self._call("query", (a, b))

    def established_order(self, a, b) -> Optional[Ordering]:
        return self._call("established", (a, b))

    def create_event(self, ts: VectorTimestamp) -> None:
        self._call("create", ts)

    def collect_below(self, watermark: VectorTimestamp) -> int:
        return self._call("collect", watermark)

    # -- stats surface (what the metrics collector reads) ---------------

    @property
    def head(self) -> "OracleProxy":
        return self

    def _snapshot(self) -> dict:
        return self._call("stats", None)

    @property
    def stats(self):
        snap = self._snapshot()
        view = _AttrView(snap["stats"])
        return view

    @property
    def num_events(self) -> int:
        return self._snapshot()["num_events"]

    @property
    def reach_cache_size(self) -> int:
        return self._snapshot()["reach_cache_size"]

    def shutdown(self) -> None:
        try:
            self._call("shutdown", None)
        except (WeaverError, OSError):
            pass

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


class _AttrView:
    """A dict exposed as plain attributes, so
    :func:`repro.obs.collect.scalar_fields` reads it like a real
    ``OracleStats`` (``messages`` included as a plain field)."""

    def __init__(self, fields: dict):
        for key, value in fields.items():
            setattr(self, key, value)


# -- the shard worker ----------------------------------------------------


def _vertex_image(node) -> dict:
    """A plain-data snapshot of one visible vertex: what crosses the
    wire back to the client-side executor."""
    return {
        "handle": node.handle,
        "properties": node.properties(),
        "edges": [
            (edge.handle, edge.nbr, edge.properties())
            for edge in node.neighbors
        ],
    }


class _ShardWorker:
    """The request loop around one ShardServer."""

    def __init__(
        self,
        index: int,
        num_gatekeepers: int,
        oracle,
        use_ordering_cache: bool,
        epoch: int = 0,
        image: Optional[tuple] = None,
        recovery_ts: Optional[VectorTimestamp] = None,
        store_path: Optional[str] = None,
    ):
        self.shard = ShardServer(
            index, num_gatekeepers, oracle, use_ordering_cache
        )
        self.tracer = BufferTracer()
        self.shard.tracer = self.tracer
        self.stragglers_dropped = 0
        #: Full vertex→shard placement recovered from a durable store,
        #: handed to the resident engine when the client could not ship
        #: one across the fork (sqlite crash recovery).
        self.recovered_placement: Optional[Dict[str, int]] = None
        if epoch > 0:
            self.shard.advance_epoch(epoch)
        if store_path is not None and recovery_ts is not None:
            image = self._image_from_store(store_path)
        if image is not None and recovery_ts is not None:
            self._load_image(image, recovery_ts)
        # Per-query snapshot views (+ resolved-vertex memo), dropped on
        # the client's finish message.
        self._queries: Dict[int, tuple] = {}

    def _image_from_store(self, store_path: str) -> tuple:
        """Reopen the durable database and carve out this shard's
        partition — real crash recovery: the WAL-backed file on disk,
        not a dict snapshot pickled across the fork, is the image."""
        from ..db.operations import graph_state_from_store
        from ..store.durable import DurableStore
        from ..store.mapping import placement_from_store

        with DurableStore(store_path, read_only=True) as store:
            placement = placement_from_store(store)
            vertices, edges = graph_state_from_store(store.snapshot())
        self.recovered_placement = dict(placement)
        index = self.shard.index
        return (
            {
                h: props for h, props in vertices.items()
                if placement.get(h) == index
            },
            {
                key: record for key, record in edges.items()
                if placement.get(key[0]) == index
            },
        )

    def _load_image(self, image: tuple, ts: VectorTimestamp) -> None:
        """Install a recovery image (``graph_state_from_store`` shape,
        pre-filtered to this shard) stamped at the recovery timestamp —
        the process-mode mirror of ``ClusterManager._load_partition``."""
        vertices, edges = image
        graph = self.shard.graph
        for handle, props in vertices.items():
            graph.create_vertex(handle, ts)
            for key, value in props.items():
                graph.set_vertex_property(handle, key, value, ts)
        for (src, handle), record in edges.items():
            graph.create_edge(handle, src, record["dst"], ts)
            for key, value in record.get("props", {}).items():
                graph.set_edge_property(src, handle, key, value, ts)

    # -- message handling ----------------------------------------------

    def handle_send(self, kind: str, payload: Any) -> None:
        if kind == "enqueue":
            gk_index, qtx = payload
            if qtx.ts.epoch < self.shard.epoch:
                # Pre-recovery straggler: its effects are already in the
                # reloaded state (defensive — the FIFO socket makes this
                # unreachable in the current client).
                self.stragglers_dropped += 1
                return
            self.shard.enqueue(gk_index, qtx)
        elif kind == "finish":
            self._queries.pop(payload, None)
        else:
            raise WeaverError(f"unknown one-way message {kind!r}")

    def handle_request(self, kind: str, payload: Any) -> Any:
        shard = self.shard
        if kind == "resolve":
            return self._resolve(payload)
        if kind == "advance_to":
            return shard.advance_to(payload)
        if kind == "drain":
            return shard.apply_available()
        if kind == "advance_epoch":
            self._queries.clear()
            shard.advance_epoch(payload)
            return True
        if kind == "collect_below":
            reclaimed = shard.collect_below(payload)
            cache = shard.ordering.cache
            if cache is not None:
                cache.evict_below(payload)
            return reclaimed
        if kind == "stats":
            return self._stats()
        if kind == "ping":
            return True
        if kind == "shutdown":
            # A request (not a one-way send) so the client can await the
            # acknowledgement before reaping the process.
            return True
        raise WeaverError(f"unknown request {kind!r}")

    def _resolve(self, request: ProgramRequest) -> Dict[str, Any]:
        """One shard's share of one scatter-gather round.

        The per-(query, shard) snapshot view is created on the first
        round and reused for the query's lifetime, exactly like
        :class:`~repro.programs.routing.ShardSnapshotResolver` does
        in-process; ``fresh`` tells the client whether this batch paid
        the snapshot construction."""
        shard = self.shard
        entry = self._queries.get(request.query_id)
        fresh = entry is None
        if fresh:
            view = shard.snapshot(request.ts)
            entry = (view,)
            self._queries[request.query_id] = entry
        (view,) = entry
        images: Dict[str, Any] = {}
        for handle, _params in request.vertices:
            shard.stats.vertices_read += 1
            node = view.try_vertex(handle)
            images[handle] = None if node is None else _vertex_image(node)
        return {"images": images, "fresh": fresh}

    def _stats(self) -> dict:
        shard = self.shard
        out = {
            "shard": {
                key: value
                for key, value in vars(shard.stats).items()
                if isinstance(value, (int, float))
            },
            "ordering": {
                key: value
                for key, value in vars(shard.ordering.stats).items()
                if isinstance(value, (int, float))
            },
            "queue_depths": shard.queue_depths(),
            "epoch": shard.epoch,
            "stragglers_dropped": self.stragglers_dropped,
        }
        cache = shard.ordering.cache
        out["cache"] = (
            (cache.hits, cache.misses, len(cache))
            if cache is not None else (0, 0, 0)
        )
        return out


# -- shard-resident program execution (section 4) ------------------------


class ResidentStats:
    """Counters for the shard-resident execution path, exported under
    ``program.resident.*`` (summed across workers by the client)."""

    def __init__(self) -> None:
        self.programs_coordinated = 0  # ProgramStart handled here
        self.programs_participated = 0  # queries this worker executed in
        self.rounds_executed = 0       # local round slices run
        self.entries_processed = 0     # frontier entries run locally
        self.forwards_sent = 0         # FrontierForward frames sent
        self.forwards_received = 0     # FrontierForward frames received
        self.hops_forwarded = 0        # hops inside sent frames
        self.hops_received = 0         # hops inside received frames
        self.round_reports = 0         # round reports processed (coord)
        self.stale_drops = 0           # frames for finished queries
        self.cache_hits = 0            # fully validated cache hits
        self.cache_invalidations = 0   # remote-counter refutations
        self.counter_checks = 0        # peer change-counter validations
        self.peer_reconnects = 0       # worker channels rebuilt

    def reset(self) -> None:
        self.__init__()


class _CoopSocket:
    """Peer-channel socket adapter that keeps pumping inbound traffic.

    Worker↔worker channels can form send cycles (A forwarding a big
    frontier to B while B forwards to A): a plain blocking ``sendall``
    on both sides deadlocks once the kernel buffers fill.  This wrapper
    keeps the underlying socket non-blocking and, whenever a send or a
    reply-read would block, drains *inbound* peer bytes into the
    engine's frame buffers (buffering only — no message is executed
    re-entrantly), so every participant keeps consuming and the cycle
    always makes progress.
    """

    def __init__(self, sock, engine: "_ResidentEngine"):
        self._sock = sock
        self._engine = engine
        self._timeout = 60.0
        sock.setblocking(False)

    def settimeout(self, timeout) -> None:
        self._timeout = timeout or 60.0

    def fileno(self) -> int:
        return self._sock.fileno()

    def sendall(self, data) -> None:
        view = memoryview(data)
        deadline = time.monotonic() + self._timeout
        while view:
            try:
                sent = self._sock.send(view)
                view = view[sent:]
            except (BlockingIOError, InterruptedError):
                self._engine._coop_wait(self._sock, True, deadline)

    def recv(self, n: int) -> bytes:
        deadline = time.monotonic() + self._timeout
        while True:
            try:
                return self._sock.recv(n)
            except (BlockingIOError, InterruptedError):
                self._engine._coop_wait(self._sock, False, deadline)

    def close(self) -> None:
        self._sock.close()


class _ResidentQuery:
    """One in-flight program's state on one participating worker."""

    __slots__ = (
        "qid", "program", "ctx", "resolver", "trace_id", "coordinator",
        "buf", "received", "go", "executed", "entries", "tagged",
    )

    def __init__(self, qid: int):
        self.qid = qid
        self.program = None
        self.ctx: Optional[ProgramContext] = None
        self.resolver = None
        self.trace_id: Optional[int] = None
        self.coordinator: Optional[int] = None
        self.buf: Dict[int, list] = {}       # round -> keyed hop triples
        self.received: Dict[int, int] = {}   # round -> hops from peers
        self.go: Dict[int, dict] = {}        # round -> round_go payload
        self.executed: set = set()
        # Per-entry log: (round, key, handle, visible, n_hops) — the
        # evidence halt filtering replays (see _fragment).
        self.entries: List[tuple] = []
        # Emitted results tagged (round, key, seq, value) for global
        # deterministic ordering at the coordinator.
        self.tagged: List[tuple] = []


class _Coordination:
    """Coordinator-side bookkeeping for one program."""

    __slots__ = (
        "qid", "conn", "rid", "ps", "reports", "participants",
        "processed_total", "involved", "rounds_issued", "cache_key",
        "last_activity", "done",
    )

    def __init__(self, qid: int, conn, rid: int, ps: ProgramStart):
        self.qid = qid
        self.conn = conn
        self.rid = rid
        self.ps = ps
        self.reports: Dict[int, Dict[int, dict]] = {}
        self.participants: Dict[int, set] = {}
        self.processed_total = 0
        self.involved: set = set()
        self.rounds_issued = 0
        self.cache_key = None
        self.last_activity = time.monotonic()
        self.done = False


class _ResidentEngine:
    """The shard worker's event loop with shard-resident programs.

    Extends the request/reply protocol of the legacy blocking loop with
    worker↔worker traffic: the client submits one ``program_start`` to
    the start vertex's owner (the *coordinator*), each worker executes
    its slice of every scatter-gather round against its local snapshot,
    next frontiers travel peer-to-peer as :class:`FrontierForward`
    frames (one per (src, dst, round) — O(shards) wire messages per
    round), and the coordinator detects round quiescence, aggregates
    the per-worker fragments, and replies with only the result.
    """

    FINISHED_MEMORY = 4096

    def __init__(
        self,
        worker: _ShardWorker,
        client_sock,
        index: int,
        peer_listener=None,
        peer_paths: Optional[Dict[int, str]] = None,
        placement: Optional[Dict[str, int]] = None,
        enable_program_cache: bool = False,
        program_cache_capacity: int = 4096,
    ):
        self.worker = worker
        self.client = client_sock
        self.index = index
        self.listener = peer_listener
        self.peer_paths = dict(peer_paths or {})
        self.placement: Dict[str, int] = dict(placement or {})
        self.prog_stats = ProgramStats()
        self.resident = ResidentStats()
        self.registry = MetricsRegistry()
        self.transport = ProcessTransport(registry=self.registry)
        self.tracker = ChangeTracker()
        self.cache = (
            ProgramCache(self.tracker, program_cache_capacity)
            if enable_program_cache else None
        )
        self.queries: Dict[int, _ResidentQuery] = {}
        self.coordinated: Dict[int, _Coordination] = {}
        self.finished: "OrderedDict[int, bool]" = OrderedDict()
        self.pending: deque = deque()
        self.buffers: Dict[Any, wire.FrameBuffer] = {}
        self.sel = selectors.DefaultSelector()
        self.running = True
        # Change counters feed the shard-side program cache (section
        # 4.6): every applied transaction bumps the vertices it touched.
        previous = worker.shard.on_apply

        def _on_apply(shard_index, qtx, _previous=previous):
            if _previous is not None:
                _previous(shard_index, qtx)
            self.tracker.bump_all(touched_vertices(qtx.operations))

        worker.shard.on_apply = _on_apply

    # -- event loop -----------------------------------------------------

    def run(self) -> None:
        self.client.setblocking(True)
        self.sel.register(self.client, selectors.EVENT_READ)
        self.buffers[self.client] = wire.FrameBuffer()
        if self.listener is not None:
            self.listener.setblocking(True)
            self.sel.register(self.listener, selectors.EVENT_READ)
        while self.running:
            while self.pending and self.running:
                conn, envelope = self.pending.popleft()
                self._dispatch(conn, envelope)
            if not self.running:
                break
            events = self.sel.select(timeout=1.0)
            if not events:
                self._check_stalled()
                continue
            for key, _mask in events:
                conn = key.fileobj
                if conn is self.listener:
                    peer, _ = self.listener.accept()
                    peer.setblocking(True)
                    self.sel.register(peer, selectors.EVENT_READ)
                    self.buffers[peer] = wire.FrameBuffer()
                    continue
                self._pump(conn)

    def _pump(self, conn) -> None:
        try:
            chunk = conn.recv(65536)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            chunk = b""
        if not chunk:
            if conn is self.client:
                self.running = False
                return
            try:
                self.sel.unregister(conn)
            except (KeyError, ValueError):
                pass
            self.buffers.pop(conn, None)
            try:
                conn.close()
            except OSError:
                pass
            return
        buffer = self.buffers.get(conn)
        if buffer is None:
            return
        for frame in buffer.feed(chunk):
            self.pending.append((conn, wire.decode(frame)))

    def _coop_wait(self, sock, writable: bool, deadline: float) -> None:
        """Wait for ``sock`` while pumping inbound connections (buffer
        only — nothing dispatches until the main loop resumes)."""
        while True:
            timeout = min(1.0, deadline - time.monotonic())
            if timeout <= 0:
                raise socket.timeout("peer channel stalled")
            reads = list(self.buffers)
            if not writable:
                reads.append(sock)
            r, w, _ = select.select(
                reads, [sock] if writable else [], [], timeout
            )
            for conn in r:
                if conn is sock and not writable:
                    return
                self._pump(conn)
            if writable and w:
                return

    def _check_stalled(self) -> None:
        """Probe reporters a coordinated query is still waiting on; a
        dead peer turns a silent stall into a prompt client error."""
        now = time.monotonic()
        for coord in list(self.coordinated.values()):
            if coord.done or now - coord.last_activity < 5.0:
                continue
            awaited = coord.participants.get(coord.rounds_issued - 1, set())
            reported = set(coord.reports.get(coord.rounds_issued - 1, {}))
            for dst in sorted(awaited - reported - {self.index}):
                try:
                    self._peer_request(dst, "ping", None)
                except (TransportError, OSError, socket.timeout):
                    self._finish_error(
                        coord, f"worker shard{dst} died mid-program"
                    )
                    break
            coord.last_activity = now

    # -- dispatch -------------------------------------------------------

    def _dispatch(self, conn, envelope: dict) -> None:
        kind = envelope.get("k")
        if kind == "b":
            for msg_kind, payload in envelope["m"]:
                self._handle_send(msg_kind, payload)
            return
        if kind != "r":
            return
        rid = envelope["id"]
        req = envelope["kind"]
        if req == "program_start":
            try:
                self._handle_program_start(conn, rid, envelope.get("p"))
            except Exception as exc:  # noqa: BLE001 - report, keep serving
                self._reply(conn, rid, error=repr(exc))
            return
        try:
            result = self._handle_request(req, envelope.get("p"))
        except Exception as exc:  # noqa: BLE001 - report, keep serving
            self._reply(conn, rid, error=repr(exc))
        else:
            self._reply(conn, rid, result=result)
        if req == "shutdown":
            self.running = False

    def _reply(self, conn, rid: int, result=None, error=None) -> None:
        if error is not None:
            reply = {"k": "e", "id": rid, "e": error}
        else:
            reply = {"k": "p", "id": rid, "p": result}
        if conn is self.client:
            # Trace events only ride client replies: the peer transport
            # has no client handler, so events on peer frames would be
            # silently dropped (peers return theirs inside payloads).
            reply["ev"] = self.worker.tracer.drain()
        try:
            wire.write_frame(conn, wire.encode(reply))
        except OSError:
            if conn is self.client:
                self.running = False

    def _handle_send(self, kind: str, payload) -> None:
        if kind == "placement":
            self.placement.update(payload)
        elif kind == "forward":
            self._on_forward(payload)
        elif kind == "round_go":
            self._on_round_go(payload)
        elif kind == "round_report":
            self._on_round_report(payload)
        else:
            self.worker.handle_send(kind, payload)

    def _handle_request(self, kind: str, payload):
        if kind == "counters":
            self.resident.counter_checks += 1
            return {"unchanged": self.tracker.unchanged(payload["observed"])}
        if kind == "collect_result":
            return self._fragment(
                payload["q"], payload["halt_round"], payload["halt_key"]
            )
        if kind == "stats":
            return self._extended_stats()
        if kind == "advance_epoch":
            self._clear_resident_state()
            return self.worker.handle_request(kind, payload)
        return self.worker.handle_request(kind, payload)

    def _clear_resident_state(self) -> None:
        """Epoch barrier: drop in-flight programs and cached evidence —
        counters recorded against the dead epoch must not validate."""
        self.queries.clear()
        self.coordinated.clear()
        self.finished.clear()
        self.tracker.reset()
        if self.cache is not None:
            self.cache.clear()

    def _extended_stats(self) -> dict:
        out = self.worker._stats()
        out["program"] = {
            key: value
            for key, value in vars(self.prog_stats).items()
            if isinstance(value, (int, float))
        }
        out["resident"] = {
            key: value
            for key, value in vars(self.resident).items()
            if isinstance(value, (int, float))
        }
        out["peer_transport"] = {
            key: value
            for key, value in vars(self.transport.stats).items()
            if isinstance(value, (int, float))
        }
        cache = self.cache
        out["prog_cache"] = (
            (cache.hits, cache.misses, cache.invalidations, len(cache))
            if cache is not None else (0, 0, 0, 0)
        )
        return out

    # -- peer channels --------------------------------------------------

    def _peer_channel(self, dst: int) -> str:
        name = f"peer{dst}"
        channel = self.transport._channels.get(name)
        if channel is None or channel.dead:
            if channel is not None:
                self.transport.remove_channel(name)
                self.resident.peer_reconnects += 1
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.connect(self.peer_paths[dst])
            self.transport.add_channel(name, _CoopSocket(sock, self))
        return name

    def _peer_send(self, dst: int, kind: str, payload) -> None:
        # Flush inside the retry loop: buffering cannot fail, so a stale
        # channel to a SIGKILLed-and-replaced peer only surfaces at the
        # write.  Flushing here turns that into a reconnect-and-resend
        # instead of a silently dropped frame (the coordinator would
        # wait forever on the lost round report).
        src = self.worker.shard.name
        for attempt in (0, 1):
            name = self._peer_channel(dst)
            try:
                self.transport.send(src, name, kind, payload)
                self.transport.flush(name)
                return
            except TransportError:
                self.transport.remove_channel(name)
                self.resident.peer_reconnects += 1
                if attempt:
                    raise

    def _peer_request(self, dst: int, kind: str, payload):
        src = self.worker.shard.name
        for attempt in (0, 1):
            name = self._peer_channel(dst)
            try:
                return self.transport.request(src, name, kind, payload)
            except TransportError:
                self.transport.remove_channel(name)
                self.resident.peer_reconnects += 1
                if attempt:
                    raise

    def _local(self, kind: str, payload) -> None:
        """Self-delivery: enqueue for the main loop instead of calling
        inline, so deep traversals never recurse through rounds."""
        self.pending.append((None, {"k": "b", "m": [(kind, payload)]}))

    def _deliver(self, dst: int, kind: str, payload) -> None:
        if dst == self.index:
            self._local(kind, payload)
        else:
            self._peer_send(dst, kind, payload)

    # -- participant side -----------------------------------------------

    def _ensure_query(self, qid: int) -> Optional[_ResidentQuery]:
        if qid in self.finished:
            self.resident.stale_drops += 1
            return None
        query = self.queries.get(qid)
        if query is None:
            query = _ResidentQuery(qid)
            self.queries[qid] = query
        return query

    def _mark_finished(self, qid: int) -> None:
        self.finished[qid] = True
        while len(self.finished) > self.FINISHED_MEMORY:
            self.finished.popitem(last=False)

    def _on_forward(self, forward: FrontierForward) -> None:
        query = self._ensure_query(forward.query_id)
        if query is None:
            return
        self.resident.forwards_received += 1
        self.resident.hops_received += len(forward.hops)
        query.buf.setdefault(forward.round, []).extend(forward.hops)
        query.received[forward.round] = (
            query.received.get(forward.round, 0) + len(forward.hops)
        )
        self._maybe_execute(query, forward.round)

    def _on_round_go(self, payload: dict) -> None:
        query = self._ensure_query(payload["q"])
        if query is None:
            return
        if query.program is None:
            cls = PROGRAM_REGISTRY.get(payload["program"])
            if cls is None:
                self._send_report(payload["coordinator"], {
                    "q": payload["q"], "round": payload["round"],
                    "worker": self.index, "sent": {}, "halt": None,
                    "processed": 0,
                    "error": f"unknown program {payload['program']!r}",
                })
                return
            query.program = cls()
            query.ctx = ProgramContext(payload["q"], payload["ts"])
            query.resolver = ShardSnapshotResolver(
                payload["ts"], lambda handle: 0, [self.worker.shard],
                stats=self.prog_stats,
            )
            query.trace_id = payload.get("trace_id")
            query.coordinator = payload["coordinator"]
            self.resident.programs_participated += 1
        query.go[payload["round"]] = payload
        self._maybe_execute(query, payload["round"])

    def _maybe_execute(self, query: _ResidentQuery, round_no: int) -> None:
        if round_no in query.executed:
            return
        go = query.go.get(round_no)
        if go is None or query.program is None:
            return
        if query.received.get(round_no, 0) < go["expect"]:
            return
        self._execute_round(query, round_no)

    def _execute_round(self, query: _ResidentQuery, round_no: int) -> None:
        query.executed.add(round_no)
        # Same-length order keys make the per-worker sort reproduce the
        # batched executor's append order within the round slice.
        frontier = sorted(query.buf.pop(round_no, []), key=lambda e: e[0])
        program, ctx = query.program, query.ctx
        if program.dedup_hops:
            frontier = dedup_round(
                frontier, self.prog_stats,
                hop_of=lambda entry: (entry[1], entry[2]),
            )
        self.resident.rounds_executed += 1
        self.prog_stats.batch_rounds += 1
        if query.trace_id is not None:
            self.worker.tracer.emit(
                query.trace_id, "program.round",
                node=self.worker.shard.name, query_id=query.qid,
                round=round_no, frontier=len(frontier), shard=self.index,
            )
        next_by_dst: Dict[int, list] = {}
        processed = 0
        halt_key = None
        error = None
        try:
            views = query.resolver.resolve_many(
                [handle for _key, handle, _params in frontier]
            )
        except Exception as exc:  # noqa: BLE001 - reported upstream
            views = {}
            frontier = []
            error = str(exc)
        for key, handle, params in frontier:
            processed += 1
            self.resident.entries_processed += 1
            node = views.get(handle)
            result_base = len(ctx.results)
            try:
                hops = run_entry(program, handle, params, node, ctx)
            except Exception as exc:  # noqa: BLE001 - reported upstream
                error = str(exc)
                break
            for seq in range(len(ctx.results) - result_base):
                query.tagged.append(
                    (round_no, key, seq, ctx.results[result_base + seq])
                )
            query.entries.append(
                (round_no, key, handle, node is not None, len(hops))
            )
            if node is None:
                # Mirrors the batched executor exactly: a missing vertex
                # skips the mid-round halt check (``continue``).
                continue
            for i, (next_handle, next_params) in enumerate(hops):
                dst = self.placement.get(next_handle, self.index)
                next_by_dst.setdefault(dst, []).append(
                    (key + (i,), next_handle, next_params)
                )
            if ctx.halted:
                halt_key = key
                break
        sent: Dict[int, int] = {}
        if error is None and halt_key is None:
            try:
                for dst, hops_list in next_by_dst.items():
                    sent[dst] = len(hops_list)
                    if dst == self.index:
                        query.buf.setdefault(round_no + 1, []).extend(
                            hops_list
                        )
                    else:
                        self._peer_send(dst, "forward", FrontierForward(
                            query.qid, round_no + 1, tuple(hops_list)
                        ))
                        self.resident.forwards_sent += 1
                        self.resident.hops_forwarded += len(hops_list)
            except (TransportError, OSError, socket.timeout) as exc:
                sent = {}
                error = f"frontier forward failed: {exc}"
        try:
            self._send_report(query.coordinator, {
                "q": query.qid, "round": round_no, "worker": self.index,
                "sent": sent, "halt": halt_key, "processed": processed,
                "error": error,
            })
            self.transport.flush()
        except (TransportError, OSError, socket.timeout):
            # Coordinator unreachable: nothing to report to.  The client
            # will surface the failure through its own channel.
            pass

    def _send_report(self, coordinator: int, report: dict) -> None:
        self._deliver(coordinator, "round_report", report)
        if coordinator != self.index:
            self.transport.flush()

    def _fragment(
        self, qid: int, halt_round: Optional[int], halt_key
    ) -> dict:
        """This worker's filtered share of a finished program.

        Halt filtering is by (round, key): every entry of rounds before
        the halt round counts, plus halt-round entries at or before the
        globally-minimal halt key — order keys are only comparable
        within one round (they share a length there), so a bare key
        comparison across rounds would be wrong.
        """
        query = self.queries.pop(qid, None)
        self._mark_finished(qid)
        empty = {
            "results": [], "read": [], "states": {}, "visited": 0,
            "hops": 0, "counters": {}, "events": [],
        }
        if query is None or query.ctx is None:
            return empty

        def keep(round_no: int, key) -> bool:
            if halt_round is None:
                return True
            if round_no < halt_round:
                return True
            return round_no == halt_round and key <= halt_key

        read: set = set()
        visited = 0
        hops_total = 0
        for round_no, key, handle, visible, n_hops in query.entries:
            if not keep(round_no, key):
                continue
            read.add(handle)
            if visible:
                visited += 1
            hops_total += n_hops
        return {
            "results": [t for t in query.tagged if keep(t[0], t[1])],
            "read": sorted(read),
            "states": {
                h: s for h, s in query.ctx.states.items() if h in read
            },
            "visited": visited,
            "hops": hops_total,
            "counters": self.tracker.snapshot(read),
            "events": self.worker.tracer.drain(),
        }

    # -- coordinator side -----------------------------------------------

    def _handle_program_start(
        self, conn, rid: int, ps: ProgramStart
    ) -> None:
        self.resident.programs_coordinated += 1
        cache_key = None
        if (
            self.cache is not None
            and ps.cache_tail is not None
            and ps.frontier
        ):
            cache_key = ProgramCache.key(
                ps.program, ps.frontier[0][1], ps.cache_tail
            )
            cached = self.cache.get(cache_key)
            if cached is not None:
                payload, remote_fragments = cached
                if self._remote_fragments_valid(cache_key, remote_fragments):
                    self.resident.cache_hits += 1
                    hit = dict(payload)
                    hit["cache_hit"] = True
                    self._reply(conn, rid, result=hit)
                    return
        coord = _Coordination(ps.query_id, conn, rid, ps)
        coord.cache_key = cache_key
        self.coordinated[ps.query_id] = coord
        if not ps.frontier:
            self._finish(coord, None, None)
            return
        by_dst: Dict[int, list] = {}
        for key, handle, params in ps.frontier:
            dst = self.placement.get(handle, self.index)
            by_dst.setdefault(dst, []).append((key, handle, params))
        query = self._ensure_query(ps.query_id)
        for dst, hops_list in by_dst.items():
            if dst == self.index:
                query.buf.setdefault(0, []).extend(hops_list)
            else:
                self._peer_send(dst, "forward", FrontierForward(
                    ps.query_id, 0, tuple(hops_list)
                ))
                self.resident.forwards_sent += 1
                self.resident.hops_forwarded += len(hops_list)
        coord.involved.update(by_dst)
        self._issue_round(coord, 0, {
            dst: (0 if dst == self.index else len(hops_list))
            for dst, hops_list in by_dst.items()
        })

    def _remote_fragments_valid(
        self, cache_key, remote_fragments: Dict[int, dict]
    ) -> bool:
        """Validate a cached result's remote read-set fragments against
        the owning workers' live change counters."""
        for dst, observed in remote_fragments.items():
            if not observed:
                continue
            self.resident.counter_checks += 1
            try:
                reply = self._peer_request(
                    dst, "counters", {"observed": observed}
                )
            except (TransportError, OSError, socket.timeout):
                reply = None
            if reply is None or not reply.get("unchanged"):
                self.cache.invalidate(cache_key)
                self.resident.cache_invalidations += 1
                return False
        return True

    def _issue_round(
        self, coord: _Coordination, round_no: int,
        expect: Dict[int, int],
    ) -> None:
        """Tell every round participant how many peer hops to await;
        participants with only self-retained work get expect 0."""
        coord.participants[round_no] = set(expect)
        coord.rounds_issued = round_no + 1
        coord.last_activity = time.monotonic()
        for dst in sorted(expect):
            self._deliver(dst, "round_go", {
                "q": coord.qid, "round": round_no, "expect": expect[dst],
                "program": coord.ps.program, "ts": coord.ps.ts,
                "trace_id": coord.ps.trace_id, "coordinator": self.index,
            })
        self.transport.flush()

    def _on_round_report(self, report: dict) -> None:
        coord = self.coordinated.get(report["q"])
        if coord is None or coord.done:
            return
        self.resident.round_reports += 1
        coord.last_activity = time.monotonic()
        round_no = report["round"]
        coord.reports.setdefault(round_no, {})[report["worker"]] = report
        participants = coord.participants.get(round_no)
        reports = coord.reports.get(round_no, {})
        if participants is None or not participants <= set(reports):
            return
        # Round quiescence: every participant reported.
        for peer_report in reports.values():
            coord.involved.update(
                dst for dst, n in peer_report["sent"].items() if n > 0
            )
        errors = [r["error"] for r in reports.values() if r["error"]]
        if errors:
            self._finish_error(coord, errors[0])
            return
        coord.processed_total += sum(
            r["processed"] for r in reports.values()
        )
        halts = [
            r["halt"] for r in reports.values() if r["halt"] is not None
        ]
        if halts:
            self._finish(coord, round_no, min(halts))
            return
        totals: Dict[int, int] = {}
        for peer_report in reports.values():
            for dst, n in peer_report["sent"].items():
                if n > 0:
                    totals[dst] = totals.get(dst, 0) + n
        more = bool(totals)
        max_visits = coord.ps.max_visits
        if coord.processed_total > max_visits or (
            coord.processed_total >= max_visits and more
        ):
            self._finish_error(
                coord, f"visit budget exhausted ({max_visits})"
            )
            return
        if not more:
            self._finish(coord, None, None)
            return
        self._issue_round(coord, round_no + 1, {
            dst: sum(
                r["sent"].get(dst, 0)
                for worker_index, r in reports.items()
                if worker_index != dst
            )
            for dst in totals
        })

    def _collect_fragments(
        self, coord: _Coordination, halt_round, halt_key
    ) -> List[Tuple[int, dict]]:
        fragments = [
            (self.index, self._fragment(coord.qid, halt_round, halt_key))
        ]
        request = {
            "q": coord.qid, "halt_round": halt_round, "halt_key": halt_key,
        }
        for dst in sorted(coord.involved - {self.index}):
            fragments.append(
                (dst, self._peer_request(dst, "collect_result", request))
            )
        return fragments

    def _finish(
        self, coord: _Coordination, halt_round, halt_key
    ) -> None:
        coord.done = True
        self.coordinated.pop(coord.qid, None)
        try:
            fragments = self._collect_fragments(coord, halt_round, halt_key)
        except (TransportError, OSError, socket.timeout) as exc:
            self._mark_finished(coord.qid)
            self._reply(
                coord.conn, coord.rid,
                result={"error": f"worker died during gather: {exc}"},
            )
            return
        tagged: List[tuple] = []
        read: set = set()
        states: Dict[str, Any] = {}
        visited = 0
        hops_total = 0
        counters: Dict[int, dict] = {}
        for worker_index, fragment in fragments:
            tagged.extend(tuple(t) for t in fragment["results"])
            read.update(fragment["read"])
            states.update(fragment["states"])
            visited += fragment["visited"]
            hops_total += fragment["hops"]
            counters[worker_index] = fragment["counters"]
            for event in fragment.get("events", ()):
                self.worker.tracer.events.append(tuple(event))
        tagged.sort(key=lambda t: (t[0], t[1], t[2]))
        payload = {
            "query_id": coord.qid,
            "ts": coord.ps.ts,
            "results": [t[3] for t in tagged],
            "states": states,
            "vertices_visited": visited,
            "hops": hops_total,
            "halted": halt_key is not None,
            "read_set": sorted(read),
            "rounds": coord.rounds_issued,
        }
        self.prog_stats.executions += 1
        if coord.cache_key is not None:
            remote_fragments = {
                w: c for w, c in counters.items() if w != self.index
            }
            self.cache.put(
                coord.cache_key, (payload, remote_fragments),
                counters.get(self.index, {}),
            )
        self._reply(coord.conn, coord.rid, result=payload)

    def _finish_error(self, coord: _Coordination, message: str) -> None:
        coord.done = True
        self.coordinated.pop(coord.qid, None)
        try:
            self._collect_fragments(coord, -1, None)  # cleanup only
        except (TransportError, OSError, socket.timeout):
            pass
        self._mark_finished(coord.qid)
        self._reply(coord.conn, coord.rid, result={"error": message})


def shard_worker_main(
    sock,
    index: int,
    num_gatekeepers: int,
    use_ordering_cache: bool = True,
    oracle_path: Optional[str] = None,
    epoch: int = 0,
    image: Optional[tuple] = None,
    recovery_ts: Optional[VectorTimestamp] = None,
    store_path: Optional[str] = None,
    peer_listener=None,
    peer_paths: Optional[Dict[int, str]] = None,
    placement: Optional[Dict[str, int]] = None,
    enable_program_cache: bool = False,
    program_cache_capacity: int = 4096,
) -> None:
    """Entry point of one shard worker process."""
    oracle = (
        OracleProxy(oracle_path) if oracle_path else TimelineOracle()
    )
    worker = _ShardWorker(
        index, num_gatekeepers, oracle, use_ordering_cache,
        epoch=epoch, image=image, recovery_ts=recovery_ts,
        store_path=store_path,
    )
    if placement is None:
        placement = worker.recovered_placement
    engine = _ResidentEngine(
        worker, sock, index,
        peer_listener=peer_listener, peer_paths=peer_paths,
        placement=placement, enable_program_cache=enable_program_cache,
        program_cache_capacity=program_cache_capacity,
    )
    try:
        engine.run()
    finally:
        try:
            engine.transport.close()
        except Exception:  # noqa: BLE001 - shutdown best-effort
            pass
        if peer_listener is not None:
            try:
                peer_listener.close()
            except OSError:
                pass
        try:
            sock.close()
        except OSError:
            pass
        if isinstance(oracle, OracleProxy):
            oracle.close()


# -- the oracle worker ---------------------------------------------------


def oracle_worker_main(listen_sock) -> None:
    """Entry point of the timeline-oracle process.

    A selector loop over one UNIX listening socket: every shard worker
    and the client hold their own connection.  Requests are tiny and
    the oracle is single-threaded by design — it is the serialization
    point whose request count Fig 14 measures.
    """
    oracle = TimelineOracle()
    sel = selectors.DefaultSelector()
    listen_sock.setblocking(True)
    sel.register(listen_sock, selectors.EVENT_READ, None)
    running = True

    def handle(payload_kind: str, payload: Any) -> Any:
        nonlocal running
        if payload_kind == "order":
            a, b, prefer = payload
            return oracle.order(a, b, prefer)
        if payload_kind == "query":
            return oracle.query_order(*payload)
        if payload_kind == "established":
            return oracle.established_order(*payload)
        if payload_kind == "create":
            oracle.create_event(payload)
            return None
        if payload_kind == "collect":
            return oracle.collect_below(payload)
        if payload_kind == "stats":
            fields = {
                key: value
                for key, value in vars(oracle.stats).items()
                if isinstance(value, (int, float))
            }
            fields["messages"] = oracle.stats.messages
            return {
                "stats": fields,
                "num_events": oracle.num_events,
                "reach_cache_size": oracle.reach_cache_size,
            }
        if payload_kind == "shutdown":
            running = False
            return True
        raise WeaverError(f"unknown oracle request {payload_kind!r}")

    buffers: Dict[Any, wire.FrameBuffer] = {}
    while running:
        for key, _mask in sel.select(timeout=1.0):
            conn = key.fileobj
            if conn is listen_sock:
                client, _ = listen_sock.accept()
                sel.register(client, selectors.EVENT_READ, None)
                buffers[client] = wire.FrameBuffer()
                continue
            try:
                chunk = conn.recv(65536)
            except OSError:
                chunk = b""
            if not chunk:
                sel.unregister(conn)
                buffers.pop(conn, None)
                conn.close()
                continue
            for frame in buffers[conn].feed(chunk):
                envelope = wire.decode(frame)
                rid = envelope.get("id")
                try:
                    result = handle(envelope["kind"], envelope.get("p"))
                    reply = {"k": "p", "id": rid, "p": result}
                except Exception as exc:
                    reply = {"k": "e", "id": rid, "e": repr(exc)}
                try:
                    wire.write_frame(conn, wire.encode(reply))
                except OSError:
                    pass
    for conn in list(buffers):
        conn.close()
    listen_sock.close()
