"""The versioned binary wire codec for cross-process messages.

Everything that crosses a process boundary in the real deployment —
queued transactions, program requests, timestamps, operation payloads,
trace events — is encoded here as a length-prefixed, tagged binary frame.
No pickle: the codec supports exactly the value shapes Weaver's message
contract uses (scalars, containers, ``SimpleNamespace`` params,
``VectorTimestamp``, ``Ordering``, and the registered message/operation
dataclasses), so a malformed or unknown payload fails loudly instead of
executing arbitrary bytes.

The codec is **versioned and schema-checked**: every registered dataclass
is encoded as its class name plus its field values *in declared field
order*.  The expected field tuple for each class is pinned in
``WIRE_SCHEMA`` below; at import time :func:`verify_schema` compares the
pin against the live ``dataclasses.fields``.  Adding, removing, or
reordering a field without bumping :data:`WIRE_VERSION` (and updating the
pin plus the golden digest in ``tests/test_wire.py``) is an import-time
error — old frames would otherwise decode into silently shifted fields.

Frame format::

    u32 length | u8 version | tagged value

Tagged values (1-byte tag, big-endian fixed-width scalars)::

    N none | T true | F false | i int64 | n bigint(decimal str)
    f float64 | s str | b bytes | l list | t tuple | e set
    z frozenset | d dict | p SimpleNamespace | V VectorTimestamp
    O Ordering | M registered dataclass
"""

from __future__ import annotations

import dataclasses
import hashlib
import struct
from types import SimpleNamespace
from typing import Any, Dict, List, Tuple, Type

from ..core.vclock import Ordering, VectorTimestamp
from ..db import operations as ops
from ..errors import WeaverError
from . import messages

#: Bump whenever a registered class's field tuple changes, whenever a
#: class is added or removed, or whenever a tag's encoding changes.
WIRE_VERSION = 2

_U32 = struct.Struct(">I")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")
_I64_MIN = -(2**63)
_I64_MAX = 2**63 - 1

#: The pinned wire schema: class name -> field names in wire order.
#: This is the contract with already-encoded frames; ``verify_schema``
#: fails the import when the live dataclasses drift from it.
WIRE_SCHEMA: Dict[str, Tuple[str, ...]] = {
    # cluster/messages.py — every cross-server payload type.
    "QueuedTransaction": ("ts", "operations", "seqno", "tiebreak",
                          "trace_id"),
    "AnnounceMessage": ("src", "vector"),
    "ProgramRequest": ("ts", "query_id", "vertices", "trace_id"),
    "ProgramResponse": ("query_id", "next_hops", "emitted"),
    "ProgramStart": ("ts", "query_id", "program", "frontier", "trace_id",
                     "cache_tail", "max_visits"),
    "FrontierForward": ("query_id", "round", "hops"),
    "Heartbeat": ("server", "epoch", "sent_at"),
    # db/operations.py — the payloads of a QueuedTransaction.
    "CreateVertex": ("handle",),
    "DeleteVertex": ("handle",),
    "CreateEdge": ("handle", "src", "dst"),
    "DeleteEdge": ("src", "handle"),
    "SetVertexProperty": ("handle", "key", "value"),
    "DeleteVertexProperty": ("handle", "key"),
    "SetEdgeProperty": ("src", "handle", "key", "value"),
    "DeleteEdgeProperty": ("src", "handle", "key"),
}

#: class name -> class, for decoding.
_CLASSES: Dict[str, Type] = {
    cls.__name__: cls
    for cls in (
        messages.QueuedTransaction,
        messages.AnnounceMessage,
        messages.ProgramRequest,
        messages.ProgramResponse,
        messages.ProgramStart,
        messages.FrontierForward,
        messages.Heartbeat,
        ops.CreateVertex,
        ops.DeleteVertex,
        ops.CreateEdge,
        ops.DeleteEdge,
        ops.SetVertexProperty,
        ops.DeleteVertexProperty,
        ops.SetEdgeProperty,
        ops.DeleteEdgeProperty,
    )
}

_ORDERINGS = (
    Ordering.BEFORE, Ordering.AFTER, Ordering.CONCURRENT, Ordering.EQUAL
)
_ORDERING_INDEX = {o: i for i, o in enumerate(_ORDERINGS)}


class WireError(WeaverError):
    """Encoding, decoding, or schema failure on the wire."""


def verify_schema() -> None:
    """Compare the pinned schema against the live dataclasses.

    Raises :class:`WireError` when a registered class gained, lost, or
    reordered fields without a codec-version bump — the failure mode
    where old frames decode into the wrong fields.
    """
    for name, pinned in WIRE_SCHEMA.items():
        cls = _CLASSES.get(name)
        if cls is None:
            raise WireError(f"wire schema pins unknown class {name!r}")
        live = tuple(f.name for f in dataclasses.fields(cls))
        if live != pinned:
            raise WireError(
                f"wire schema drift on {name}: fields {live!r} != pinned "
                f"{pinned!r} — bump WIRE_VERSION and update WIRE_SCHEMA "
                "plus the golden digest in tests/test_wire.py"
            )
    extra = set(_CLASSES) - set(WIRE_SCHEMA)
    if extra:
        raise WireError(f"classes without a schema pin: {sorted(extra)}")


def schema_digest() -> str:
    """A stable digest of (version, class, field...) — the golden value
    tests pin so schema drift fails loudly."""
    h = hashlib.sha256()
    h.update(f"wire-version={WIRE_VERSION}\n".encode())
    for name in sorted(WIRE_SCHEMA):
        fields = ",".join(WIRE_SCHEMA[name])
        h.update(f"{name}({fields})\n".encode())
    return h.hexdigest()


# -- encoding ------------------------------------------------------------


def _encode_value(value: Any, out: List[bytes]) -> None:
    if value is None:
        out.append(b"N")
    elif value is True:
        out.append(b"T")
    elif value is False:
        out.append(b"F")
    elif type(value) is int:
        if _I64_MIN <= value <= _I64_MAX:
            out.append(b"i")
            out.append(_I64.pack(value))
        else:
            raw = str(value).encode()
            out.append(b"n")
            out.append(_U32.pack(len(raw)))
            out.append(raw)
    elif type(value) is float:
        out.append(b"f")
        out.append(_F64.pack(value))
    elif type(value) is str:
        raw = value.encode()
        out.append(b"s")
        out.append(_U32.pack(len(raw)))
        out.append(raw)
    elif type(value) is bytes:
        out.append(b"b")
        out.append(_U32.pack(len(value)))
        out.append(value)
    elif type(value) is VectorTimestamp:
        out.append(b"V")
        out.append(_I64.pack(value.epoch))
        out.append(_U32.pack(value.issuer))
        out.append(_U32.pack(len(value.clocks)))
        for clock in value.clocks:
            out.append(_I64.pack(clock))
    elif type(value) is Ordering or isinstance(value, Ordering):
        out.append(b"O")
        out.append(bytes([_ORDERING_INDEX[value]]))
    elif type(value) in (list, tuple, set, frozenset):
        tag = {list: b"l", tuple: b"t", set: b"e", frozenset: b"z"}[
            type(value)
        ]
        items = value
        if tag in (b"e", b"z"):
            # Deterministic frames: unordered containers are serialized
            # in sorted-encoding order.
            items = sorted(items, key=_sort_key)
        out.append(tag)
        out.append(_U32.pack(len(value)))
        for item in items:
            _encode_value(item, out)
    elif type(value) is dict:
        out.append(b"d")
        out.append(_U32.pack(len(value)))
        for key, item in value.items():
            _encode_value(key, out)
            _encode_value(item, out)
    elif type(value) is SimpleNamespace:
        attrs = vars(value)
        out.append(b"p")
        out.append(_U32.pack(len(attrs)))
        for key in sorted(attrs):
            _encode_value(key, out)
            _encode_value(attrs[key], out)
    else:
        name = type(value).__name__
        pinned = WIRE_SCHEMA.get(name)
        if pinned is None or type(value) is not _CLASSES.get(name):
            raise WireError(
                f"cannot encode {type(value).__qualname__!r} on the wire"
            )
        raw = name.encode()
        out.append(b"M")
        out.append(bytes([len(raw)]))
        out.append(raw)
        for field in pinned:
            _encode_value(getattr(value, field), out)


def _sort_key(value: Any) -> bytes:
    out: List[bytes] = []
    _encode_value(value, out)
    return b"".join(out)


def encode(value: Any) -> bytes:
    """One versioned payload (no length prefix)."""
    out: List[bytes] = [bytes([WIRE_VERSION])]
    _encode_value(value, out)
    return b"".join(out)


# -- decoding ------------------------------------------------------------


def _decode_value(view: memoryview, pos: int) -> Tuple[Any, int]:
    tag = view[pos:pos + 1].tobytes()
    pos += 1
    if tag == b"N":
        return None, pos
    if tag == b"T":
        return True, pos
    if tag == b"F":
        return False, pos
    if tag == b"i":
        return _I64.unpack_from(view, pos)[0], pos + 8
    if tag == b"n":
        (length,) = _U32.unpack_from(view, pos)
        pos += 4
        return int(view[pos:pos + length].tobytes()), pos + length
    if tag == b"f":
        return _F64.unpack_from(view, pos)[0], pos + 8
    if tag in (b"s", b"b"):
        (length,) = _U32.unpack_from(view, pos)
        pos += 4
        raw = view[pos:pos + length].tobytes()
        return (raw.decode() if tag == b"s" else raw), pos + length
    if tag == b"V":
        (epoch,) = _I64.unpack_from(view, pos)
        pos += 8
        (issuer,) = _U32.unpack_from(view, pos)
        pos += 4
        (count,) = _U32.unpack_from(view, pos)
        pos += 4
        clocks = []
        for _ in range(count):
            clocks.append(_I64.unpack_from(view, pos)[0])
            pos += 8
        return VectorTimestamp(epoch, tuple(clocks), issuer), pos
    if tag == b"O":
        return _ORDERINGS[view[pos]], pos + 1
    if tag in (b"l", b"t", b"e", b"z"):
        (count,) = _U32.unpack_from(view, pos)
        pos += 4
        items = []
        for _ in range(count):
            item, pos = _decode_value(view, pos)
            items.append(item)
        build = {b"l": list, b"t": tuple, b"e": set, b"z": frozenset}[tag]
        return build(items), pos
    if tag == b"d":
        (count,) = _U32.unpack_from(view, pos)
        pos += 4
        mapping = {}
        for _ in range(count):
            key, pos = _decode_value(view, pos)
            value, pos = _decode_value(view, pos)
            mapping[key] = value
        return mapping, pos
    if tag == b"p":
        (count,) = _U32.unpack_from(view, pos)
        pos += 4
        attrs = {}
        for _ in range(count):
            key, pos = _decode_value(view, pos)
            value, pos = _decode_value(view, pos)
            attrs[key] = value
        return SimpleNamespace(**attrs), pos
    if tag == b"M":
        name_len = view[pos]
        pos += 1
        name = view[pos:pos + name_len].tobytes().decode()
        pos += name_len
        cls = _CLASSES.get(name)
        pinned = WIRE_SCHEMA.get(name)
        if cls is None or pinned is None:
            raise WireError(f"unknown wire class {name!r}")
        values = []
        for _ in pinned:
            value, pos = _decode_value(view, pos)
            values.append(value)
        return cls(*values), pos
    raise WireError(f"unknown wire tag {tag!r} at offset {pos - 1}")


def decode(data: bytes) -> Any:
    """Decode one payload produced by :func:`encode`."""
    if not data:
        raise WireError("empty wire payload")
    if data[0] != WIRE_VERSION:
        raise WireError(
            f"wire version mismatch: got {data[0]}, "
            f"expected {WIRE_VERSION}"
        )
    view = memoryview(data)
    value, pos = _decode_value(view, 1)
    if pos != len(data):
        raise WireError(
            f"trailing bytes on the wire: {len(data) - pos} after payload"
        )
    return value


# -- framing -------------------------------------------------------------


def write_frame(sock, payload: bytes) -> int:
    """Write one length-prefixed frame; returns bytes on the wire."""
    frame = _U32.pack(len(payload)) + payload
    sock.sendall(frame)
    return len(frame)


def _recv_exact(sock, length: int) -> bytes:
    chunks = []
    remaining = length
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise WireError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock) -> bytes:
    """Read one length-prefixed frame (blocking).  Raises
    :class:`WireError` when the peer closed the connection."""
    header = _recv_exact(sock, 4)
    (length,) = _U32.unpack(header)
    return _recv_exact(sock, length)


class FrameBuffer:
    """Incremental frame reassembly for non-blocking sockets.

    Feed raw received bytes in; complete frames come out.  Used by the
    oracle worker's selector loop, where one ``recv`` may carry part of
    a frame or several frames.
    """

    def __init__(self) -> None:
        self._data = bytearray()

    def feed(self, chunk: bytes) -> List[bytes]:
        self._data.extend(chunk)
        frames = []
        while len(self._data) >= 4:
            (length,) = _U32.unpack_from(self._data, 0)
            if len(self._data) < 4 + length:
                break
            frames.append(bytes(self._data[4:4 + length]))
            del self._data[:4 + length]
        return frames


# Fail at import when the live dataclasses drift from the pinned schema.
verify_schema()
