"""The pluggable message transport behind Weaver's server contract.

Three implementations of one interface:

* :class:`LocalTransport` — synchronous in-process delivery, the direct
  path unit tests exercise the contract against;
* :class:`SimTransport` — an adapter over the deterministic
  :class:`~repro.sim.network.Network` simulator: sends become scheduled
  FIFO deliveries with latency and fault injection, requests pay a
  round trip before their reply callback fires;
* :class:`ProcessTransport` — the real thing: length-prefixed
  :mod:`~repro.cluster.wire` frames over UNIX sockets to worker
  processes, with **in-flight batching** (one-way messages buffer per
  channel and flush as a single frame before the next request on that
  channel, preserving FIFO) and **request pipelining** (fan-outs write
  every request before reading any reply, so worker processes crunch
  concurrently).

The contract is intentionally small — ``register`` a delivery callback
per node name, ``send`` one-way, ``request`` round-trip, ``broadcast``
to many — because that is exactly what the Weaver deployments need:
gatekeeper→shard enqueues are sends, program resolution and readiness
barriers are requests, announces and NOPs are broadcasts.

Backpressure rules (process transport): one-way sends never block (they
buffer); a buffer flushes when its channel issues a request, when it
reaches ``max_batch`` messages, or on an explicit ``flush()``.  Requests
block the caller until the matching reply, bounding client-side
outstanding work to one pipelined fan-out.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import WeaverError
from . import wire

#: Delivery callback: handler(src, kind, payload) -> optional reply.
Handler = Callable[[str, str, Any], Any]


class TransportError(WeaverError):
    """A channel failed: broken pipe, dead worker, timeout, protocol."""

    def __init__(self, message: str, channel: Optional[str] = None):
        super().__init__(message)
        self.channel = channel


class TransportStats:
    """Counters for the wire layer, exported under ``transport.*``.

    ``requests_pipelined`` counts requests issued while at least one
    other request was already in flight — the overlap the fan-out path
    exists to create.  ``batched_messages`` counts one-way messages that
    rode a multi-message frame instead of paying their own syscall.
    """

    def __init__(self) -> None:
        self.messages_sent = 0       # logical one-way messages
        self.messages_received = 0   # logical inbound messages/replies
        self.bytes_sent = 0
        self.bytes_received = 0
        self.frames_sent = 0
        self.frames_received = 0
        self.requests = 0
        self.requests_pipelined = 0
        self.batches_sent = 0        # multi-message frames
        self.batched_messages = 0    # messages riding those frames
        self.serialize_seconds = 0.0
        self.deserialize_seconds = 0.0

    def reset(self) -> None:
        self.__init__()


class Transport:
    """The deployment-neutral message-passing contract."""

    def register(self, name: str, handler: Handler) -> None:
        """Install the delivery callback for node ``name``."""
        raise NotImplementedError

    def send(self, src: str, dst: str, kind: str, payload: Any) -> None:
        """One-way message; delivery order is FIFO per (src, dst)."""
        raise NotImplementedError

    def request(self, src: str, dst: str, kind: str, payload: Any,
                on_reply: Optional[Callable[[Any], None]] = None) -> Any:
        """Round trip.  Synchronous transports return the reply (and
        also invoke ``on_reply``); the simulated transport delivers the
        reply only through ``on_reply``, after two latency charges."""
        raise NotImplementedError

    def broadcast(self, src: str, dsts, kind: str, payload: Any) -> None:
        for dst in dsts:
            self.send(src, dst, kind, payload)

    def flush(self, dst: Optional[str] = None) -> None:
        """Push out any buffered one-way messages (no-op unless the
        transport batches)."""

    def close(self) -> None:
        """Release channels; further traffic raises."""


class LocalTransport(Transport):
    """Synchronous in-process delivery — the contract's reference
    implementation and the direct-mode test double."""

    def __init__(self) -> None:
        self._handlers: Dict[str, Handler] = {}
        self.stats = TransportStats()

    def register(self, name: str, handler: Handler) -> None:
        self._handlers[name] = handler

    def _deliver(self, src: str, dst: str, kind: str, payload: Any) -> Any:
        handler = self._handlers.get(dst)
        if handler is None:
            raise TransportError(f"no handler registered for {dst!r}", dst)
        self.stats.messages_received += 1
        return handler(src, kind, payload)

    def send(self, src: str, dst: str, kind: str, payload: Any) -> None:
        self.stats.messages_sent += 1
        self._deliver(src, dst, kind, payload)

    def request(self, src, dst, kind, payload, on_reply=None):
        self.stats.messages_sent += 1
        self.stats.requests += 1
        reply = self._deliver(src, dst, kind, payload)
        if on_reply is not None:
            on_reply(reply)
        return reply


class SimTransport(Transport):
    """The deterministic twin: the message contract over the simulated
    :class:`~repro.sim.network.Network`.

    Payloads stay Python objects (no serialization — determinism and
    fault injection are the simulator's job); ``kind`` maps straight to
    the network's per-kind counters and fault matching, so existing
    Fig 14 accounting and chaos plans apply unchanged.
    """

    def __init__(self, network) -> None:
        self.network = network
        self._handlers: Dict[str, Handler] = {}
        self.stats = TransportStats()

    def register(self, name: str, handler: Handler) -> None:
        self._handlers[name] = handler

    def _dispatch(self, dst: str, src: str, kind: str, payload: Any) -> Any:
        handler = self._handlers.get(dst)
        if handler is None:
            return None  # dead letter: destination never registered
        self.stats.messages_received += 1
        return handler(src, kind, payload)

    def send(self, src: str, dst: str, kind: str, payload: Any) -> None:
        self.stats.messages_sent += 1
        self.network.send(
            src, dst, self._dispatch, dst, src, kind, payload, kind=kind
        )

    def request(self, src, dst, kind, payload, on_reply=None):
        """Deliver after one latency; schedule the reply back after
        another.  Returns None — simulated requests are asynchronous."""
        self.stats.messages_sent += 1
        self.stats.requests += 1

        def deliver_and_reply(dst_, src_, kind_, payload_) -> None:
            reply = self._dispatch(dst_, src_, kind_, payload_)
            if on_reply is not None:
                self.network.send(
                    dst_, src_, on_reply, reply, kind=f"{kind_}-reply"
                )

        self.network.send(
            src, dst, deliver_and_reply, dst, src, kind, payload, kind=kind
        )
        return None


class _Channel:
    """Client end of one worker connection."""

    __slots__ = ("name", "sock", "buffer", "pending", "replies",
                 "next_id", "dead")

    def __init__(self, name: str, sock) -> None:
        self.name = name
        self.sock = sock
        self.buffer: List[Tuple[str, Any]] = []   # unsent one-way msgs
        self.pending: deque = deque()              # request ids in flight
        self.replies: Dict[int, dict] = {}
        self.next_id = 0
        self.dead = False


class ProcessTransport(Transport):
    """Length-prefixed wire frames to worker processes over sockets."""

    def __init__(self, registry=None, max_batch: int = 512,
                 timeout: float = 60.0):
        self.stats = TransportStats()
        self._channels: Dict[str, _Channel] = {}
        self._handlers: Dict[str, Handler] = {}
        self._registry = registry
        self._max_batch = max_batch
        self._timeout = timeout
        self._closed = False

    # -- wiring ---------------------------------------------------------

    def add_channel(self, name: str, sock) -> None:
        """Adopt the client end of a worker's socket."""
        sock.settimeout(self._timeout)
        self._channels[name] = _Channel(name, sock)
        self._gauge(name)

    def remove_channel(self, name: str) -> None:
        """Drop a channel (dead worker); buffered messages are discarded
        — their effects are already durable in the backing store, and
        recovery reloads from there."""
        channel = self._channels.pop(name, None)
        if channel is not None:
            try:
                channel.sock.close()
            except OSError:
                pass
        if self._registry is not None:
            self._registry.gauge(f"transport.queue_depth.{name}").set(0)

    def register(self, name: str, handler: Handler) -> None:
        """Delivery callback for worker-initiated traffic addressed to
        ``name`` (trace events riding reply frames)."""
        self._handlers[name] = handler

    def channels(self) -> List[str]:
        return sorted(self._channels)

    def _gauge(self, name: str) -> None:
        if self._registry is None:
            return
        channel = self._channels.get(name)
        depth = (
            0 if channel is None
            else len(channel.buffer) + len(channel.pending)
        )
        self._registry.gauge(f"transport.queue_depth.{name}").set(depth)

    def _channel(self, dst: str) -> _Channel:
        channel = self._channels.get(dst)
        if channel is None or channel.dead:
            raise TransportError(f"no live channel to {dst!r}", dst)
        return channel

    # -- framing --------------------------------------------------------

    def _write(self, channel: _Channel, envelope: dict) -> None:
        start = time.perf_counter()
        payload = wire.encode(envelope)
        self.stats.serialize_seconds += time.perf_counter() - start
        try:
            sent = wire.write_frame(channel.sock, payload)
        except OSError as exc:
            channel.dead = True
            raise TransportError(
                f"channel to {channel.name!r} broke: {exc}", channel.name
            ) from exc
        self.stats.frames_sent += 1
        self.stats.bytes_sent += sent

    def _read(self, channel: _Channel) -> dict:
        try:
            payload = wire.read_frame(channel.sock)
        except (OSError, wire.WireError) as exc:
            channel.dead = True
            raise TransportError(
                f"channel to {channel.name!r} broke: {exc}", channel.name
            ) from exc
        self.stats.frames_received += 1
        self.stats.bytes_received += len(payload) + 4
        start = time.perf_counter()
        envelope = wire.decode(payload)
        self.stats.deserialize_seconds += time.perf_counter() - start
        self.stats.messages_received += 1
        return envelope

    def _flush_channel(self, channel: _Channel) -> None:
        if not channel.buffer:
            return
        batch = channel.buffer
        channel.buffer = []
        if len(batch) > 1:
            self.stats.batches_sent += 1
            self.stats.batched_messages += len(batch)
        self._write(channel, {"k": "b", "m": batch})
        self._gauge(channel.name)

    # -- one-way sends (buffered; FIFO per channel) ---------------------

    def send(self, src: str, dst: str, kind: str, payload: Any) -> None:
        channel = self._channel(dst)
        channel.buffer.append((kind, payload))
        self.stats.messages_sent += 1
        if len(channel.buffer) >= self._max_batch:
            self._flush_channel(channel)
        else:
            self._gauge(dst)

    def flush(self, dst: Optional[str] = None) -> None:
        names = [dst] if dst is not None else list(self._channels)
        for name in names:
            channel = self._channels.get(name)
            if channel is not None and not channel.dead:
                self._flush_channel(channel)

    # -- requests (pipelined) -------------------------------------------

    def _outstanding(self) -> int:
        return sum(len(c.pending) for c in self._channels.values())

    def request_async(
        self, src: str, dst: str, kind: str, payload: Any
    ) -> Tuple[str, int]:
        """Issue a request without waiting; returns a token for
        :meth:`collect`.  Buffered one-way messages on the channel go
        first (FIFO with the request)."""
        channel = self._channel(dst)
        self._flush_channel(channel)
        if self._outstanding() > 0:
            self.stats.requests_pipelined += 1
        rid = channel.next_id
        channel.next_id += 1
        self.stats.requests += 1
        self.stats.messages_sent += 1
        self._write(channel, {"k": "r", "id": rid, "kind": kind,
                              "p": payload})
        channel.pending.append(rid)
        self._gauge(dst)
        return (dst, rid)

    def collect(self, token: Tuple[str, int]) -> Any:
        """Block until the reply for ``token`` arrives; deliver any
        piggybacked worker events to the registered handler."""
        dst, rid = token
        channel = self._channel(dst)
        while rid not in channel.replies:
            envelope = self._read(channel)
            if envelope.get("k") not in ("p", "e"):
                raise TransportError(
                    f"unexpected frame kind {envelope.get('k')!r} "
                    f"from {dst!r}", dst
                )
            events = envelope.get("ev")
            if events:
                handler = self._handlers.get("client")
                if handler is not None:
                    handler(dst, "trace-events", events)
            channel.replies[envelope["id"]] = envelope
            if envelope["id"] in channel.pending:
                channel.pending.remove(envelope["id"])
            self._gauge(dst)
        envelope = channel.replies.pop(rid)
        if envelope["k"] == "e":
            raise TransportError(
                f"worker {dst!r} failed: {envelope.get('e')}", dst
            )
        return envelope.get("p")

    def request(self, src, dst, kind, payload, on_reply=None):
        reply = self.collect(self.request_async(src, dst, kind, payload))
        if on_reply is not None:
            on_reply(reply)
        return reply

    def request_all(
        self, src: str, calls: List[Tuple[str, str, Any]]
    ) -> List[Any]:
        """Pipelined fan-out: write every request, then read every
        reply.  Workers execute their requests concurrently; wall-clock
        is the slowest worker, not the sum."""
        tokens = [
            self.request_async(src, dst, kind, payload)
            for dst, kind, payload in calls
        ]
        return [self.collect(token) for token in tokens]

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for name in list(self._channels):
            self.remove_channel(name)
