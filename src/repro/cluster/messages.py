"""Typed messages exchanged between Weaver servers.

Only the payloads that cross server boundaries live here; transport (the
simulated network or direct calls) is supplied by the database layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from ..core.vclock import VectorTimestamp
from ..db.operations import Operation


@dataclass(frozen=True)
class QueuedTransaction:
    """A transaction (or NOP) as it sits in a shard's gatekeeper queue.

    ``operations`` is empty for NOPs — the heartbeat transactions that
    keep every queue non-empty under light load (section 4.2).  ``seqno``
    is the FIFO sequence number on the (gatekeeper, shard) channel.

    ``tiebreak`` is an optional sender-assigned rank used as the oracle
    preference for concurrent pairs (section 3.4's "arrival order").  It
    is assigned in send order — which extends backing-store commit order,
    because gatekeepers forward synchronously at commit — so the
    preference stays commit-order-faithful even when network faults
    deliver channels at different speeds.  When absent, receivers fall
    back to local arrival order (equivalent on uniform channels).

    ``trace_id`` is the client-assigned observability id (``repro.obs``)
    carried along so shard-side spans attribute to the right trace; it
    is None for NOPs and for callers that do not trace.
    """

    ts: VectorTimestamp
    operations: Tuple[Operation, ...] = ()
    seqno: Optional[int] = None
    tiebreak: Optional[int] = None
    trace_id: Optional[int] = None

    @property
    def is_nop(self) -> bool:
        return not self.operations

    @property
    def queue_key(self) -> Tuple[int, int]:
        """Sort key within one gatekeeper's queue.

        A single gatekeeper's timestamps are totally ordered by (epoch,
        own counter), so per-queue priority needs no oracle.
        """
        return (self.ts.epoch, self.ts.local_clock)


@dataclass(frozen=True)
class AnnounceMessage:
    """A gatekeeper's periodic vector-clock broadcast (section 3.3)."""

    src: int
    vector: Tuple[int, ...]


@dataclass(frozen=True)
class ProgramRequest:
    """A node program dispatched to a shard (section 4.1).

    ``trace_id`` is carried explicitly so shard-side spans attribute to
    the submitting client's trace even across a process boundary, where
    no ambient context survives — ``repro trace`` chains must assemble
    identically under the in-process and multiprocess transports.
    """

    ts: VectorTimestamp
    query_id: int
    vertices: Tuple[Tuple[str, Any], ...]  # (vertex handle, prog params)
    trace_id: Optional[int] = None


@dataclass
class ProgramResponse:
    """What one shard round of a node program produced."""

    query_id: int
    next_hops: List[Tuple[str, Any]] = field(default_factory=list)
    emitted: List[Any] = field(default_factory=list)


@dataclass(frozen=True)
class ProgramStart:
    """Ship a node program to the start vertex's owning shard (section 4).

    The shard-resident execution path: the client submits one of these
    to the coordinator worker (the start vertex's owner) and receives
    only the aggregated result — program logic runs at the shards, and
    frontiers travel worker-to-worker as :class:`FrontierForward`
    frames instead of vertex images travelling to the client.

    ``frontier`` is the keyed initial frontier: ``(order_key, handle,
    params)`` triples, where ``order_key`` is the tuple that totally
    orders entries exactly like the batched executor's append order
    (children extend their parent's key with the hop index).
    ``cache_tail`` is the client-computed program-cache key tail
    (section 4.6); None disables caching for this run.
    """

    ts: VectorTimestamp
    query_id: int
    program: str
    frontier: Tuple[Tuple[Any, str, Any], ...]
    trace_id: Optional[int] = None
    cache_tail: Optional[Any] = None
    max_visits: int = 10_000_000


@dataclass(frozen=True)
class FrontierForward:
    """One worker's next-round hops for another worker (section 4.1).

    The peer-to-peer frontier frame of shard-resident execution:
    ``hops`` carries the ``(order_key, handle, params)`` triples owned
    by the destination shard for ``round``.  Per (src, dst, round) there
    is exactly one of these — per-round wire traffic is O(shards), not
    O(frontier).
    """

    query_id: int
    round: int
    hops: Tuple[Tuple[Any, str, Any], ...]


@dataclass(frozen=True)
class Heartbeat:
    """Server liveness report to the cluster manager (section 3.2)."""

    server: str
    epoch: int
    sent_at: float
