"""Shard servers: in-memory graph partitions obeying refinable order.

A shard holds one partition of the multi-version graph and applies
committed transactions to it in refinable-timestamp order (section 4.2,
Fig 6).  The mechanics:

* one priority queue of incoming transactions **per gatekeeper** — a
  single gatekeeper's stamps are totally ordered by its own counter, so
  each queue sorts locally without the oracle;
* the event loop runs only while **every** queue is non-empty (NOP
  heartbeats guarantee this under light load): it pops the earliest head
  across queues, consulting the timeline oracle for concurrent heads, and
  applies it;
* FIFO per channel is validated with sequence numbers;
* oracle decisions are cached locally (they are irreversible);
* node programs wait until every queue head is ordered **after** the
  program's timestamp — unordered (transaction, program) pairs resolve
  transaction-first (section 4.1), so programs never miss committed
  writes; gatekeeper announces bound the wait.
"""

from __future__ import annotations

import heapq
from dataclasses import replace
from typing import Callable, List, Optional, Tuple

from ..core.ordering import EarliestScheduler, RefinableOrdering
from ..core.vclock import Ordering, VectorTimestamp
from ..errors import ClusterError
from ..graph.mvgraph import MultiVersionGraph, SnapshotView
from .messages import QueuedTransaction


class ShardStats:
    """Counters used by the scalability experiments (Figs 12, 13)."""

    def __init__(self) -> None:
        self.transactions_applied = 0
        self.nops_applied = 0
        self.programs_started = 0
        self.vertices_read = 0
        self.out_of_order_rejected = 0
        self.duplicates_discarded = 0
        self.pages_in = 0
        self.pages_out = 0
        # Transactions that arrived without a sender-assigned tiebreak
        # rank and were assigned one from this shard's local arrival
        # order.  Nonzero outside hand-built test rigs means a sender
        # forgot to rank, so cross-channel delivery skew can reorder
        # concurrent pairs — worth seeing in `repro stats`.
        self.local_tiebreaks = 0

    def reset(self) -> None:
        self.__init__()


class ShardServer:
    """One shard: a graph partition plus the ordering event loop."""

    def __init__(
        self,
        index: int,
        num_gatekeepers: int,
        oracle,
        use_ordering_cache: bool = True,
    ):
        self.index = index
        self.num_gatekeepers = num_gatekeepers
        self.ordering = RefinableOrdering(oracle, use_ordering_cache)
        self.graph = MultiVersionGraph(cmp=self._read_compare)
        self.stats = ShardStats()
        self._queues: List[List[Tuple[Tuple[int, int], QueuedTransaction]]] = [
            [] for _ in range(num_gatekeepers)
        ]
        # Tournament over queue heads: a pop replaces one head, so only
        # that bracket path is re-compared (Fig 6 loop, log G per pop).
        self._scheduler = EarliestScheduler(self.ordering, num_gatekeepers)
        self._expected_seqno = [0] * num_gatekeepers
        # Fallback tiebreak rank for transactions whose sender assigned
        # none (hand-built rigs; every deployment sender ranks in send
        # order, which extends backing-store commit order — section 4.2).
        # Assignments are counted in ShardStats.local_tiebreaks.
        self._local_rank = 0
        self._epoch = 0
        # Position of the last non-NOP apply on this server instance;
        # (epoch, apply_seq) keys the shard.apply span so the referee
        # can reconstruct true apply order from a shuffled span stream
        # (recovered servers restart at 0 in a higher epoch, which keys
        # lexicographically after everything the old instance applied).
        self._apply_seq = 0
        # Optional repro.obs.Tracer: traced transactions emit
        # shard.enqueue / shard.apply spans as they move through.
        self.tracer = None
        # Demand paging (section 6.1): a loader that materializes an
        # evicted vertex's committed state from the backing store.
        self._pager: Optional[Callable[[str], Optional[dict]]] = None
        # Persistent apply observer: called as on_apply(shard_index, qtx)
        # for every non-NOP transaction applied, including those drained
        # by the epoch-barrier flush.  The history checker hangs here.
        self.on_apply: Optional[Callable[[int, QueuedTransaction], None]] = (
            None
        )

    @property
    def name(self) -> str:
        return f"shard{self.index}"

    @property
    def epoch(self) -> int:
        return self._epoch

    # -- ordering hooks -----------------------------------------------------

    def _read_compare(
        self, a: VectorTimestamp, b: VectorTimestamp
    ) -> Ordering:
        """Comparator used for snapshot visibility.

        Called as compare(write_ts, read_ts): when the pair is unordered
        the write is committed before the reader (section 4.1's
        "node programs after transactions" rule), so reads never miss a
        committed write.
        """
        return self.ordering.compare(a, b, prefer=Ordering.BEFORE)

    # -- queue management ----------------------------------------------

    def enqueue(self, gk_index: int, qtx: QueuedTransaction) -> None:
        """Accept a transaction (or NOP) from a gatekeeper channel."""
        if not 0 <= gk_index < self.num_gatekeepers:
            raise ClusterError(f"unknown gatekeeper {gk_index}")
        if qtx.seqno is not None:
            expected = self._expected_seqno[gk_index]
            if expected is None:
                # Resynchronizing after an epoch barrier: adopt the
                # first delivery's number as the new baseline.
                self._expected_seqno[gk_index] = qtx.seqno + 1
            elif qtx.seqno < expected:
                # Already delivered: a transport-level retransmission
                # duplicated the message.  Sequence numbers exist exactly
                # to make redelivery idempotent (section 4.2) — discard.
                self.stats.duplicates_discarded += 1
                return
            elif qtx.seqno > expected:
                # FIFO channels with sequence numbers (section 4.2): a
                # gap means the channel misbehaved.
                self.stats.out_of_order_rejected += 1
                raise ClusterError(
                    f"out-of-order delivery from gk{gk_index}: "
                    f"expected {expected}, got {qtx.seqno}"
                )
            else:
                self._expected_seqno[gk_index] += 1
        if qtx.tiebreak is None:
            # No sender-assigned rank: fall back to local arrival order
            # (equivalent to the sender's rank on uniform channels, but
            # vulnerable to cross-channel delivery skew — counted so it
            # is visible when it happens).
            qtx = replace(qtx, tiebreak=self._local_rank)
            self._local_rank += 1
            self.stats.local_tiebreaks += 1
        heapq.heappush(self._queues[gk_index], (qtx.queue_key, qtx))
        if self.tracer is not None and qtx.trace_id is not None:
            self.tracer.emit(
                qtx.trace_id, "shard.enqueue", node=self.name,
                ts=qtx.ts, gk=gk_index, seqno=qtx.seqno, shard=self.index,
            )

    def queue_depths(self) -> List[int]:
        return [len(q) for q in self._queues]

    def _head(self, gk_index: int) -> Optional[QueuedTransaction]:
        queue = self._queues[gk_index]
        return queue[0][1] if queue else None

    def _all_heads(self) -> Optional[List[QueuedTransaction]]:
        heads = []
        for i in range(self.num_gatekeepers):
            head = self._head(i)
            if head is None:
                return None
            heads.append(head)
        return heads

    # -- the event loop (Fig 6) ------------------------------------------

    def apply_available(
        self,
        stop_before: Optional[VectorTimestamp] = None,
        on_apply: Optional[Callable[[QueuedTransaction], None]] = None,
    ) -> int:
        """Apply queued transactions in refinable order.

        Runs while every gatekeeper queue is non-empty (the Fig 6 loop).
        With ``stop_before`` set, stops once the earliest head is ordered
        after that timestamp — the node-program wait of section 4.1.
        Returns the number of transactions (including NOPs) applied.
        """
        applied = 0
        while True:
            heads = self._all_heads()
            if heads is None:
                break
            earliest = self._scheduler.select(
                [(h.ts, h.tiebreak) for h in heads]
            )
            qtx = heads[earliest]
            if stop_before is not None:
                # Transaction-vs-program: unordered pairs commit the
                # transaction first, so the program observes it.
                if (
                    self.ordering.compare(
                        qtx.ts, stop_before, prefer=Ordering.BEFORE
                    )
                    is not Ordering.BEFORE
                ):
                    break
            heapq.heappop(self._queues[earliest])
            self._apply(qtx)
            applied += 1
            if on_apply is not None:
                on_apply(qtx)
        return applied

    def _apply(self, qtx: QueuedTransaction) -> None:
        if qtx.is_nop:
            self.stats.nops_applied += 1
            return
        for op in qtx.operations:
            if self._pager is not None:
                self._apply_with_paging(op, qtx.ts)
            else:
                op.apply_graph(self.graph, qtx.ts)
        self.stats.transactions_applied += 1
        self._apply_seq += 1
        if self.tracer is not None and qtx.trace_id is not None:
            self.tracer.emit(
                qtx.trace_id, "shard.apply", node=self.name,
                ts=qtx.ts, shard=self.index,
                apply_seq=self._apply_seq, epoch=self._epoch,
            )
        if self.on_apply is not None:
            self.on_apply(self.index, qtx)

    def _apply_with_paging(self, op, ts: VectorTimestamp) -> None:
        """Apply one op, paging its vertex in on demand.

        A paged-in image is the vertex's *committed* state, which may
        already include this very operation (it committed to the store
        before being forwarded here), so replays that find their effect
        already present are skipped rather than rejected.
        """
        from ..errors import NoSuchEdge, NoSuchVertex

        try:
            op.apply_graph(self.graph, ts)
            return
        except NoSuchVertex:
            (owner,) = op.touched()
            if not self.ensure_paged(owner):
                raise
        except (NoSuchEdge, ValueError):
            # The vertex is resident and already reflects this op (it
            # arrived inside an earlier page-in image).
            return
        try:
            op.apply_graph(self.graph, ts)
        except (NoSuchEdge, NoSuchVertex, ValueError):
            # Ditto, via the image just paged in.
            pass

    # -- node program support (section 4.1) -------------------------------

    def ready_for(self, prog_ts: VectorTimestamp) -> bool:
        """True when the shard may execute a program stamped ``prog_ts``:
        every queue is non-empty and every head is ordered after it."""
        heads = self._all_heads()
        if heads is None:
            return False
        return all(
            self.ordering.compare(h.ts, prog_ts, prefer=Ordering.BEFORE)
            is Ordering.AFTER
            for h in heads
        )

    def advance_to(self, prog_ts: VectorTimestamp) -> bool:
        """Apply everything ordered before ``prog_ts``; True when ready."""
        self.apply_available(stop_before=prog_ts)
        return self.ready_for(prog_ts)

    def flush_all(self) -> int:
        """Apply every queued transaction, ignoring the all-queues-
        non-empty rule.

        Only valid at an epoch barrier (section 4.3): once the cluster
        manager has stopped the old epoch, no further old-epoch stamp
        can arrive, so the usual wait-for-every-queue rule is vacuous
        and pending work can drain in refinable order.
        """
        applied = 0
        while True:
            earliest = self._scheduler.select(
                [
                    (q[0][1].ts, q[0][1].tiebreak) if q else None
                    for q in self._queues
                ]
            )
            if earliest is None:
                break
            _, qtx = heapq.heappop(self._queues[earliest])
            self._apply(qtx)
            applied += 1
        return applied

    def snapshot(self, prog_ts: VectorTimestamp) -> SnapshotView:
        """The consistent view a program stamped ``prog_ts`` reads."""
        self.stats.programs_started += 1
        return self.graph.at(prog_ts, memo_stats=self.ordering.stats)

    # -- demand paging (section 6.1) --------------------------------------

    def set_pager(self, loader: Callable[[str], Optional[dict]]) -> None:
        """Enable demand paging.

        ``loader(handle)`` returns the vertex's committed image —
        ``{"properties": {...}, "edges": {handle: {"dst":..,
        "props":..}}}`` — or None when the vertex does not exist.
        """
        self._pager = loader

    def evict(self, handle: str) -> int:
        """Page a vertex out of memory (its durable copy remains in the
        backing store).  Returns versioned records released."""
        if self._pager is None:
            raise ClusterError("demand paging not enabled on this shard")
        released = self.graph.evict(handle)
        if released:
            self.stats.pages_out += 1
        return released

    def ensure_paged(self, handle: str) -> bool:
        """Page a vertex in if it was evicted; True if it is resident.

        The image is stamped with the *ancient* timestamp (ordered
        before everything), because its contents were all committed
        before now; per-version history is traded for memory, exactly
        as with recovery from the backing store (section 4.3).
        """
        if self._pager is None or self.graph.raw_vertex(handle) is not None:
            return self.graph.raw_vertex(handle) is not None
        image = self._pager(handle)
        if image is None:
            return False
        ancient = VectorTimestamp.ancient(self.num_gatekeepers)
        self.graph.create_vertex(handle, ancient)
        for key, value in image.get("properties", {}).items():
            self.graph.set_vertex_property(handle, key, value, ancient)
        for edge_handle, record in image.get("edges", {}).items():
            self.graph.create_edge(
                edge_handle, handle, record["dst"], ancient
            )
            for key, value in record.get("props", {}).items():
                self.graph.set_edge_property(
                    handle, edge_handle, key, value, ancient
                )
        self.stats.pages_in += 1
        return True

    # -- garbage collection (section 4.5) --------------------------------

    def collect_below(self, watermark: VectorTimestamp) -> int:
        return self.graph.collect_below(watermark)

    # -- failover (section 4.3) ------------------------------------------

    def advance_epoch(self, new_epoch: int) -> None:
        """Join a new configuration epoch (cluster-manager barrier)."""
        if new_epoch <= self._epoch:
            raise ClusterError(
                f"epoch must advance: {new_epoch} <= {self._epoch}"
            )
        self._epoch = new_epoch
        # Apply whatever committed work is still queued (the barrier
        # guarantees no further old-epoch stamps), then resynchronize the
        # FIFO sequence numbers for the new epoch's channels.
        self.flush_all()
        self._queues = [[] for _ in range(self.num_gatekeepers)]
        self._expected_seqno = [None] * self.num_gatekeepers
