"""Read-only shard replicas: weaker consistency for read scaling.

Section 6.4 notes that applications can gain "additional, arbitrary
scalability ... by configuring read-only replicas of shard servers if
weaker consistency is acceptable, similar to TAO".  A
:class:`ReadReplica` serves vertex-local reads from a frozen snapshot
of its primary's multi-version graph: reads never consult the ordering
machinery (no oracle, no queue waits) but may be stale until the next
``refresh()`` — exactly TAO's eventual-consistency regime, and exactly
the staleness the paper's section 5.4 warns about, which is why it is
strictly opt-in.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..core.vclock import VectorTimestamp
from ..errors import NoSuchVertex
from ..graph.mvgraph import SnapshotView
from .shard import ShardServer


class ReadReplica:
    """An eventually-consistent read-only view of one shard."""

    def __init__(self, primary: ShardServer):
        self._primary = primary
        self._snapshot_ts: Optional[VectorTimestamp] = None
        self.refreshes = 0
        self.reads_served = 0

    @property
    def primary(self) -> ShardServer:
        return self._primary

    @property
    def snapshot_timestamp(self) -> Optional[VectorTimestamp]:
        return self._snapshot_ts

    def refresh(self, ts: VectorTimestamp) -> None:
        """Advance the replica to the primary's state as of ``ts``.

        In the real system this would ship a log segment; here the
        multi-version graph already holds every version, so advancing
        the frozen timestamp is sufficient and exact.
        """
        self._snapshot_ts = ts
        self.refreshes += 1

    def _view(self) -> SnapshotView:
        if self._snapshot_ts is None:
            raise NoSuchVertex("replica never refreshed")
        return self._primary.graph.at(self._snapshot_ts)

    # -- TAO-style read operations (no ordering, possibly stale) ---------

    def get_node(self, handle: str) -> Dict[str, Any]:
        self.reads_served += 1
        vertex = self._view().vertex(handle)
        return {
            "handle": vertex.handle,
            "properties": vertex.properties(),
            "out_degree": vertex.out_degree(),
        }

    def get_edges(self, handle: str) -> List[Dict[str, Any]]:
        self.reads_served += 1
        return [
            {
                "handle": edge.handle,
                "nbr": edge.nbr,
                "properties": edge.properties(),
            }
            for edge in self._view().vertex(handle).neighbors
        ]

    def count_edges(self, handle: str) -> int:
        self.reads_served += 1
        return self._view().vertex(handle).out_degree()

    def has_vertex(self, handle: str) -> bool:
        self.reads_served += 1
        return self._view().has_vertex(handle)
