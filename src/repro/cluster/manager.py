"""The cluster manager: membership, failure detection, recovery.

Tracks gatekeepers and shards via registration and heartbeats
(section 3.2).  On failure detection it follows section 4.3:

* spawn a replacement server,
* restore the shard's graph partition from the backing store (the only
  durably stored state),
* bump the configuration **epoch** and impose a barrier so every server
  enters the new epoch in unison — replacement gatekeepers restart their
  vector clocks at zero, and epoch comparison keeps new timestamps
  ordered after all pre-failure ones,
* leave in-flight transactions and node programs to client re-execution
  (their partial state was never durable, so restarting them is safe).

The manager itself (like the timeline oracle) would be a Paxos-replicated
state machine in production; in this reproduction it is a single
deterministic object, which preserves its decisions-visible-to-all
semantics.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..core.gatekeeper import Gatekeeper
from ..core.vclock import VectorTimestamp
from ..db.operations import graph_state_from_store
from ..errors import ClusterError
from ..store.kvstore import TransactionalStore
from ..store.mapping import ShardMapping
from .shard import ShardServer


class ClusterManager:
    """Failure detector and reconfiguration coordinator."""

    def __init__(
        self,
        store: TransactionalStore,
        mapping: ShardMapping,
        heartbeat_timeout: float = 1.0,
    ):
        self._store = store
        self._mapping = mapping
        self._timeout = heartbeat_timeout
        self._epoch = 0
        self._last_heartbeat: Dict[str, float] = {}
        self._gatekeepers: List[Gatekeeper] = []
        self._shards: List[ShardServer] = []
        self.failovers = 0
        # Records patched into surviving shards at recovery barriers:
        # committed state whose forwarding message was still in flight
        # (or partitioned away) when the epoch advanced.
        self.reconciled_records = 0

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def gatekeepers(self) -> List[Gatekeeper]:
        return self._gatekeepers

    @property
    def shards(self) -> List[ShardServer]:
        return self._shards

    # -- membership ---------------------------------------------------

    def register_gatekeeper(self, gk: Gatekeeper) -> None:
        self._gatekeepers.append(gk)
        self._last_heartbeat[gk.name] = 0.0

    def register_shard(self, shard: ShardServer) -> None:
        self._shards.append(shard)
        self._last_heartbeat[shard.name] = 0.0

    def heartbeat(self, server_name: str, now: float) -> None:
        if server_name not in self._last_heartbeat:
            raise ClusterError(f"unregistered server {server_name!r}")
        self._last_heartbeat[server_name] = now

    def detect_failures(self, now: float) -> List[str]:
        """Servers whose last heartbeat is older than the timeout."""
        return [
            name
            for name, last in self._last_heartbeat.items()
            if now - last > self._timeout
        ]

    # -- reconfiguration (section 4.3) -----------------------------------

    def advance_epoch(self) -> int:
        """Bump the epoch and barrier all servers into it together."""
        self._epoch += 1
        for gk in self._gatekeepers:
            gk.advance_epoch(self._epoch)
        for shard in self._shards:
            shard.advance_epoch(self._epoch)
        return self._epoch

    def recover_gatekeeper(
        self,
        index: int,
        recovery_ts_factory: Optional[Callable[[], VectorTimestamp]] = None,
    ) -> Gatekeeper:
        """Replace a failed gatekeeper with a fresh one.

        The replacement's vector clock restarts at zero; the epoch bump
        keeps its timestamps ordered after every pre-failure timestamp.
        The dead gatekeeper's committed-but-undelivered forwards are
        reconciled into every shard from the backing store.
        """
        if not 0 <= index < len(self._gatekeepers):
            raise ClusterError(f"no gatekeeper {index}")
        replacement = Gatekeeper(
            index, len(self._gatekeepers), self._store, epoch=self._epoch
        )
        old = self._gatekeepers[index]
        self._gatekeepers[index] = replacement
        self._last_heartbeat[replacement.name] = max(
            self._last_heartbeat.values(), default=0.0
        )
        self.failovers += 1
        self.advance_epoch()
        if self._shards:
            if recovery_ts_factory is None:
                recovery_ts = self._gatekeepers[0].issue_timestamp()
            else:
                recovery_ts = recovery_ts_factory()
            for i, shard in enumerate(self._shards):
                self._reconcile_shard(shard, i, recovery_ts)
        del old
        return replacement

    def recover_shard(
        self,
        index: int,
        recovery_ts_factory: Optional[Callable[[], VectorTimestamp]] = None,
    ) -> ShardServer:
        """Replace a failed shard, reloading its partition from the store.

        The multi-version history on the failed shard was volatile; the
        replacement loads the latest committed state, stamped with one
        recovery timestamp in the (new) current epoch, so every later
        query sees it.
        """
        if not 0 <= index < len(self._shards):
            raise ClusterError(f"no shard {index}")
        failed = self._shards[index]
        replacement = ShardServer(
            index, failed.num_gatekeepers, failed.ordering.oracle
        )
        self._shards[index] = replacement
        self.failovers += 1
        self.advance_epoch()
        if recovery_ts_factory is None:
            recovery_ts = self._gatekeepers[0].issue_timestamp()
        else:
            recovery_ts = recovery_ts_factory()
        self._load_partition(replacement, index, recovery_ts)
        # The barrier also lets every surviving shard drop old-epoch
        # stragglers (a partitioned channel can deliver them arbitrarily
        # late, after later-ordered work was already applied at the
        # flush); whatever committed state those messages carried is
        # re-derived from the store here.
        for i, shard in enumerate(self._shards):
            if i != index:
                self._reconcile_shard(shard, i, recovery_ts)
        self._last_heartbeat[replacement.name] = max(
            self._last_heartbeat.values(), default=0.0
        )
        return replacement

    def _reconcile_shard(
        self, shard: ShardServer, index: int, ts: VectorTimestamp
    ) -> int:
        """Bring a surviving shard's partition up to date with the store.

        The epoch barrier assumes no further old-epoch stamp reaches a
        shard, so in-flight forwards are dropped at delivery.  Every
        transaction they carried was durably committed before it was
        forwarded, so its effects are recovered here from the backing
        store — the same source a replacement shard reloads from — as a
        diff against what the shard already applied, stamped at the
        recovery timestamp.  Returns the number of records patched.
        """
        placement = {v: s for v, s in self._mapping.items()}
        vertices, edges = graph_state_from_store(self._store.snapshot())
        edges_by_src: Dict[str, Dict[str, Any]] = {}
        for (src, handle), record in edges.items():
            edges_by_src.setdefault(src, {})[handle] = record
        view = shard.graph.at(ts)
        missing = object()
        patched = 0
        # Committed state the shard never saw (or saw an older value of).
        for handle, props in vertices.items():
            if placement.get(handle) != index:
                continue
            current = view.try_vertex(handle)
            if current is None:
                shard.graph.create_vertex(handle, ts)
                for key, value in props.items():
                    shard.graph.set_vertex_property(handle, key, value, ts)
                for ehandle, record in edges_by_src.get(handle, {}).items():
                    shard.graph.create_edge(ehandle, handle, record["dst"], ts)
                    for key, value in record.get("props", {}).items():
                        shard.graph.set_edge_property(
                            handle, ehandle, key, value, ts
                        )
                patched += 1
                continue
            for key, value in props.items():
                if current.get_property(key, missing) != value:
                    shard.graph.set_vertex_property(handle, key, value, ts)
                    patched += 1
            for key in current.properties():
                if key not in props:
                    shard.graph.delete_vertex_property(handle, key, ts)
                    patched += 1
            for ehandle, record in edges_by_src.get(handle, {}).items():
                edge = current.get_edge(ehandle)
                if edge is None:
                    shard.graph.create_edge(ehandle, handle, record["dst"], ts)
                    for key, value in record.get("props", {}).items():
                        shard.graph.set_edge_property(
                            handle, ehandle, key, value, ts
                        )
                    patched += 1
                    continue
                for key, value in record.get("props", {}).items():
                    if edge.get_property(key, missing) != value:
                        shard.graph.set_edge_property(
                            handle, ehandle, key, value, ts
                        )
                        patched += 1
                for key in edge.properties():
                    if key not in record.get("props", {}):
                        shard.graph.delete_edge_property(
                            handle, ehandle, key, ts
                        )
                        patched += 1
        # Committed deletions the shard never saw.
        for vertex_view in list(view.vertices()):
            handle = vertex_view.handle
            if placement.get(handle) != index:
                continue
            if handle not in vertices:
                shard.graph.delete_vertex(handle, ts)
                patched += 1
                continue
            live_edges = edges_by_src.get(handle, {})
            for edge_view in vertex_view.neighbors:
                if edge_view.handle not in live_edges:
                    shard.graph.delete_edge(handle, edge_view.handle, ts)
                    patched += 1
        self.reconciled_records += patched
        return patched

    def _load_partition(
        self, shard: ShardServer, index: int, ts: VectorTimestamp
    ) -> None:
        placement = {v: s for v, s in self._mapping.items()}
        vertices, edges = graph_state_from_store(self._store.snapshot())
        for handle, props in vertices.items():
            if placement.get(handle) != index:
                continue
            shard.graph.create_vertex(handle, ts)
            for key, value in props.items():
                shard.graph.set_vertex_property(handle, key, value, ts)
        for (src, handle), record in edges.items():
            if placement.get(src) != index:
                continue
            shard.graph.create_edge(handle, src, record["dst"], ts)
            for key, value in record.get("props", {}).items():
                shard.graph.set_edge_property(src, handle, key, value, ts)
