"""The opportunistic background compactor of the durable store.

Compaction moves off the GC tick onto a daemon thread
(``store_background_compaction``): the thread compacts at
``safe_compact_version()`` on its own cadence, open-transaction
refcounts keep pinned snapshots readable underneath it, and the GC tick
skips its synchronous ``collect_below`` while the thread owns
reclamation.
"""

import time

import pytest

from repro.db import Weaver, WeaverClient, WeaverConfig
from repro.errors import StoreError
from repro.store.durable import DurableStore


def wait_until(predicate, timeout=5.0, step=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(step)
    return predicate()


class TestBackgroundCompactor:
    def test_runs_and_reclaims(self):
        store = DurableStore(":memory:")
        for i in range(8):
            store.transact(lambda tx, i=i: tx.put("k", i))
        store.enable_background_compaction(interval=0.005)
        try:
            assert store.background_compaction_active
            assert wait_until(
                lambda: store.stats.compaction_background_runs > 0
            )
            assert wait_until(lambda: store.stats.records_collected >= 7)
        finally:
            store.disable_background_compaction()
        assert not store.background_compaction_active
        # Only the newest version survives; reads still answer.
        assert store.get("k") == 7

    def test_pinned_snapshot_survives(self):
        """An open transaction bounds what the thread may compact."""
        store = DurableStore(":memory:")
        store.transact(lambda tx: tx.put("k", "old"))
        reader = store.begin()
        store.transact(lambda tx: tx.put("k", "new"))
        store.enable_background_compaction(interval=0.002)
        try:
            assert wait_until(
                lambda: store.stats.compaction_background_runs >= 3
            )
            # The reader's snapshot predates "new": its read must keep
            # answering from the pinned old record.
            assert reader.get("k") == "old"
        finally:
            store.disable_background_compaction()
        reader.abort()
        # With the pin gone the next pass may reclaim the old version.
        store.collect_below(store.safe_compact_version())
        assert store.get("k") == "new"

    def test_concurrent_commits_stay_consistent(self):
        """Writer and compactor interleave on one connection safely."""
        store = DurableStore(":memory:")
        store.enable_background_compaction(interval=0.001)
        try:
            for i in range(200):
                store.transact(lambda tx, i=i: tx.put(f"k{i % 5}", i))
            for i in range(5):
                assert store.get(f"k{i}") is not None
        finally:
            store.disable_background_compaction()
        assert store.stats.commits == 200

    def test_idempotent_enable_and_close_stops_thread(self):
        store = DurableStore(":memory:")
        store.enable_background_compaction(interval=0.01)
        store.enable_background_compaction(interval=0.01)  # no-op
        thread = store._compactor
        store.close()
        assert not thread.is_alive()
        assert not store.background_compaction_active

    def test_read_only_store_refuses(self, tmp_path):
        path = str(tmp_path / "store.db")
        DurableStore(path).close()
        ro = DurableStore(path, read_only=True)
        try:
            with pytest.raises(StoreError):
                ro.enable_background_compaction()
        finally:
            ro.close()


class TestConfigSwitch:
    def test_off_by_default_and_counter_exported(self):
        db = Weaver(WeaverConfig(store_backend="sqlite"))
        snap = db.metrics.snapshot()
        assert snap["store.compaction.background_runs"] == 0
        assert not getattr(
            db.store, "background_compaction_active", False
        )

    def test_gc_tick_defers_to_background_thread(self):
        db = Weaver(
            WeaverConfig(
                store_backend="sqlite", store_background_compaction=True
            )
        )
        try:
            assert db.store.background_compaction_active
            client = WeaverClient(db)
            v = client.create_vertex()
            for i in range(6):
                client.set_property(v, "n", i)
            report = db.collect_garbage()
            # The tick skipped its synchronous store compaction...
            assert report["store"] == 0
            # ...and the thread reclaims the superseded versions.
            assert wait_until(
                lambda: db.store.stats.compaction_background_runs > 0
            )
            assert wait_until(
                lambda: db.store.stats.records_collected > 0
            )
            snap = db.metrics.snapshot()
            assert snap["store.compaction.background_runs"] > 0
        finally:
            db.store.disable_background_compaction()

    def test_synchronous_compaction_without_switch(self):
        db = Weaver(WeaverConfig(store_backend="sqlite"))
        client = WeaverClient(db)
        v = client.create_vertex()
        for i in range(6):
            client.set_property(v, "n", i)
        report = db.collect_garbage()
        assert report["store"] > 0
