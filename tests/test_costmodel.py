"""The analytic cost model: resources, locks, closed loops, metrics."""

import pytest

from repro.bench.costmodel import (
    ClosedLoop,
    CostParams,
    LockTable,
    Resource,
)
from repro.bench.metrics import LatencyRecorder, percentile, throughput
from repro.bench.models import CoinGraphModel, WeaverModel
from repro.bench.report import format_series, format_table, ratio_check


class TestResource:
    def test_idle_serves_at_start(self):
        r = Resource()
        assert r.acquire(1.0, 0.5) == 1.5

    def test_queueing(self):
        r = Resource()
        r.acquire(0.0, 1.0)
        assert r.acquire(0.5, 1.0) == 2.0

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            Resource().acquire(0.0, -1)

    def test_utilization(self):
        r = Resource()
        r.acquire(0.0, 1.0)
        assert r.utilization(4.0) == pytest.approx(0.25)

    def test_job_counter(self):
        r = Resource()
        r.acquire(0, 1)
        r.acquire(0, 1)
        assert r.jobs == 2


class TestLockTable:
    def test_uncontended_grant_immediate(self):
        locks = LockTable()
        assert locks.lock("a", 1.0) == 1.0
        assert locks.contended == 0

    def test_contended_grant_waits(self):
        locks = LockTable()
        locks.hold_until("a", 2.0)
        assert locks.lock("a", 1.0) == 2.0
        assert locks.contended == 1

    def test_lock_all_sorted_and_max(self):
        locks = LockTable()
        locks.hold_until("b", 3.0)
        grant = locks.lock_all(["a", "b"], 1.0)
        assert grant == 3.0

    def test_hold_until_never_shrinks(self):
        locks = LockTable()
        locks.hold_until("a", 5.0)
        locks.hold_until("a", 2.0)
        assert locks.lock("a", 0.0) == 5.0

    def test_contention_rate(self):
        locks = LockTable()
        locks.hold_until("a", 1.0)
        locks.lock("a", 0.0)
        locks.lock("b", 0.0)
        assert locks.contention_rate == pytest.approx(0.5)


class TestClosedLoop:
    def test_throughput_of_fixed_latency_op(self):
        loop = ClosedLoop(4)
        run = loop.run(100, lambda c, i, start: start + 0.01)
        # 4 clients, 10 ms per op -> 400 ops/s.
        assert run.throughput == pytest.approx(400, rel=0.05)

    def test_latencies_recorded(self):
        run = ClosedLoop(1).run(5, lambda c, i, s: s + 0.5)
        assert run.mean_latency == pytest.approx(0.5)
        assert run.operations == 5

    def test_bottleneck_resource_caps_throughput(self):
        server = Resource()
        run = ClosedLoop(16).run(
            200, lambda c, i, s: server.acquire(s, 0.001)
        )
        assert run.throughput == pytest.approx(1000, rel=0.05)

    def test_zero_clients_rejected(self):
        with pytest.raises(ValueError):
            ClosedLoop(0)

    def test_time_travel_rejected(self):
        loop = ClosedLoop(1)
        with pytest.raises(ValueError):
            loop.run(1, lambda c, i, s: s - 1)


class TestWeaverModel:
    def test_read_hits_gatekeeper_and_shard(self):
        model = WeaverModel(num_gatekeepers=1, num_shards=1)
        finish = model.read_program(0.0)
        assert finish > 0
        assert model.gatekeepers[0].jobs == 1
        assert model.shards[0].jobs == 1

    def test_write_hits_store(self):
        model = WeaverModel()
        model.write_tx(0.0)
        assert sum(node.jobs for node in model.store_nodes) == 1

    def test_write_latency_dominated_by_store_commit(self):
        model = WeaverModel()
        finish = model.write_tx(0.0)
        assert finish >= model.costs.store_commit_service

    def test_reads_cheaper_than_writes(self):
        model = WeaverModel()
        read = model.read_program(0.0)
        model2 = WeaverModel()
        write = model2.write_tx(0.0)
        assert read < write

    def test_reactive_fraction_pays_oracle(self):
        model = WeaverModel(reactive_fraction=1.0)
        model.read_program(0.0)
        assert model.oracle.jobs == 1
        assert model.oracle_trips == 1

    def test_zero_reactive_never_touches_oracle(self):
        model = WeaverModel(reactive_fraction=0.0)
        for _ in range(10):
            model.read_program(0.0)
        assert model.oracle.jobs == 0

    def test_gatekeepers_round_robin(self):
        model = WeaverModel(num_gatekeepers=2)
        model.read_program(0.0)
        model.read_program(0.0)
        assert model.gatekeepers[0].jobs == 1
        assert model.gatekeepers[1].jobs == 1

    def test_multi_shard_read_parallelizes(self):
        serial = WeaverModel(num_gatekeepers=1, num_shards=1)
        parallel = WeaverModel(num_gatekeepers=1, num_shards=8)
        work = dict(vertices_read=1000, work_per_vertex=1e-5)
        t_serial = serial.read_program(0.0, shards_involved=1, **work)
        t_parallel = parallel.read_program(0.0, shards_involved=8, **work)
        assert t_parallel < t_serial

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            WeaverModel(num_gatekeepers=0)
        with pytest.raises(ValueError):
            WeaverModel(reactive_fraction=2.0)


class TestCoinGraphModel:
    def test_latency_linear_in_txs(self):
        model = CoinGraphModel()
        small = model.block_query_latency(10)
        large = model.block_query_latency(100)
        assert large > 5 * small

    def test_block_query_occupies_shards(self):
        model = CoinGraphModel(num_shards=2)
        model.block_query(10, 0.0)
        model.block_query(10, 0.0)
        assert model.shards[0].jobs == 1
        assert model.shards[1].jobs == 1


class TestMetrics:
    def test_percentile_interpolation(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 4.0
        assert percentile(data, 50) == pytest.approx(2.5)

    def test_percentile_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_percentile_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 150)

    def test_recorder_summary(self):
        recorder = LatencyRecorder()
        recorder.extend([0.1, 0.2, 0.3])
        summary = recorder.summary()
        assert summary["count"] == 3
        assert summary["mean"] == pytest.approx(0.2)
        assert summary["max"] == pytest.approx(0.3)

    def test_recorder_rejects_negative(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(-1)

    def test_cdf_monotone_and_complete(self):
        recorder = LatencyRecorder()
        recorder.extend([3.0, 1.0, 2.0])
        cdf = recorder.cdf(points=3)
        fractions = [f for _, f in cdf]
        assert fractions == sorted(fractions)
        assert cdf[-1][1] == 1.0

    def test_throughput(self):
        assert throughput(100, 2.0) == 50.0
        assert throughput(100, 0.0) == 0.0


class TestReport:
    def test_format_table_alignment(self):
        text = format_table("T", ["x", "yy"], [[1, 2.5], [10, 0.25]])
        assert "T" in text and "x" in text
        lines = text.splitlines()
        assert len({len(line) for line in lines[2:]}) == 1  # aligned

    def test_format_table_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table("T", ["a"], [[1, 2]])

    def test_format_series(self):
        text = format_series("cdf", [(0.1, 0.5), (0.2, 1.0)])
        assert text.startswith("cdf:")

    def test_ratio_check_ok(self):
        assert "[OK]" in ratio_check("x", 10.0, 10.9)

    def test_ratio_check_differs(self):
        assert "[DIFFERS]" in ratio_check("x", 1.0, 10.9)
