"""Streaming graph partitioning: hash, LDG, restreaming."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.partition import (
    HashPartitioner,
    LdgPartitioner,
    balance,
    edge_cut,
    restream,
)
from repro.workloads.graphs import adjacency, powerlaw_graph


def stream_of(edges):
    adj = adjacency(edges)
    return [(v, adj[v]) for v in adj]


class TestHashPartitioner:
    def test_deterministic(self):
        p = HashPartitioner(4)
        assert p.assign("v") == p.assign("v")

    def test_stable_across_instances(self):
        assert HashPartitioner(4).assign("v") == HashPartitioner(4).assign("v")

    def test_in_range(self):
        p = HashPartitioner(3)
        for i in range(100):
            assert 0 <= p.assign(f"v{i}") < 3

    def test_roughly_balanced(self):
        p = HashPartitioner(4)
        assignment = {f"v{i}": p.assign(f"v{i}") for i in range(400)}
        assert balance(assignment, 4) < 1.3

    def test_zero_partitions_rejected(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)


class TestLdgPartitioner:
    def test_places_every_vertex(self):
        edges = powerlaw_graph(100, 3, seed=1)
        stream = stream_of(edges)
        assignment = LdgPartitioner(4).partition(stream)
        assert len(assignment) == len(stream)

    def test_respects_capacity_roughly(self):
        edges = powerlaw_graph(200, 3, seed=2)
        assignment = LdgPartitioner(4).partition(stream_of(edges))
        assert balance(assignment, 4) <= 1.5

    def test_colocates_a_clique(self):
        # A tight clique streamed together should land on one partition.
        members = [f"c{i}" for i in range(5)]
        stream = [(m, [n for n in members if n != m]) for m in members]
        # Pad with isolated vertices so capacity is not the constraint.
        stream += [(f"x{i}", []) for i in range(20)]
        assignment = LdgPartitioner(4, capacity=10).partition(stream)
        clique_parts = {assignment[m] for m in members}
        assert len(clique_parts) == 1

    def test_beats_hash_on_edge_cut(self):
        edges = powerlaw_graph(300, 4, seed=3)
        stream = stream_of(edges)
        hash_cut, total = edge_cut(
            HashPartitioner(8).partition(stream), edges
        )
        ldg_cut, _ = edge_cut(LdgPartitioner(8).partition(stream), edges)
        assert ldg_cut < hash_cut

    def test_zero_partitions_rejected(self):
        with pytest.raises(ValueError):
            LdgPartitioner(0)


class TestRestream:
    def test_converges_to_no_worse_cut_than_single_pass(self):
        edges = powerlaw_graph(300, 4, seed=4)
        stream = stream_of(edges)
        single, _ = edge_cut(LdgPartitioner(8).partition(stream), edges)
        multi, _ = edge_cut(restream(stream, 8, passes=3), edges)
        assert multi <= single

    def test_single_pass_equivalent_to_ldg_shape(self):
        edges = powerlaw_graph(100, 3, seed=5)
        stream = stream_of(edges)
        assignment = restream(stream, 4, passes=1)
        assert len(assignment) == len(stream)

    def test_zero_passes_rejected(self):
        with pytest.raises(ValueError):
            restream([], 4, passes=0)


class TestMetrics:
    def test_edge_cut_counts(self):
        assignment = {"a": 0, "b": 0, "c": 1}
        cut, total = edge_cut(assignment, [("a", "b"), ("a", "c")])
        assert (cut, total) == (1, 2)

    def test_edge_cut_skips_unplaced(self):
        cut, total = edge_cut({"a": 0}, [("a", "b")])
        assert total == 0

    def test_balance_perfect(self):
        assert balance({"a": 0, "b": 1}, 2) == 1.0

    def test_balance_skewed(self):
        assert balance({"a": 0, "b": 0}, 2) == 2.0

    def test_balance_empty(self):
        assert balance({}, 4) == 1.0


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 6), st.integers(10, 60), st.integers(0, 1000))
def test_ldg_always_places_in_range(parts, n, seed):
    edges = powerlaw_graph(n, 2, seed=seed)
    stream = stream_of(edges)
    assignment = LdgPartitioner(parts).partition(stream)
    assert set(assignment) == {v for v, _ in stream}
    assert all(0 <= p < parts for p in assignment.values())
