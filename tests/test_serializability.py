"""Strict serializability: the paper's correctness claims (section 4.4).

These tests drive the full stack — multiple gatekeepers, multiple
shards, interleaved transactions, node programs — and check that every
observable history is equivalent to some serial order consistent with
real-time (here: commit) order.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.db import Weaver, WeaverClient, WeaverConfig
from repro.errors import TransactionAborted


def fresh(announce_every=1, gks=2, shards=2):
    db = Weaver(
        WeaverConfig(
            num_gatekeepers=gks,
            num_shards=shards,
            announce_every=announce_every,
        )
    )
    return db, WeaverClient(db)


class TestFig1Scenario:
    """The motivating example: a path query during concurrent updates
    must never return a path that never existed."""

    def build_topology(self, client):
        # n1 - n3 - n5 - n6/n7 chain from Fig 1 (simplified to the
        # relevant spine): n1 -> n3 -> n5, and n7 initially disconnected.
        with client.transaction() as tx:
            for n in ("n1", "n3", "n5", "n7"):
                tx.create_vertex(n)
            tx.create_edge("n1", "n3", "e13")
            tx.create_edge("n3", "n5", "e35")

    def test_path_query_never_sees_phantom_path(self):
        db, client = fresh()
        self.build_topology(client)
        # Atomically: delete (n3, n5) and create (n5, n7) — after this,
        # n7 is NOT reachable from n1 (the link to n5 is gone).
        with client.transaction() as tx:
            tx.delete_edge("n3", "e35")
            tx.create_edge("n5", "n7", "e57")
        assert client.find_path("n1", "n7") is None

    def test_path_query_before_update_sees_old_world(self):
        db, client = fresh()
        self.build_topology(client)
        point = db.checkpoint()
        with client.transaction() as tx:
            tx.delete_edge("n3", "e35")
            tx.create_edge("n5", "n7", "e57")
        # At the checkpoint, n5 was reachable but n7 was not.
        assert client.find_path("n1", "n5", at=point) is not None
        assert client.find_path("n1", "n7", at=point) is None

    def test_non_atomic_would_differ(self):
        # Sanity for the test itself: with the updates in two separate
        # transactions and a read between them, the intermediate state
        # (n5->n7 created, n3->n5 still alive) WOULD show a path.  The
        # atomic version above never exposes it.
        db, client = fresh()
        self.build_topology(client)
        with client.transaction() as tx:
            tx.create_edge("n5", "n7", "e57")
        assert client.find_path("n1", "n7") is not None  # transient world
        with client.transaction() as tx:
            tx.delete_edge("n3", "e35")
        assert client.find_path("n1", "n7") is None


class TestAtomicVisibility:
    def test_program_never_sees_partial_transaction(self):
        """A transaction spanning both shards becomes visible to node
        programs all-or-nothing."""
        db, client = fresh(announce_every=3)
        with client.transaction() as tx:
            tx.create_vertex("hub")
        # Each write transaction creates one vertex on each shard and
        # links both to the hub; a BFS from hub must always see an even
        # number of spokes.
        for i in range(6):
            with client.transaction() as tx:
                left = tx.create_vertex(f"L{i}")
                right = tx.create_vertex(f"R{i}")
                tx.create_edge("hub", left)
                tx.create_edge("hub", right)
            spokes = client.count_edges("hub")
            assert spokes == 2 * (i + 1)

    def test_reads_after_commit_always_see_it(self):
        """Strict serializability theorem 2: an operation invoked after
        a transaction's response sees its effects."""
        db, client = fresh(announce_every=5, gks=3)
        with client.transaction() as tx:
            tx.create_vertex("v")
        for i in range(10):
            client.set_property("v", "round", i)
            assert client.get_node("v")["properties"]["round"] == i

    def test_snapshot_reads_are_repeatable(self):
        db, client = fresh()
        with client.transaction() as tx:
            tx.create_vertex("v")
            tx.set_property("v", "k", 0)
        point = db.checkpoint()
        for i in range(1, 4):
            client.set_property("v", "k", i)
            assert client.get_node("v", at=point)["properties"]["k"] == 0


class TestCommitOrderEquivalence:
    def test_random_interleavings_match_sequential_replay(self):
        """Interleave open transactions from both gatekeepers over a
        shared counter-bearing graph; the final state must equal a
        sequential replay of the transactions in commit order."""
        rng = random.Random(7)
        db, client = fresh(announce_every=4, gks=3, shards=3)
        vertices = [f"v{i}" for i in range(6)]
        with client.transaction() as tx:
            for v in vertices:
                tx.create_vertex(v)
                tx.set_property(v, "n", 0)
        committed = []  # (vertex, value) in commit order
        for _ in range(40):
            tx1 = db.begin_transaction()
            tx2 = db.begin_transaction()
            v1 = vertices[rng.randrange(len(vertices))]
            v2 = vertices[rng.randrange(len(vertices))]
            a1 = tx1.get_vertex(v1)["n"]
            a2 = tx2.get_vertex(v2)["n"]
            tx1.set_property(v1, "n", a1 + 1)
            tx2.set_property(v2, "n", a2 + 1)
            for tx, v, base in ((tx1, v1, a1), (tx2, v2, a2)):
                try:
                    tx.commit()
                    committed.append((v, base + 1))
                except TransactionAborted:
                    pass
        # Sequential replay oracle.
        replay = {v: 0 for v in vertices}
        for v, value in committed:
            replay[v] = value
        for v in vertices:
            assert client.get_node(v)["properties"]["n"] == replay[v]

    def test_lost_update_prevented(self):
        db, client = fresh()
        with client.transaction() as tx:
            tx.create_vertex("acct")
            tx.set_property("acct", "balance", 100)
        tx1 = db.begin_transaction(gatekeeper=0)
        tx2 = db.begin_transaction(gatekeeper=1)
        b1 = tx1.get_vertex("acct")["balance"]
        b2 = tx2.get_vertex("acct")["balance"]
        tx1.set_property("acct", "balance", b1 - 30)
        tx2.set_property("acct", "balance", b2 - 50)
        tx1.commit()
        with pytest.raises(TransactionAborted):
            tx2.commit()
        assert client.get_node("acct")["properties"]["balance"] == 70


class TestCrossShardConsistency:
    def test_multi_shard_transaction_is_atomic_in_memory(self):
        """Ops of one transaction land on different shards; after a
        drain, both shards hold them with the same timestamp."""
        db, client = fresh()
        with client.transaction() as tx:
            tx.create_vertex("a")  # shard 0 (round robin)
            tx.create_vertex("b")  # shard 1
        ts = tx.timestamp
        db.drain()
        sa = db.shards[db.mapping.lookup("a")].graph.raw_vertex("a")
        sb = db.shards[db.mapping.lookup("b")].graph.raw_vertex("b")
        assert sa.span.created_at == ts
        assert sb.span.created_at == ts

    def test_same_order_on_all_shards(self):
        """Two transactions writing to both shards apply in the same
        refinable order everywhere (theorem 1, case 3)."""
        db, client = fresh(announce_every=10)
        with client.transaction() as tx:
            tx.create_vertex("x")
            tx.create_vertex("y")
        t1 = db.begin_transaction(gatekeeper=0)
        t1.set_property("x", "m", "t1")
        t1.set_property("y", "m", "t1")
        t1.commit()
        t2 = db.begin_transaction(gatekeeper=1)
        t2.set_property("x", "m", "t2")
        t2.set_property("y", "m", "t2")
        t2.commit()
        # Whatever the refinable order decided, both vertices must agree.
        x = client.get_node("x")["properties"]["m"]
        y = client.get_node("y")["properties"]["m"]
        assert x == y


# -- property-based: random workloads keep the two data planes in sync ------

ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["set", "edge", "del_edge", "read"]),
        st.integers(0, 4),
        st.integers(0, 4),
    ),
    min_size=1,
    max_size=30,
)


@settings(max_examples=20, deadline=None)
@given(ops_strategy, st.integers(1, 8))
def test_store_and_shards_agree_under_random_workloads(ops, announce_every):
    """After any committed workload, the durable store and the
    in-memory multi-version graph answer reads identically."""
    db, client = fresh(announce_every=announce_every, gks=2, shards=2)
    names = [f"v{i}" for i in range(5)]
    with client.transaction() as tx:
        for v in names:
            tx.create_vertex(v)
    edges = {}
    for kind, i, j in ops:
        src, dst = names[i], names[j]
        try:
            if kind == "set":
                client.set_property(src, "k", j)
            elif kind == "edge" and (src, dst) not in edges:
                edges[(src, dst)] = client.create_edge(src, dst)
            elif kind == "del_edge" and (src, dst) in edges:
                client.delete_edge(src, edges.pop((src, dst)))
            else:
                client.get_node(src)
        except TransactionAborted:
            pass
    # Compare every vertex's live edges: store vs node program.
    for v in names:
        store_edges = {
            key.split(":", 2)[2]
            for key in db.store.keys(f"e:{v}:")
        }
        program_edges = {e["handle"] for e in client.get_edges(v)}
        assert store_edges == program_edges
