"""Vector clocks and timestamps: the proactive ordering layer."""

import pytest
from hypothesis import given, strategies as st

from repro.core.vclock import Ordering, VectorClock, VectorTimestamp


def ts(clocks, issuer=0, epoch=0):
    return VectorTimestamp(epoch, tuple(clocks), issuer)


class TestOrderingEnum:
    def test_flipped_before(self):
        assert Ordering.BEFORE.flipped() is Ordering.AFTER

    def test_flipped_after(self):
        assert Ordering.AFTER.flipped() is Ordering.BEFORE

    def test_flipped_concurrent(self):
        assert Ordering.CONCURRENT.flipped() is Ordering.CONCURRENT

    def test_flipped_equal(self):
        assert Ordering.EQUAL.flipped() is Ordering.EQUAL


class TestVectorTimestamp:
    def test_dominated_vector_is_before(self):
        assert ts([1, 0]).compare(ts([1, 1], issuer=1)) is Ordering.BEFORE

    def test_dominating_vector_is_after(self):
        assert ts([2, 1]).compare(ts([1, 1], issuer=1)) is Ordering.AFTER

    def test_crossed_vectors_are_concurrent(self):
        assert ts([1, 0]).compare(ts([0, 1], issuer=1)) is Ordering.CONCURRENT

    def test_same_stamp_is_equal(self):
        a = ts([3, 2])
        assert a.compare(ts([3, 2])) is Ordering.EQUAL

    def test_identical_vectors_different_issuers_concurrent(self):
        # Possible right after an announce: same numbers, distinct events.
        assert ts([1, 1]).compare(ts([1, 1], issuer=1)) is Ordering.CONCURRENT

    def test_paper_example_t1_before_t2(self):
        # Fig 5: T1<1,1,0> precedes T2<3,4,2>.
        t1 = ts([1, 1, 0], issuer=0)
        t2 = ts([3, 4, 2], issuer=1)
        assert t1.compare(t2) is Ordering.BEFORE

    def test_paper_example_t2_t4_concurrent(self):
        # Fig 5: T2<3,4,2> and T4<3,1,5> are concurrent.
        t2 = ts([3, 4, 2], issuer=1)
        t4 = ts([3, 1, 5], issuer=2)
        assert t2.compare(t4) is Ordering.CONCURRENT

    def test_lower_epoch_always_before(self):
        old = ts([100, 100], epoch=0)
        new = ts([1, 0], epoch=1)
        assert old.compare(new) is Ordering.BEFORE
        assert new.compare(old) is Ordering.AFTER

    def test_happens_before_helper(self):
        assert ts([0, 0]).happens_before(ts([1, 1], issuer=1))

    def test_concurrent_with_helper(self):
        assert ts([1, 0]).concurrent_with(ts([0, 1], issuer=1))

    def test_mismatched_length_raises(self):
        with pytest.raises(ValueError):
            ts([1, 0]).compare(ts([1, 0, 0]))

    def test_issuer_out_of_range_raises(self):
        with pytest.raises(ValueError):
            VectorTimestamp(0, (1, 2), 2)

    def test_local_clock_is_issuer_component(self):
        assert ts([4, 7], issuer=1).local_clock == 7

    def test_id_unique_per_issuer_counter(self):
        assert ts([1, 5], issuer=1).id == (0, 1, 5)

    def test_str_contains_epoch_and_issuer(self):
        text = str(ts([1, 2], issuer=1, epoch=3))
        assert "e3" in text and "gk1" in text

    def test_len_is_cluster_size(self):
        assert len(ts([1, 2, 3])) == 3

    def test_hashable_and_equality(self):
        assert ts([1, 2]) == ts([1, 2])
        assert hash(ts([1, 2])) == hash(ts([1, 2]))
        assert ts([1, 2]) != ts([1, 2], issuer=1)


class TestVectorClock:
    def test_tick_increments_own_component_only(self):
        clock = VectorClock(3, 1)
        stamp = clock.tick()
        assert stamp.clocks == (0, 1, 0)

    def test_successive_ticks_are_ordered(self):
        clock = VectorClock(2, 0)
        first, second = clock.tick(), clock.tick()
        assert first.compare(second) is Ordering.BEFORE

    def test_observe_takes_componentwise_max(self):
        clock = VectorClock(3, 0)
        clock.tick()
        clock.observe((0, 5, 2))
        assert clock.clocks == (1, 5, 2)

    def test_observe_never_advances_own_component(self):
        clock = VectorClock(2, 0)
        clock.tick()
        clock.observe((99, 3))
        assert clock.clocks == (1, 3)

    def test_observe_ignores_stale_values(self):
        clock = VectorClock(2, 0)
        clock.observe((0, 5))
        clock.observe((0, 2))
        assert clock.clocks == (0, 5)

    def test_observe_wrong_length_raises(self):
        with pytest.raises(ValueError):
            VectorClock(2, 0).observe((1, 2, 3))

    def test_announce_returns_snapshot(self):
        clock = VectorClock(2, 1)
        clock.tick()
        assert clock.announce() == (0, 1)

    def test_stamp_after_observe_dominates_observed(self):
        a = VectorClock(2, 0)
        b = VectorClock(2, 1)
        observed = a.tick()
        b.observe(a.announce())
        later = b.tick()
        assert observed.compare(later) is Ordering.BEFORE

    def test_stamps_without_announce_are_concurrent(self):
        a = VectorClock(2, 0)
        b = VectorClock(2, 1)
        assert a.tick().compare(b.tick()) is Ordering.CONCURRENT

    def test_peek_does_not_consume(self):
        clock = VectorClock(2, 0)
        clock.tick()
        peeked = clock.peek()
        assert peeked.clocks == (1, 0)
        assert clock.tick().clocks == (2, 0)  # peek consumed nothing

    def test_advance_epoch_resets_counters(self):
        clock = VectorClock(2, 0)
        clock.tick()
        clock.advance_epoch(1)
        assert clock.clocks == (0, 0)
        assert clock.epoch == 1

    def test_advance_epoch_must_move_forward(self):
        clock = VectorClock(2, 0, epoch=2)
        with pytest.raises(ValueError):
            clock.advance_epoch(2)

    def test_new_epoch_stamp_after_old_epoch_stamp(self):
        clock = VectorClock(2, 0)
        old = clock.tick()
        clock.advance_epoch(1)
        new = clock.tick()
        assert old.compare(new) is Ordering.BEFORE

    def test_zero_gatekeepers_rejected(self):
        with pytest.raises(ValueError):
            VectorClock(0, 0)

    def test_index_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            VectorClock(2, 2)


# -- property-based: compare() is a strict partial order -------------------
#
# Stamps are drawn from simulated gatekeeper histories (ticks, announce/
# observe exchanges, barriered epoch bumps) rather than as arbitrary
# vectors: compare()'s same-issuer scalar fast path encodes the system
# invariant that one gatekeeper's stamps form a domination chain, which a
# hand-built vector (e.g. a peer component that travels backwards) need
# not satisfy — and no real clock can produce.


@st.composite
def issued_triple(draw):
    size = draw(st.integers(2, 4))
    clocks = [VectorClock(size, i) for i in range(size)]
    epoch = 0
    stamps = []
    for _ in range(draw(st.integers(3, 14))):
        kind = draw(st.integers(0, 9))
        actor = draw(st.integers(0, size - 1))
        if kind == 0 and epoch < 2:
            # Cluster-manager barrier: every clock enters the new epoch
            # before any stamp of that epoch is issued (section 4.3).
            epoch += 1
            for clock in clocks:
                clock.advance_epoch(epoch)
        elif kind <= 3:
            peer = draw(st.integers(0, size - 1))
            clocks[actor].observe(clocks[peer].announce())
        else:
            stamps.append(clocks[actor].tick())
    while len(stamps) < 3:
        stamps.append(clocks[draw(st.integers(0, size - 1))].tick())
    return tuple(
        stamps[draw(st.integers(0, len(stamps) - 1))] for _ in range(3)
    )


triple = issued_triple()


@given(triple)
def test_compare_antisymmetric(stamps):
    a, b, _ = stamps
    forward = a.compare(b)
    assert b.compare(a) is forward.flipped()


@given(triple)
def test_compare_transitive(stamps):
    a, b, c = stamps
    if (
        a.compare(b) is Ordering.BEFORE
        and b.compare(c) is Ordering.BEFORE
    ):
        assert a.compare(c) is Ordering.BEFORE


@given(triple)
def test_compare_irreflexive(stamps):
    a, _, _ = stamps
    assert a.compare(a) is Ordering.EQUAL
