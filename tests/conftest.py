"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.gatekeeper import Gatekeeper, sync_announce_all
from repro.db import Weaver, WeaverClient, WeaverConfig


@pytest.fixture
def db():
    """A small two-gatekeeper, two-shard deployment."""
    return Weaver(WeaverConfig(num_gatekeepers=2, num_shards=2))


@pytest.fixture
def client(db):
    return WeaverClient(db)


@pytest.fixture
def gatekeepers():
    """Three bare gatekeepers sharing a cluster size (no store)."""
    return [Gatekeeper(i, 3) for i in range(3)]


def announce(gatekeepers):
    sync_announce_all(gatekeepers)


@pytest.fixture
def triangle(client):
    """A 3-vertex directed triangle a->b->c->a with an extra a->c edge."""
    with client.transaction() as tx:
        for name in ("a", "b", "c"):
            tx.create_vertex(name)
        tx.create_edge("a", "b", "ab")
        tx.create_edge("b", "c", "bc")
        tx.create_edge("c", "a", "ca")
        tx.create_edge("a", "c", "ac")
    return client
