"""The vertex-to-shard mapping stored in the backing store."""

import pytest

from repro.store.kvstore import TransactionalStore
from repro.store.mapping import ShardMapping


@pytest.fixture
def mapping():
    return ShardMapping(TransactionalStore(), num_shards=3)


class TestShardMapping:
    def test_round_robin_balances(self, mapping):
        for i in range(9):
            mapping.assign(f"v{i}")
        assert mapping.load() == {0: 3, 1: 3, 2: 3}

    def test_lookup_returns_assignment(self, mapping):
        shard = mapping.assign("v")
        assert mapping.lookup("v") == shard

    def test_lookup_missing_returns_none(self, mapping):
        assert mapping.lookup("ghost") is None

    def test_explicit_shard_honored(self, mapping):
        assert mapping.assign("v", shard=2) == 2
        assert mapping.lookup("v") == 2

    def test_explicit_shard_out_of_range(self, mapping):
        with pytest.raises(ValueError):
            mapping.assign("v", shard=3)

    def test_assignment_within_transaction_is_atomic(self):
        store = TransactionalStore()
        mapping = ShardMapping(store, 2)
        tx = store.begin()
        mapping.assign("v", tx=tx)
        assert mapping.lookup("v") is None  # not yet committed
        tx.commit()
        assert mapping.lookup("v") is not None

    def test_remove(self, mapping):
        mapping.assign("v")
        mapping.remove("v")
        assert mapping.lookup("v") is None

    def test_items_lists_live_assignments(self, mapping):
        mapping.assign("a", shard=0)
        mapping.assign("b", shard=1)
        assert dict(mapping.items()) == {"a": 0, "b": 1}

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            ShardMapping(TransactionalStore(), 0)

    def test_mapping_keys_do_not_collide_with_graph_keys(self):
        store = TransactionalStore()
        mapping = ShardMapping(store, 2)
        store.transact(lambda t: t.put("v:x", {}))
        mapping.assign("x")
        assert store.get("v:x") == {}
        assert mapping.lookup("x") is not None
