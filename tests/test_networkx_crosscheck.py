"""Independent validation: our node programs vs networkx.

networkx implements the same graph algorithms with a completely
different code base; agreement on random graphs is strong evidence the
node-program implementations are right.
"""

import random

import networkx as nx
import pytest

from repro.core.vclock import VectorClock
from repro.graph.mvgraph import MultiVersionGraph
from repro.programs import (
    Bfs,
    ClusteringCoefficient,
    ComponentSize,
    ProgramExecutor,
    Reachability,
    ShortestPath,
    TriangleCount,
    WeightedShortestPath,
    params,
)
from repro.workloads.graphs import powerlaw_graph, uniform_graph


def build(edges):
    """Load an edge list into both a MultiVersionGraph and a DiGraph."""
    clock = VectorClock(1, 0)
    graph = MultiVersionGraph()
    nxg = nx.DiGraph()
    names = []
    for src, dst in edges:
        for v in (src, dst):
            if v not in graph:
                graph.create_vertex(v, clock.tick())
                names.append(v)
            nxg.add_node(v)
    for i, (src, dst) in enumerate(edges):
        if not nxg.has_edge(src, dst):
            graph.create_edge(f"e{i}", src, dst, clock.tick())
            nxg.add_edge(src, dst)
    ts = clock.tick()
    view = graph.at(ts)

    def resolve(handle):
        return view.vertex(handle) if view.has_vertex(handle) else None

    return resolve, ts, nxg, names


def run(program, start, start_params, resolve, ts):
    return ProgramExecutor().execute(
        program, [(start, start_params)], resolve, ts
    )


@pytest.fixture(scope="module", params=[11, 22, 33])
def world(request):
    edges = powerlaw_graph(120, 3, seed=request.param)
    return build(edges)


class TestReachabilityAgainstNetworkx:
    def test_random_pairs(self, world):
        resolve, ts, nxg, names = world
        rng = random.Random(5)
        for _ in range(25):
            src = names[rng.randrange(len(names))]
            dst = names[rng.randrange(len(names))]
            ours = bool(
                run(
                    Reachability(), src, params(target=dst), resolve, ts
                ).results
            )
            theirs = nx.has_path(nxg, src, dst)
            assert ours == theirs, (src, dst)


class TestBfsAgainstNetworkx:
    def test_visited_set_is_descendants_plus_self(self, world):
        resolve, ts, nxg, names = world
        rng = random.Random(6)
        for _ in range(10):
            src = names[rng.randrange(len(names))]
            ours = set(
                run(Bfs(), src, params(depth=0), resolve, ts).results
            )
            theirs = nx.descendants(nxg, src) | {src}
            assert ours == theirs


class TestShortestPathAgainstNetworkx:
    def test_unweighted_distances(self, world):
        resolve, ts, nxg, names = world
        rng = random.Random(7)
        for _ in range(20):
            src = names[rng.randrange(len(names))]
            dst = names[rng.randrange(len(names))]
            result = run(
                ShortestPath(), src, params(target=dst, dist=0),
                resolve, ts,
            )
            ours = result.results[0] if result.results else None
            try:
                theirs = nx.shortest_path_length(nxg, src, dst)
            except nx.NetworkXNoPath:
                theirs = None
            assert ours == theirs, (src, dst)

    def test_weighted_distances(self):
        rng = random.Random(8)
        edges = uniform_graph(30, 80, seed=8)
        clock = VectorClock(1, 0)
        graph = MultiVersionGraph()
        nxg = nx.DiGraph()
        for src, dst in edges:
            for v in (src, dst):
                if v not in graph:
                    graph.create_vertex(v, clock.tick())
        for i, (src, dst) in enumerate(edges):
            weight = rng.randint(1, 9)
            graph.create_edge(f"e{i}", src, dst, clock.tick())
            graph.set_edge_property(
                src, f"e{i}", "weight", float(weight), clock.tick()
            )
            nxg.add_edge(src, dst, weight=weight)
        ts = clock.tick()
        view = graph.at(ts)
        resolve = lambda h: view.vertex(h) if view.has_vertex(h) else None
        names = sorted(nxg.nodes)
        for _ in range(15):
            src = names[rng.randrange(len(names))]
            dst = names[rng.randrange(len(names))]
            result = run(
                WeightedShortestPath(),
                src,
                params(target=dst, dist=0.0),
                resolve,
                ts,
            )
            ours = WeightedShortestPath.distance(result)
            try:
                theirs = float(
                    nx.dijkstra_path_length(nxg, src, dst)
                )
            except nx.NetworkXNoPath:
                theirs = None
            assert ours == theirs, (src, dst)


class TestComponentsAgainstNetworkx:
    def test_reachable_set_sizes(self, world):
        resolve, ts, nxg, names = world
        for src in names[:15]:
            ours = ComponentSize.size(
                run(ComponentSize(), src, None, resolve, ts)
            )
            theirs = len(nx.descendants(nxg, src)) + 1
            assert ours == theirs


class TestClusteringAgainstNetworkx:
    def test_out_neighbourhood_density(self, world):
        """Our coefficient counts directed edges among out-neighbours
        over k(k-1); verify against a direct computation on the DiGraph
        (networkx's own clustering() uses a different directed variant,
        so the reference is computed explicitly from its edge set)."""
        resolve, ts, nxg, names = world
        for src in names[:20]:
            result = run(
                ClusteringCoefficient(), src, params(phase="center"),
                resolve, ts,
            )
            ours = ClusteringCoefficient.aggregate(result)
            nbrs = set(nxg.successors(src))
            k = len(nbrs)
            if k < 2:
                expected = 0.0
            else:
                links = sum(
                    1
                    for u in nbrs
                    for v in nbrs
                    if u != v and nxg.has_edge(u, v)
                )
                expected = links / (k * (k - 1))
            assert ours == pytest.approx(expected), src


class TestTrianglesAgainstNetworkx:
    def test_triangles_through_vertex(self, world):
        resolve, ts, nxg, names = world
        for src in names[:20]:
            result = run(
                TriangleCount(), src, params(phase="center"), resolve, ts
            )
            ours = TriangleCount.total(result)
            nbrs = set(nxg.successors(src))
            expected = sum(
                1
                for u in nbrs
                for v in nbrs
                if u != v and nxg.has_edge(u, v)
            )
            assert ours == expected, src
