"""The timeline oracle: reactive ordering, DAG invariants, replication."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.oracle import (
    EventDependencyGraph,
    ReplicatedOracle,
    TimelineOracle,
)
from repro.core.vclock import Ordering, VectorTimestamp
from repro.errors import CycleError, OrderingError


def ts(clocks, issuer=0, epoch=0):
    return VectorTimestamp(epoch, tuple(clocks), issuer)


# Convenient concurrent stamps (crossed vectors).
A = ts([1, 0], issuer=0)
B = ts([0, 1], issuer=1)
C = ts([2, 0], issuer=0)
D = ts([0, 2], issuer=1)


class TestEventDependencyGraph:
    def test_add_event_idempotent(self):
        g = EventDependencyGraph()
        assert g.add_event(A)
        assert not g.add_event(A)
        assert len(g) == 1

    def test_contains(self):
        g = EventDependencyGraph()
        g.add_event(A)
        assert A in g and B not in g

    def test_explicit_edge_reaches(self):
        g = EventDependencyGraph()
        g.add_event(A)
        g.add_event(B)
        g.add_order(A, B)
        assert g.reaches(A, B)
        assert not g.reaches(B, A)

    def test_vclock_implied_edge_reaches(self):
        g = EventDependencyGraph()
        g.add_event(A)
        g.add_event(C)  # A < C by vector clock
        assert g.reaches(A, C)

    def test_mixed_transitivity_through_vclock(self):
        # The paper's example: commit <0,1> -> <1,0>; then <0,1> reaches
        # <2,0> because <1,0> < <2,0> by vector clock.
        g = EventDependencyGraph()
        for event in (B, A, C):
            g.add_event(event)
        g.add_order(B, A)
        assert g.reaches(B, C)

    def test_cycle_refused(self):
        g = EventDependencyGraph()
        g.add_event(A)
        g.add_event(B)
        g.add_order(A, B)
        with pytest.raises(CycleError):
            g.add_order(B, A)

    def test_cycle_via_vclock_refused(self):
        # B -> A exists implicitly? No: A and B concurrent; but A < C by
        # clock, so ordering C before B then B before A... A<C implied,
        # C->B explicit, B->A explicit would make a cycle A->C->B->A.
        g = EventDependencyGraph()
        for event in (A, B, C):
            g.add_event(event)
        g.add_order(C, B)
        with pytest.raises(CycleError):
            g.add_order(B, A)

    def test_self_order_refused(self):
        g = EventDependencyGraph()
        g.add_event(A)
        with pytest.raises(CycleError):
            g.add_order(A, A)

    def test_unknown_event_refused(self):
        g = EventDependencyGraph()
        g.add_event(A)
        with pytest.raises(OrderingError):
            g.add_order(A, B)

    def test_transitive_chain(self):
        g = EventDependencyGraph()
        stamps = [ts([i + 1, 0]) if i % 2 == 0 else ts([0, i + 1], issuer=1)
                  for i in range(4)]
        for s in stamps:
            g.add_event(s)
        g.add_order(stamps[0], stamps[1])
        g.add_order(stamps[1], stamps[2])
        g.add_order(stamps[2], stamps[3])
        assert g.reaches(stamps[0], stamps[3])

    def test_remove_event_bridges_edges(self):
        g = EventDependencyGraph()
        for event in (A, B, D):
            g.add_event(event)
        g.add_order(A, B)
        g.add_order(B, D)
        g.remove_event(B)
        assert g.reaches(A, D)
        assert B not in g

    def test_remove_missing_event_is_noop(self):
        g = EventDependencyGraph()
        g.remove_event(A)
        assert len(g) == 0


class TestTimelineOracle:
    def test_query_orders_comparable_by_vclock(self):
        oracle = TimelineOracle()
        assert oracle.query_order(A, C) is Ordering.BEFORE

    def test_query_unordered_returns_none(self):
        oracle = TimelineOracle()
        assert oracle.query_order(A, B) is None

    def test_order_establishes_preference(self):
        oracle = TimelineOracle()
        assert oracle.order(A, B) is Ordering.BEFORE
        assert oracle.query_order(A, B) is Ordering.BEFORE

    def test_order_prefer_after(self):
        oracle = TimelineOracle()
        assert oracle.order(A, B, prefer=Ordering.AFTER) is Ordering.AFTER
        assert oracle.query_order(B, A) is Ordering.BEFORE

    def test_decisions_are_monotonic(self):
        oracle = TimelineOracle()
        oracle.order(A, B)
        # A later opposite preference cannot override the commitment.
        assert oracle.order(A, B, prefer=Ordering.AFTER) is Ordering.BEFORE

    def test_decision_consistent_across_directions(self):
        oracle = TimelineOracle()
        oracle.order(A, B)
        assert oracle.order(B, A) is Ordering.AFTER

    def test_transitive_inference(self):
        oracle = TimelineOracle()
        oracle.order(B, A)  # B before A; A < C by vclock
        assert oracle.query_order(B, C) is Ordering.BEFORE

    def test_prefer_equal_rejected(self):
        oracle = TimelineOracle()
        with pytest.raises(OrderingError):
            oracle.order(A, B, prefer=Ordering.EQUAL)

    def test_create_event_counts_once(self):
        oracle = TimelineOracle()
        oracle.create_event(A)
        oracle.create_event(A)
        assert oracle.stats.events_created == 1

    def test_stats_messages(self):
        oracle = TimelineOracle()
        oracle.order(A, B)
        assert oracle.stats.decisions == 1
        assert oracle.stats.messages >= 1

    def test_collect_below_drops_old_events(self):
        oracle = TimelineOracle()
        oracle.order(A, B)
        watermark = ts([5, 5])
        collected = oracle.collect_below(watermark)
        assert collected == 2
        assert oracle.num_events == 0

    def test_collect_below_keeps_concurrent_events(self):
        oracle = TimelineOracle()
        oracle.order(A, B)
        watermark = ts([5, 0])  # concurrent with B
        oracle.collect_below(watermark)
        assert oracle.num_events == 1

    def test_collect_preserves_bridged_decisions(self):
        oracle = TimelineOracle()
        oracle.order(A, B)
        oracle.order(B, C)  # explicit, though also implied via nothing
        before = oracle.query_order(A, C)
        oracle.collect_below(ts([0, 2], issuer=1))  # collects nothing older
        assert oracle.query_order(A, C) == before

    def test_stats_reset(self):
        oracle = TimelineOracle()
        oracle.order(A, B)
        oracle.stats.reset()
        assert oracle.stats.messages == 0


class TestReplicatedOracle:
    def test_chain_length(self):
        assert ReplicatedOracle(3).chain_length == 3

    def test_zero_chain_rejected(self):
        with pytest.raises(ValueError):
            ReplicatedOracle(0)

    def test_replicas_agree(self):
        chain = ReplicatedOracle(3)
        chain.order(A, B)
        for replica in chain._replicas:
            assert replica.query_order(A, B) is Ordering.BEFORE

    def test_queries_round_robin(self):
        chain = ReplicatedOracle(2)
        chain.order(A, B)
        assert chain.query_order(A, B) is Ordering.BEFORE
        assert chain.query_order(A, B) is Ordering.BEFORE

    def test_survives_replica_failure(self):
        chain = ReplicatedOracle(3)
        chain.order(A, B)
        chain.fail_replica(0)
        assert chain.chain_length == 2
        assert chain.query_order(A, B) is Ordering.BEFORE
        chain.order(C, D)
        assert chain.query_order(C, D) is Ordering.BEFORE

    def test_cannot_fail_last_replica(self):
        chain = ReplicatedOracle(1)
        with pytest.raises(ValueError):
            chain.fail_replica(0)

    def test_update_messages_counted(self):
        chain = ReplicatedOracle(3)
        chain.order(A, B)
        assert chain.update_messages == 3

    def test_collect_below_applies_to_all(self):
        chain = ReplicatedOracle(2)
        chain.order(A, B)
        chain.collect_below(ts([5, 5]))
        for replica in chain._replicas:
            assert replica.num_events == 0


# -- property-based: the oracle always yields a consistent total order ------

pair_indices = st.lists(
    st.tuples(st.integers(0, 7), st.integers(0, 7), st.booleans()),
    min_size=1,
    max_size=25,
)


@settings(max_examples=50, deadline=None)
@given(pair_indices)
def test_oracle_never_contradicts_itself(requests):
    """Whatever order requests arrive in, answers never flip."""
    stamps = [ts([i + 1, 0], issuer=0) for i in range(4)] + [
        ts([0, i + 1], issuer=1) for i in range(4)
    ]
    oracle = TimelineOracle()
    remembered = {}
    for i, j, prefer_after in requests:
        a, b = stamps[i], stamps[j]
        if a.id == b.id:
            continue
        prefer = Ordering.AFTER if prefer_after else Ordering.BEFORE
        decided = oracle.order(a, b, prefer)
        key = (a.id, b.id)
        if key in remembered:
            assert decided is remembered[key]
        remembered[key] = decided
        remembered[(b.id, a.id)] = decided.flipped()


@settings(max_examples=50, deadline=None)
@given(pair_indices)
def test_oracle_total_order_is_acyclic(requests):
    """The committed relation can always be topologically sorted."""
    stamps = [ts([i + 1, 0], issuer=0) for i in range(4)] + [
        ts([0, i + 1], issuer=1) for i in range(4)
    ]
    oracle = TimelineOracle()
    edges = []
    for i, j, prefer_after in requests:
        a, b = stamps[i], stamps[j]
        if a.id == b.id:
            continue
        prefer = Ordering.AFTER if prefer_after else Ordering.BEFORE
        decided = oracle.order(a, b, prefer)
        edges.append((a, b) if decided is Ordering.BEFORE else (b, a))
    # Kahn's algorithm over decided edges must consume every vertex.
    nodes = {s.id for pair in edges for s in pair}
    out = {n: set() for n in nodes}
    indeg = {n: 0 for n in nodes}
    for a, b in edges:
        if b.id not in out[a.id]:
            out[a.id].add(b.id)
            indeg[b.id] += 1
    ready = [n for n in nodes if indeg[n] == 0]
    seen = 0
    while ready:
        n = ready.pop()
        seen += 1
        for m in out[n]:
            indeg[m] -= 1
            if indeg[m] == 0:
                ready.append(m)
    assert seen == len(nodes)
