"""Edge cases and smaller API corners across modules."""

import pytest

from repro import errors
from repro.baselines.titan import TitanGraph
from repro.bench.costmodel import CostParams
from repro.bench.models import WeaverModel
from repro.core.vclock import Ordering, VectorTimestamp
from repro.db import Weaver, WeaverClient, WeaverConfig
from repro.sim.clock import MSEC, USEC
from repro.sim.network import Network
from repro.sim.simulator import Simulator


class TestErrors:
    def test_hierarchy(self):
        for exc in (
            errors.TransactionAborted("x"),
            errors.NoSuchVertex("v"),
            errors.NoSuchEdge("e"),
            errors.CycleError("c"),
            errors.OrderingError("o"),
            errors.ClusterError("cl"),
            errors.StoreError("s"),
            errors.ProgramError("p"),
            errors.TransactionError("t"),
        ):
            assert isinstance(exc, errors.WeaverError)

    def test_abort_reason(self):
        exc = errors.TransactionAborted("write conflict")
        assert exc.reason == "write conflict"
        assert "write conflict" in str(exc)

    def test_no_such_vertex_carries_handle(self):
        assert errors.NoSuchVertex("ghost").handle == "ghost"

    def test_garbage_collected_error(self):
        exc = errors.GarbageCollectedError("old", "watermark")
        assert exc.requested == "old"
        assert exc.watermark == "watermark"


class TestAncientTimestamp:
    def test_ancient_before_everything(self):
        ancient = VectorTimestamp.ancient(3)
        real = VectorTimestamp(0, (0, 0, 0), 0)
        assert ancient.compare(real) is Ordering.BEFORE

    def test_ancient_epoch_is_negative(self):
        assert VectorTimestamp.ancient(2).epoch == -1


class TestNetworkJitter:
    def test_jitter_varies_latency(self):
        import random

        sim = Simulator()
        net = Network(
            sim, latency=1 * MSEC, jitter=1 * MSEC,
            rng=random.Random(5),
        )
        times = []
        # Distinct channels so FIFO flooring does not mask the jitter.
        for i in range(10):
            net.send("a", f"b{i}", lambda: times.append(sim.now))
        sim.run()
        assert len(set(round(t, 9) for t in times)) > 1

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            Network(Simulator(), jitter=-1)


class TestWeaverModelIntrospection:
    def test_busiest_utilization_groups(self):
        model = WeaverModel(num_gatekeepers=2, num_shards=2)
        model.read_program(0.0)
        model.write_tx(0.0)
        util = model.busiest_utilization(horizon=1.0)
        assert set(util) == {"gatekeepers", "shards", "store"}
        assert all(0 <= u <= 1 for u in util.values())

    def test_costparams_rtt(self):
        costs = CostParams(net_latency=1 * MSEC)
        assert costs.rtt == pytest.approx(2 * MSEC)


class TestTitanCorners:
    def test_set_property_on_missing_vertex(self):
        titan = TitanGraph()
        with pytest.raises(errors.NoSuchVertex):
            titan.execute(
                [("set_vertex_property", "ghost", "k", 1)], 0.0
            )

    def test_load_with_explicit_vertices(self):
        titan = TitanGraph()
        titan.load([], vertices=["lonely"])
        node, _ = titan.get_node("lonely", 0.0)
        assert node["out_degree"] == 0

    def test_touched_rejects_unknown(self):
        with pytest.raises(ValueError):
            TitanGraph._touched([("warp", "x")])

    def test_reachable_from_unknown_vertex(self):
        titan = TitanGraph()
        assert not titan.reachable("ghost", "also-ghost")


class TestClientCorners:
    def test_db_property(self, db, client):
        assert client.db is db

    def test_run_program_passthrough(self, client):
        client.create_vertex("a")
        from repro.programs import GetNode

        result = client.run_program(GetNode(), "a")
        assert result.value["handle"] == "a"

    def test_get_node_historical_passthrough(self, db, client):
        client.create_vertex("a")
        point = db.checkpoint()
        client.set_property("a", "k", 1)
        assert client.get_node("a", at=point)["properties"] == {}


class TestDeploymentDriving:
    def test_run_until_quiet_completes_program(self):
        from repro.db import operations as ops
        from repro.db.config import WeaverConfig
        from repro.programs import GetNode
        from repro.sim.deployment import SimulatedWeaver

        sw = SimulatedWeaver(
            WeaverConfig(num_gatekeepers=2, num_shards=2),
            tau=200 * USEC,
            nop_period=200 * USEC,
        )
        sw.submit_transaction(
            [ops.CreateVertex("a")], new_vertices=("a",)
        )
        sw.run(2 * MSEC)
        box = {}
        sw.submit_program(
            GetNode(), "a", None, callback=lambda r: box.update(r=r)
        )
        sw.run_until_quiet()
        assert "r" in box

    def test_unknown_program_target_resolves_to_empty(self):
        from repro.db.config import WeaverConfig
        from repro.programs import GetNode
        from repro.sim.deployment import SimulatedWeaver

        sw = SimulatedWeaver(
            WeaverConfig(num_gatekeepers=2, num_shards=2),
            tau=200 * USEC,
            nop_period=200 * USEC,
        )
        box = {}
        sw.submit_program(
            GetNode(), "ghost", None, callback=lambda r: box.update(r=r)
        )
        sw.run(5 * MSEC)
        assert box["r"].results == []


class TestConfigSurface:
    def test_defaults_roundtrip_through_weaver(self):
        db = Weaver()
        assert len(db.gatekeepers) == WeaverConfig().num_gatekeepers
        assert len(db.shards) == WeaverConfig().num_shards

    def test_single_server_deployment_works(self):
        db = Weaver(WeaverConfig(num_gatekeepers=1, num_shards=1))
        client = WeaverClient(db)
        with client.transaction() as tx:
            tx.create_vertex("a")
            tx.create_vertex("b")
            tx.create_edge("a", "b")
        assert client.reachable("a", "b")

    def test_many_servers_deployment_works(self):
        db = Weaver(WeaverConfig(num_gatekeepers=6, num_shards=9))
        client = WeaverClient(db)
        names = [client.create_vertex() for _ in range(18)]
        for a, b in zip(names, names[1:]):
            client.create_edge(a, b)
        assert client.reachable(names[0], names[-1])
