"""Lifespans, property bags, vertices and edges of the MV graph."""

import pytest

from repro.core.vclock import VectorClock
from repro.graph.elements import Edge, Vertex
from repro.graph.properties import LifeSpan, PropertyBag, vclock_compare


@pytest.fixture
def clock():
    return VectorClock(1, 0)


class TestLifeSpan:
    def test_visible_after_creation(self, clock):
        span = LifeSpan(clock.tick())
        later = clock.tick()
        assert span.visible_at(later, vclock_compare)

    def test_invisible_before_creation(self, clock):
        early = clock.tick()
        span = LifeSpan(clock.tick())
        assert not span.visible_at(early, vclock_compare)

    def test_invisible_at_creation_instant(self, clock):
        ts = clock.tick()
        span = LifeSpan(ts)
        assert not span.visible_at(ts, vclock_compare)

    def test_deleted_invisible_after_deletion(self, clock):
        span = LifeSpan(clock.tick())
        span.delete(clock.tick())
        later = clock.tick()
        assert not span.visible_at(later, vclock_compare)

    def test_still_visible_between_create_and_delete(self, clock):
        span = LifeSpan(clock.tick())
        middle = clock.tick()
        span.delete(clock.tick())
        assert span.visible_at(middle, vclock_compare)

    def test_double_delete_rejected(self, clock):
        span = LifeSpan(clock.tick())
        span.delete(clock.tick())
        with pytest.raises(ValueError):
            span.delete(clock.tick())

    def test_dead_before(self, clock):
        span = LifeSpan(clock.tick())
        span.delete(clock.tick())
        later = clock.tick()
        assert span.dead_before(later, vclock_compare)
        assert not LifeSpan(clock.tick()).dead_before(
            clock.tick(), vclock_compare
        )


class TestPropertyBag:
    def test_get_visible_value(self, clock):
        bag = PropertyBag()
        bag.assign("color", "red", clock.tick())
        assert bag.get("color", clock.tick(), vclock_compare) == "red"

    def test_get_default_when_missing(self, clock):
        bag = PropertyBag()
        assert bag.get("x", clock.tick(), vclock_compare, default=7) == 7

    def test_reassign_supersedes(self, clock):
        bag = PropertyBag()
        bag.assign("color", "red", clock.tick())
        bag.assign("color", "blue", clock.tick())
        assert bag.get("color", clock.tick(), vclock_compare) == "blue"

    def test_point_in_time_reads_old_value(self, clock):
        bag = PropertyBag()
        bag.assign("color", "red", clock.tick())
        middle = clock.tick()
        bag.assign("color", "blue", clock.tick())
        assert bag.get("color", middle, vclock_compare) == "red"

    def test_remove_tombstones(self, clock):
        bag = PropertyBag()
        bag.assign("color", "red", clock.tick())
        assert bag.remove("color", clock.tick())
        assert not bag.has("color", clock.tick(), vclock_compare)

    def test_remove_missing_returns_false(self, clock):
        bag = PropertyBag()
        assert not bag.remove("ghost", clock.tick())

    def test_check_presence_and_value(self, clock):
        bag = PropertyBag()
        bag.assign("weight", 3.0, clock.tick())
        ts = clock.tick()
        assert bag.check("weight", ts, vclock_compare)
        assert bag.check("weight", ts, vclock_compare, value=3.0)
        assert not bag.check("weight", ts, vclock_compare, value=4.0)

    def test_items_at_snapshot(self, clock):
        bag = PropertyBag()
        bag.assign("a", 1, clock.tick())
        bag.assign("b", 2, clock.tick())
        bag.remove("a", clock.tick())
        assert bag.items_at(clock.tick(), vclock_compare) == {"b": 2}

    def test_collect_below_drops_dead_records(self, clock):
        bag = PropertyBag()
        bag.assign("a", 1, clock.tick())
        bag.assign("a", 2, clock.tick())  # closes version 1
        watermark = clock.tick()
        dropped = bag.collect_below(watermark, vclock_compare)
        assert dropped == 1
        assert bag.get("a", clock.tick(), vclock_compare) == 2

    def test_version_count(self, clock):
        bag = PropertyBag()
        bag.assign("a", 1, clock.tick())
        bag.assign("a", 2, clock.tick())
        bag.assign("b", 1, clock.tick())
        assert bag.version_count() == 3


class TestVertexAndEdge:
    def test_edge_must_root_at_source(self, clock):
        vertex = Vertex("a", clock.tick())
        edge = Edge("e", "b", "c", clock.tick())
        with pytest.raises(ValueError):
            vertex.add_edge(edge)

    def test_duplicate_edge_handle_rejected(self, clock):
        vertex = Vertex("a", clock.tick())
        vertex.add_edge(Edge("e", "a", "b", clock.tick()))
        with pytest.raises(ValueError):
            vertex.add_edge(Edge("e", "a", "c", clock.tick()))

    def test_edges_at_filters_tombstoned(self, clock):
        vertex = Vertex("a", clock.tick())
        live = Edge("e1", "a", "b", clock.tick())
        dead = Edge("e2", "a", "c", clock.tick())
        vertex.add_edge(live)
        vertex.add_edge(dead)
        dead.span.delete(clock.tick())
        visible = list(vertex.edges_at(clock.tick(), vclock_compare))
        assert [e.handle for e in visible] == ["e1"]

    def test_get_edge(self, clock):
        vertex = Vertex("a", clock.tick())
        edge = Edge("e", "a", "b", clock.tick())
        vertex.add_edge(edge)
        assert vertex.get_edge("e") is edge
        assert vertex.get_edge("missing") is None

    def test_version_count_includes_edges_and_properties(self, clock):
        vertex = Vertex("a", clock.tick())
        vertex.properties.assign("k", 1, clock.tick())
        edge = Edge("e", "a", "b", clock.tick())
        edge.properties.assign("w", 2, clock.tick())
        vertex.add_edge(edge)
        assert vertex.version_count() == 4  # vertex + prop + edge + eprop

    def test_repr_smoke(self, clock):
        vertex = Vertex("a", clock.tick())
        edge = Edge("e", "a", "b", clock.tick())
        assert "a" in repr(vertex)
        assert "->" in repr(edge)
